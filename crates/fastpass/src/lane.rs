//! FastPass-Lane path construction and non-overlap verification (§III-E).
//!
//! Outbound FastPass-Lanes use XY routing from the prime to any router of
//! the covered partition (column); returning paths of rejected packets
//! use YX routing back to the prime. With concurrent primes on distinct
//! rows and columns, and each partition covered by exactly one prime per
//! slot, every directed link is used by at most one prime — the property
//! [`verify_slot_disjoint`] checks exhaustively and the scheme re-checks
//! at runtime per cycle.

use crate::schedule::TdmSchedule;
use noc_core::topology::{LinkId, Mesh, NodeId};
use std::fmt;

/// The directed links along a node path.
///
/// # Panics
///
/// Panics if consecutive path nodes are not mesh neighbours.
pub fn path_links(mesh: Mesh, path: &[NodeId]) -> Vec<LinkId> {
    path.windows(2)
        .map(|w| {
            let dir = mesh
                .productive_dirs(w[0], w[1])
                .iter()
                .find(|&d| mesh.neighbor(w[0], d) == Some(w[1]))
                .expect("path nodes are not adjacent");
            mesh.link(w[0], dir)
                .expect("adjacent nodes always share a link")
        })
        .collect()
}

/// The outbound lane from a prime to a destination: XY path.
pub fn outbound_path(mesh: Mesh, prime: NodeId, dst: NodeId) -> Vec<NodeId> {
    mesh.xy_path(prime, dst)
}

/// The returning path of a rejected packet: YX path back to the prime.
pub fn return_path(mesh: Mesh, dst: NodeId, prime: NodeId) -> Vec<NodeId> {
    mesh.yx_path(dst, prime)
}

/// Every link the prime of partition `p` could use during a slot covering
/// partition `covered`: the union of outbound XY paths to each router of
/// the covered column plus the YX returning paths back.
pub fn lane_footprint(mesh: Mesh, prime: NodeId, covered: usize) -> Vec<LinkId> {
    let mut links = Vec::new();
    for row in 0..mesh.height() {
        let dst = mesh.node(covered, row);
        if dst == prime {
            continue;
        }
        links.extend(path_links(mesh, &outbound_path(mesh, prime, dst)));
        links.extend(path_links(mesh, &return_path(mesh, dst, prime)));
    }
    links.sort_unstable();
    links.dedup();
    links
}

/// A lane-overlap violation found by [`verify_slot_disjoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneCollision {
    /// The shared directed link.
    pub link: LinkId,
    /// The two partitions whose primes both claim it.
    pub partitions: (usize, usize),
    /// The offending cycle (slot start probed).
    pub cycle: u64,
}

impl fmt::Display for LaneCollision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link {} claimed by primes of partitions {} and {} at cycle {}",
            self.link, self.partitions.0, self.partitions.1, self.cycle
        )
    }
}

/// Exhaustively checks that, at `cycle`, the full footprints (all
/// possible outbound lanes + returning paths) of all concurrent primes
/// are pairwise disjoint.
///
/// # Errors
///
/// Returns the first collision found.
pub fn verify_slot_disjoint(
    mesh: Mesh,
    schedule: TdmSchedule,
    cycle: u64,
) -> Result<(), LaneCollision> {
    let phase = schedule.slot_info(cycle).phase;
    let mut owner: Vec<Option<usize>> = vec![None; mesh.num_links()];
    for p in 0..schedule.partitions() {
        let prime = schedule.prime(p, phase);
        let covered = schedule.covered_partition(p, cycle);
        for link in lane_footprint(mesh, prime, covered) {
            if let Some(q) = owner[link.index()] {
                return Err(LaneCollision {
                    link,
                    partitions: (q, p),
                    cycle,
                });
            }
            owner[link.index()] = Some(p);
        }
    }
    Ok(())
}

/// Checks every slot of a full rotation (each router prime once, each
/// covering each partition).
///
/// # Errors
///
/// Returns the first collision found anywhere in the rotation.
pub fn verify_rotation_disjoint(mesh: Mesh, schedule: TdmSchedule) -> Result<(), LaneCollision> {
    let slots = schedule.partitions() as u64 * mesh.height() as u64;
    for s in 0..slots {
        verify_slot_disjoint(mesh, schedule, s * schedule.slot_cycles())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::topology::Direction;

    #[test]
    fn path_links_follow_the_path() {
        let mesh = Mesh::new(4, 4);
        let path = outbound_path(mesh, mesh.node(0, 0), mesh.node(2, 2));
        assert_eq!(path.len(), 5);
        let links = path_links(mesh, &path);
        assert_eq!(links.len(), 4);
        // First two links go east along row 0.
        assert_eq!(
            links[0],
            mesh.link(mesh.node(0, 0), Direction::East).unwrap()
        );
        assert_eq!(
            links[1],
            mesh.link(mesh.node(1, 0), Direction::East).unwrap()
        );
    }

    #[test]
    fn outbound_and_return_share_no_directed_link() {
        let mesh = Mesh::new(8, 8);
        let prime = mesh.node(2, 5);
        for row in 0..8 {
            for col in 0..8 {
                let dst = mesh.node(col, row);
                if dst == prime {
                    continue;
                }
                let out: std::collections::HashSet<_> =
                    path_links(mesh, &outbound_path(mesh, prime, dst))
                        .into_iter()
                        .collect();
                for l in path_links(mesh, &return_path(mesh, dst, prime)) {
                    assert!(
                        !out.contains(&l),
                        "outbound and return overlap on {l} for dst {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_rotation_is_collision_free_8x8() {
        let mesh = Mesh::new(8, 8);
        let s = TdmSchedule::new(mesh, 4);
        verify_rotation_disjoint(mesh, s).expect("paper's Fig. 4 property");
    }

    #[test]
    fn full_rotation_is_collision_free_odd_mesh() {
        let mesh = Mesh::new(5, 5);
        let s = TdmSchedule::new(mesh, 1);
        verify_rotation_disjoint(mesh, s).unwrap();
    }

    #[test]
    fn full_rotation_is_collision_free_tall_mesh() {
        let mesh = Mesh::new(3, 6);
        let s = TdmSchedule::new(mesh, 2);
        verify_rotation_disjoint(mesh, s).unwrap();
    }

    #[test]
    fn footprint_stays_within_own_row_and_covered_column() {
        // The lane footprint of a prime must only touch links on the
        // prime's row or the covered column — the geometric core of the
        // non-overlap argument.
        let mesh = Mesh::new(8, 8);
        let prime = mesh.node(3, 1);
        let covered = 6;
        for link in lane_footprint(mesh, prime, covered) {
            let (from, dir) = mesh.link_endpoints(link);
            let horizontal = dir.is_horizontal();
            if horizontal {
                assert_eq!(mesh.y(from), 1, "horizontal segment outside prime row");
            } else {
                assert_eq!(
                    mesh.x(from),
                    covered,
                    "vertical segment outside covered column"
                );
            }
        }
    }

    #[test]
    fn sabotaged_prime_placement_collides() {
        // Two primes in the same row must collide — verifies the checker
        // actually detects violations.
        let mesh = Mesh::new(4, 4);
        let a = mesh.node(0, 0);
        let b = mesh.node(1, 0); // same row!
        let fa: std::collections::HashSet<_> = lane_footprint(mesh, a, 2).into_iter().collect();
        let fb: std::collections::HashSet<_> = lane_footprint(mesh, b, 3).into_iter().collect();
        assert!(
            fa.intersection(&fb).count() > 0,
            "same-row primes must share row links"
        );
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn path_links_rejects_teleports() {
        let mesh = Mesh::new(4, 4);
        let _ = path_links(mesh, &[mesh.node(0, 0), mesh.node(2, 0)]);
    }
}
