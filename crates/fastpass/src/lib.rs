//! FastPass: TDM bufferless multi-packet bypassing with 0 virtual
//! networks (HPCA 2022).
//!
//! This crate is the paper's primary contribution, implemented on the
//! [`noc_sim`] substrate:
//!
//! * [`schedule`] — recurring TDM slots, phases and the prime-router
//!   rotation (§III-C1, Qn5);
//! * [`lane`] — XY outbound / YX returning lane construction and the
//!   static non-overlap verifier (§III-E, Fig. 4);
//! * [`flight`] — bufferless FastPass-Packet transit: sliding link
//!   windows and lookahead suppression (§III-C5);
//! * [`scheme`] — the complete [`FastPass`] flow control: prime scanning
//!   (request injection queue first, §Qn2), the dynamic bubble with
//!   ejection-queue reservation and injection-request dropping
//!   (§III-C4), and the per-cycle collision assertion;
//! * [`irregular`] — partition derivation for arbitrary topologies via
//!   holistic-path segmentation (§III-F).
//!
//! The correctness lemmas of §III-D are encoded as runtime assertions
//! and tests: lane collision freedom is asserted every cycle, slot
//! boundaries assert that no flight is in the air, and the integration
//! suite (`tests/deadlock.rs` at the workspace root) constructs protocol-
//! and network-level deadlocks and shows FastPass resolving them with 0
//! VNs.
//!
//! # Example
//!
//! ```
//! use fastpass::{FastPass, FastPassConfig};
//! use noc_core::config::SimConfig;
//! use noc_sim::Simulation;
//! use traffic::{SyntheticPattern, SyntheticWorkload};
//!
//! let cfg = SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(2).build();
//! let scheme = FastPass::new(&cfg, FastPassConfig::default());
//! let workload = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.05, 7);
//! let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(workload));
//! let stats = sim.run_windows(1_000, 2_000);
//! assert!(stats.delivered() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod flight;
pub mod irregular;
pub mod lane;
pub mod schedule;
pub mod scheme;

pub use flight::{Flight, FlightState};
pub use schedule::TdmSchedule;
pub use scheme::{FastPass, FastPassConfig, FpCounters};
