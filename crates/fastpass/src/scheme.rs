//! The FastPass flow-control scheme (§III).
//!
//! Per cycle, FastPass:
//!
//! 1. advances every active [`Flight`] — deciding ejection vs. rejection
//!    at head arrival (dynamic bubble, §III-C4), committing ejections,
//!    and parking returned packets in the prime's request injection queue
//!    (dropping at most one fresh injection request to make room);
//! 2. lets every prime router scan its buffers — request injection queue
//!    first (§Qn2), then the other injection queues, then the input ports
//!    round-robin — and upgrade the first packet destined to the
//!    currently covered partition, provided the remaining slot budget
//!    covers a worst-case round trip (this makes the
//!    lane-clear-at-slot-boundary invariant provable, and it is
//!    asserted);
//! 3. computes the set of links FastPass flits occupy this cycle (the
//!    lookahead suppression of §III-C5) — asserting no two flights ever
//!    share a directed link — and runs the regular pass around them with
//!    fully-adaptive routing (Table II).
//!
//! # Pipelined lanes
//!
//! The paper serializes each lane ("only one FastPass-Packet traversing
//! through a FastPass-Lane"). This implementation generalizes that to a
//! configurable [`pipeline_depth`](FastPassConfig::pipeline_depth):
//! several packet trains may share a lane provided they provably cannot
//! collide. Three static conditions suffice —
//!
//! * **launch spacing**: consecutive launches are at least the previous
//!   packet's length apart, so same-direction trains never overlap
//!   (trains move at one hop/cycle and cannot overtake);
//! * **return-merge keys**: a rejected train re-enters the lane's
//!   reverse links at a point that depends on its destination row; the
//!   merge-time key `launch + 2·|dst_row − prime_row| + len` determines
//!   when it crosses every shared reverse link, so keeping keys of
//!   concurrent flights at least `max_len + 2` apart keeps their windows
//!   disjoint;
//! * **distinct destinations**, so two trains never contend for one
//!   ejection port.
//!
//! Depth 1 recovers the paper's literal serialization (the ablation
//! bench compares both). The per-cycle collision assertion remains the
//! ground truth for all of this reasoning.

use crate::flight::{Flight, FlightState};
use crate::schedule::TdmSchedule;
use noc_core::config::SimConfig;
use noc_core::packet::{MessageClass, PacketId, CLASSES};
use noc_core::topology::{LinkId, NodeId, Port, NUM_PORTS};
use noc_sim::network::{LinkSet, NetworkCore};
use noc_sim::ni::{EjRefusal, EjectEntry};
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::FullyAdaptive;
use noc_sim::scheme::{Scheme, SchemeProperties, StateExport};
use noc_trace::{trace, BypassOutcome, StallCause, TraceEvent};

/// Tunables for [`FastPass`].
#[derive(Debug, Clone, Copy)]
pub struct FastPassConfig {
    /// Overrides the slot length `K` (default: the paper's design-time
    /// formula, [`TdmSchedule::paper_slot_cycles`]).
    pub slot_cycles: Option<u64>,
    /// Extra cycles of round-trip budget beyond `2·hops + 2·len`.
    pub budget_slack: u64,
    /// Maximum packet trains concurrently in flight per lane (1 = the
    /// paper's strict serialization; see the module docs).
    pub pipeline_depth: usize,
}

impl Default for FastPassConfig {
    fn default() -> Self {
        FastPassConfig {
            slot_cycles: None,
            budget_slack: 4,
            pipeline_depth: 4,
        }
    }
}

/// Event counters exposed for the Fig. 13 breakdowns and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpCounters {
    /// Packets upgraded to FastPass-Packets.
    pub upgrades: u64,
    /// Flights that ejected successfully.
    pub completed: u64,
    /// Flights bounced off a full ejection queue.
    pub rejections: u64,
    /// Fresh injection requests dropped to make a bubble.
    pub drops: u64,
    /// Upgrades taken from injection queues (vs. input-port VCs).
    pub from_injection: u64,
}

/// Where a scanned upgrade candidate lives.
enum Candidate {
    InjHead(MessageClass),
    Vc(usize, usize),
}

/// Minimum separation of return-merge keys: the occupancy window is one
/// packet (≤ 5 flits) wide and the return-start time carries a ±1
/// length-dependent offset, so 7 guarantees disjoint windows.
const KEY_MARGIN: u64 = 7;

/// The FastPass scheme (implements [`Scheme`]).
pub struct FastPass {
    schedule: TdmSchedule,
    cfg: FastPassConfig,
    /// Active flights per partition (≤ `pipeline_depth` each).
    flights: Vec<Vec<Flight>>,
    /// Last launch per partition: `(cycle, len)` for spacing.
    last_launch: Vec<Option<(u64, u8)>>,
    routing: FullyAdaptive,
    scan_rr: Vec<usize>,
    suppressed: LinkSet,
    eject_blocked: Vec<bool>,
    busy_scratch: Vec<LinkId>,
    counters: FpCounters,
}

impl std::fmt::Debug for FastPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastPass")
            .field("schedule", &self.schedule)
            .field("counters", &self.counters)
            .field("active_flights", &self.active_flights())
            .finish()
    }
}

impl FastPass {
    /// Builds the scheme for a simulation configuration (which must use 0
    /// VNs — FastPass's whole point).
    ///
    /// # Panics
    ///
    /// Panics if the mesh is wider than tall (see
    /// [`TdmSchedule::with_slot_cycles`]), the slot override is too short
    /// for a round trip, or `pipeline_depth == 0`.
    pub fn new(sim: &SimConfig, cfg: FastPassConfig) -> Self {
        assert!(cfg.pipeline_depth >= 1, "pipeline depth must be at least 1");
        let mesh = sim.mesh;
        let schedule = match cfg.slot_cycles {
            Some(k) => TdmSchedule::with_slot_cycles(mesh, k),
            None => TdmSchedule::new(mesh, sim.vcs_per_port()),
        };
        FastPass {
            schedule,
            cfg,
            flights: vec![Vec::new(); mesh.width()],
            last_launch: vec![None; mesh.width()],
            routing: FullyAdaptive::new(sim.seed ^ 0xFA57_1A4E),
            scan_rr: vec![0; mesh.width()],
            suppressed: LinkSet::new(mesh),
            eject_blocked: vec![false; mesh.num_nodes()],
            busy_scratch: Vec::new(),
            counters: FpCounters::default(),
        }
    }

    /// Event counters.
    pub fn counters(&self) -> FpCounters {
        self.counters
    }

    /// The TDM schedule in use.
    pub fn schedule(&self) -> TdmSchedule {
        self.schedule
    }

    /// Flights currently in the air.
    pub fn active_flights(&self) -> usize {
        self.flights.iter().map(|v| v.len()).sum()
    }

    /// Return-merge key of a flight (see module docs): the time its train
    /// would cross any shared returning link is `key + f(link)` for a
    /// per-link constant `f`, so keeping keys separated keeps the
    /// windows disjoint. The packet length enters because the return leg
    /// starts only after the tail drains off the outbound lane.
    fn merge_key(
        mesh: noc_core::topology::Mesh,
        prime: NodeId,
        dst: NodeId,
        launch: u64,
        len: u8,
    ) -> u64 {
        launch + 2 * mesh.y(prime).abs_diff(mesh.y(dst)) as u64 + len as u64
    }

    fn advance_flights(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        for lane in self.flights.iter_mut() {
            let mut i = 0;
            while i < lane.len() {
                let f = &mut lane[i];
                let mut done = false;
                match f.state {
                    FlightState::Outbound => {
                        if cycle >= f.head_arrival() {
                            let class = core.store.get(f.pkt).class;
                            if core.ni(f.dst).ej_can_accept(class, f.pkt) {
                                core.ni_mut(f.dst).ej_begin(class, f.pkt);
                                f.begin_eject(cycle);
                            } else {
                                if core.trace.counters_on() {
                                    trace_bypass_rejected(core, f.dst, f.pkt, class);
                                }
                                // Rejected: pro-actively reserve the queue
                                // (first come, first reserved) and head
                                // home (§III-C4).
                                if core.ni(f.dst).ej_reservation(class).is_none() {
                                    core.ni_mut(f.dst).reserve_ej(class, f.pkt);
                                }
                                let pkt = core.store.get_mut(f.pkt);
                                pkt.rejections += 1;
                                core.stats.rejections += 1;
                                self.counters.rejections += 1;
                                f.begin_return(cycle);
                            }
                        }
                    }
                    FlightState::Ejecting { .. } => {
                        if cycle >= f.eject_done() {
                            let ready = cycle + core.cfg().ni_consume_cycles;
                            let class = {
                                let pkt = core.store.get_mut(f.pkt);
                                pkt.eject_cycle = Some(cycle);
                                pkt.hops += f.hops_out() as u32;
                                pkt.bufferless_cycles += cycle + 1 - f.launch;
                                pkt.class
                            };
                            core.ni_mut(f.dst)
                                .ej_commit(class, EjectEntry { pkt: f.pkt, ready });
                            if core.trace.counters_on() {
                                trace_bypass_ejected(core, f.dst, f.pkt, class.index());
                            }
                            self.counters.completed += 1;
                            done = true;
                        }
                    }
                    FlightState::Returning { .. } => {
                        if cycle >= f.return_done() {
                            {
                                let pkt = core.store.get_mut(f.pkt);
                                pkt.hops += (f.hops_out() + f.hops_ret()) as u32;
                                pkt.bufferless_cycles += cycle + 1 - f.launch;
                            }
                            let (prime, pkt) = (f.prime, f.pkt);
                            if core.trace.events_on() {
                                trace_bypass_returned(core, prime, pkt);
                            }
                            Self::park_rejected(core, &mut self.counters, prime, pkt);
                            done = true;
                        }
                    }
                }
                if done {
                    lane.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Parks a returned FastPass-Packet in the prime's request injection
    /// queue, dropping the newest *fresh* injection request if the queue
    /// is full (never a previously rejected packet, §Qn2).
    fn park_rejected(
        core: &mut NetworkCore,
        counters: &mut FpCounters,
        prime: NodeId,
        pkt: PacketId,
    ) {
        let cycle = core.cycle();
        if core.ni(prime).inj_full(MessageClass::Request) {
            let queue: Vec<PacketId> = core.ni(prime).inj_iter(MessageClass::Request).collect();
            let victim_idx = queue
                .iter()
                .enumerate()
                .rev()
                .find(|(_, &id)| core.store.get(id).rejections == 0)
                .map(|(i, _)| i);
            if let Some(idx) = victim_idx {
                let victim = core
                    .ni_mut(prime)
                    .remove_inj_at(MessageClass::Request, idx)
                    .expect("victim index valid");
                core.store.get_mut(victim).drops += 1;
                core.stats.dropped += 1;
                counters.drops += 1;
                let ready = cycle + core.cfg().mshr_regen_cycles;
                core.ni_mut(prime).schedule_regen(victim, ready);
            }
            // If every queued packet is itself a rejected FastPass-Packet
            // (rare), the park below overflows into the bypass latch —
            // see NiState::park_rejected.
        }
        core.ni_mut(prime).park_rejected(MessageClass::Request, pkt);
    }

    /// At most one launch per prime per cycle, subject to the pipeline
    /// safety conditions (module docs) and the slot budget.
    fn launch_flights(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        let info = self.schedule.slot_info(cycle);
        for p in 0..self.schedule.partitions() {
            if self.flights[p].len() >= self.cfg.pipeline_depth {
                continue;
            }
            // Launch spacing: previous train must have fully entered the
            // lane (no same-direction overlap).
            if let Some((last, len)) = self.last_launch[p] {
                if cycle < last + len as u64 {
                    continue;
                }
            }
            let prime = self.schedule.prime(p, info.phase);
            let covered = self.schedule.covered_partition(p, cycle);
            let remaining = self.schedule.remaining_in_slot(cycle);
            let Some((cand, dst, len)) = self.scan(core, p, prime, covered, remaining, cycle)
            else {
                continue;
            };
            let pkt_id = match cand {
                Candidate::InjHead(class) => {
                    self.counters.from_injection += 1;
                    core.ni_mut(prime)
                        .pop_inj(class)
                        .expect("scanned head vanished")
                }
                Candidate::Vc(port, vc) => core.take_vc_packet(prime, Port::from_index(port), vc),
            };
            {
                let pkt = core.store.get_mut(pkt_id);
                if pkt.upgrade_cycle.is_none() {
                    pkt.upgrade_cycle = Some(cycle);
                }
                if pkt.inject_cycle.is_none() {
                    pkt.inject_cycle = Some(cycle);
                }
            }
            self.counters.upgrades += 1;
            self.last_launch[p] = Some((cycle, len));
            self.flights[p].push(Flight::new(core.mesh(), pkt_id, prime, dst, len, cycle));
            if core.trace.counters_on() {
                trace_bypass_launch(core, prime, pkt_id, dst);
            }
        }
    }

    /// Scans the prime's buffers in the paper's order for the first
    /// upgrade candidate whose destination lies in the covered partition,
    /// whose worst-case round trip fits the remaining slot budget, and
    /// which satisfies the pipeline safety conditions against the lane's
    /// active flights.
    fn scan(
        &mut self,
        core: &NetworkCore,
        p: usize,
        prime: NodeId,
        covered: usize,
        remaining: u64,
        cycle: u64,
    ) -> Option<(Candidate, NodeId, u8)> {
        let mesh = core.mesh();
        let lane = &self.flights[p];
        let eligible = |dst: NodeId, len: u8| -> bool {
            if mesh.x(dst) != covered || dst == prime {
                return false;
            }
            let h = mesh.hops(prime, dst) as u64;
            if 2 * h + 2 * len as u64 + self.cfg.budget_slack > remaining {
                return false;
            }
            // Distinct destinations (ejection-port exclusivity).
            if lane.iter().any(|f| f.dst == dst) {
                return false;
            }
            // Return-merge key separation.
            let key = Self::merge_key(mesh, prime, dst, cycle, len);
            lane.iter().all(|f| {
                let fk = Self::merge_key(mesh, prime, f.dst, f.launch, f.len);
                key.abs_diff(fk) >= KEY_MARGIN
            })
        };
        // Injection queues, request queue first (§Qn2).
        for class in CLASSES {
            if let Some(id) = core.ni(prime).inj_head(class) {
                let pkt = core.store.get(id);
                if eligible(pkt.dst, pkt.len_flits) {
                    return Some((Candidate::InjHead(class), pkt.dst, pkt.len_flits));
                }
            }
        }
        // Input ports, round-robin. `occupied()` walks the same ascending
        // VC order the dense loop did, so the pick is unchanged; it just
        // skips empty slots via the occupancy word.
        if core.occupied_vcs(prime) == 0 {
            return None;
        }
        for k in 0..NUM_PORTS {
            let port = (self.scan_rr[p] + k) % NUM_PORTS;
            for (vc, occ) in core.input(prime, port).occupied() {
                // Any fully buffered, unsent packet at the head of an
                // input buffer is upgradeable (§III-C2); a downstream VC
                // it may already hold is released at take time.
                if !occ.quiescent() {
                    continue;
                }
                let pkt = core.store.get(occ.pkt);
                if eligible(pkt.dst, pkt.len_flits) {
                    self.scan_rr[p] = (port + 1) % NUM_PORTS;
                    return Some((Candidate::Vc(port, vc), pkt.dst, pkt.len_flits));
                }
            }
        }
        None
    }

    /// Builds this cycle's suppression set from flight link windows,
    /// asserting collision freedom, counting lane flit-hops for link
    /// utilization, and flagging preempted ejection ports.
    fn build_suppression(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        self.suppressed.clear();
        self.eject_blocked.fill(false);
        for f in self.flights.iter().flatten() {
            self.busy_scratch.clear();
            f.busy_links(cycle, &mut self.busy_scratch);
            for &l in &self.busy_scratch {
                assert!(
                    self.suppressed.insert(l),
                    "FastPass lane collision on {l} at cycle {cycle} — \
                     TDM non-overlap invariant violated"
                );
                // Each busy link-cycle carries exactly one lane flit.
                core.count_link_flit(l);
                if core.trace.counters_on() {
                    trace_bypass_link(core, l, f.pkt);
                }
            }
            if f.ejecting_at(cycle) {
                self.eject_blocked[f.dst.index()] = true;
            }
        }
    }
}

impl Scheme for FastPass {
    fn name(&self) -> &'static str {
        "FastPass"
    }

    fn properties(&self) -> SchemeProperties {
        // Table I, last row: ticks in every column.
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: true,
            network_deadlock_freedom: true,
            full_path_diversity: true,
            high_throughput: true,
            low_power: true,
            scalable: true,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        0
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        if self.schedule.is_slot_boundary(cycle) {
            assert!(
                self.flights.iter().all(|v| v.is_empty()),
                "flight crossed a slot boundary at cycle {cycle} — \
                 budget invariant violated"
            );
        }
        self.advance_flights(core);
        self.launch_flights(core);
        self.build_suppression(core);
        if core.trace.counters_on() {
            core.trace.sample_lanes(self.active_flights() as u64);
        }
        let ctx = AdvanceCtx {
            suppressed: Some(&self.suppressed),
            eject_blocked: Some(&self.eject_blocked),
            freeze: false,
        };
        advance(core, &mut self.routing, &ctx);
    }

    fn overlay_packets(&self) -> usize {
        self.active_flights()
    }

    fn export_state(&self, core: &NetworkCore, out: &mut StateExport) {
        let now = core.cycle();
        // TDM position: prime assignment, covered partition and slot
        // budget are all periodic in the full rotation.
        out.word(now % self.schedule.rotation_cycles());
        for p in 0..self.flights.len() {
            out.word(self.flights[p].len() as u64);
            for f in &self.flights[p] {
                out.pkt(f.pkt);
                out.word(f.prime.index() as u64);
                out.word(f.dst.index() as u64);
                out.word(f.len as u64);
                out.word(now.saturating_sub(f.launch));
                match f.state {
                    FlightState::Outbound => out.word(0),
                    FlightState::Ejecting { started } => {
                        out.word(1);
                        out.word(now.saturating_sub(started));
                    }
                    FlightState::Returning { started } => {
                        out.word(2);
                        out.word(now.saturating_sub(started));
                    }
                }
            }
            // `last_launch` only gates launches while the previous train
            // is still entering the lane (`now < cycle + len`); once that
            // window passes it behaves exactly like `None`, so export the
            // remaining occupancy rather than an ever-growing age.
            match self.last_launch[p] {
                Some((cycle, len)) if now < cycle + len as u64 => {
                    out.word(1);
                    out.word((cycle + len as u64) - now);
                }
                _ => out.word(0),
            }
            out.word(self.scan_rr[p] as u64);
        }
        // `suppressed`, `eject_blocked` and `busy_scratch` are rebuilt
        // from the flights every step; `counters` are diagnostics. The
        // adaptive routing RNG is intentionally hidden (documented
        // abstraction: merging states that differ only in RNG position
        // can merge schedules, never invent counterexamples).
    }
}

// ---- tracing helpers ------------------------------------------------------
//
// Cold, never-inlined, and reached only through `counters_on()` /
// `events_on()` gates at the call sites, so the per-cycle overlay code
// pays one predicted branch per site when tracing is off.

/// Records a rejected bypass arrival: the ejection-refusal stall cause
/// plus the `BypassExit(Rejected)` event.
#[cold]
#[inline(never)]
fn trace_bypass_rejected(core: &mut NetworkCore, dst: NodeId, pkt: PacketId, class: MessageClass) {
    let cause = match core.ni(dst).ej_refusal(class, pkt) {
        Some(EjRefusal::Reserved) => StallCause::EjReserved,
        _ => StallCause::EjBackpressure,
    };
    core.trace.count_stall(dst, cause);
    trace!(core.trace, dst, || TraceEvent::BypassExit {
        pkt,
        outcome: BypassOutcome::Rejected,
    });
}

/// Records a successful bypass ejection (counter + exit event).
#[cold]
#[inline(never)]
fn trace_bypass_ejected(core: &mut NetworkCore, dst: NodeId, pkt: PacketId, class: usize) {
    core.trace.count_eject(dst, class);
    trace!(core.trace, dst, || TraceEvent::BypassExit {
        pkt,
        outcome: BypassOutcome::Ejected,
    });
}

/// Records a flight returning to its prime after rejection.
#[cold]
#[inline(never)]
fn trace_bypass_returned(core: &mut NetworkCore, prime: NodeId, pkt: PacketId) {
    trace!(core.trace, prime, || TraceEvent::BypassExit {
        pkt,
        outcome: BypassOutcome::Returned,
    });
}

/// Records an upgrade launch at a prime router (counter + enter event).
#[cold]
#[inline(never)]
fn trace_bypass_launch(core: &mut NetworkCore, prime: NodeId, pkt: PacketId, dst: NodeId) {
    core.trace.count_bypass_launch(prime);
    trace!(core.trace, prime, || TraceEvent::BypassEnter { pkt, dst });
}

/// Counts a lane flit on busy link `l` and records its event at the
/// link's source router.
#[cold]
#[inline(never)]
fn trace_bypass_link(core: &mut NetworkCore, l: LinkId, pkt: PacketId) {
    let (from, _) = core.mesh().link_endpoints(l);
    core.trace.count_link(from, true);
    trace!(core.trace, from, || TraceEvent::BypassLink { pkt, link: l });
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::Packet;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn cfg(vcs: usize) -> SimConfig {
        SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(vcs)
            .seed(42)
            .build()
    }

    fn fast_cfg() -> FastPassConfig {
        // Short slots so TDM behaviour shows up quickly in tests.
        FastPassConfig {
            slot_cycles: Some(TdmSchedule::min_slot_cycles(noc_core::topology::Mesh::new(
                4, 4,
            ))),
            budget_slack: 4,
            pipeline_depth: 4,
        }
    }

    #[test]
    fn runs_and_delivers_under_uniform_load() {
        let sim_cfg = cfg(2);
        let fp = FastPass::new(&sim_cfg, fast_cfg());
        let wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.05, 9);
        let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
        let stats = sim.run_windows(2_000, 5_000);
        assert!(stats.delivered() > 100);
        assert!(sim.starvation_cycles() < 200);
    }

    #[test]
    fn upgrades_happen_under_load() {
        let sim_cfg = cfg(1);
        let fp = FastPass::new(&sim_cfg, fast_cfg());
        let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.30, 9);
        let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
        let stats = sim.run_windows(2_000, 8_000);
        assert!(
            stats.delivered_fastpass > 0,
            "high load must trigger FastFlow"
        );
        assert!(stats.delivered_regular > 0, "regular pass still in use");
    }

    #[test]
    fn low_load_mostly_regular() {
        // §Qn1: in the absence of congestion packets do not wait for
        // lanes; FastPass behaves like the baseline.
        let sim_cfg = cfg(2);
        let fp = FastPass::new(&sim_cfg, fast_cfg());
        let wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.01, 9);
        let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
        let stats = sim.run_windows(2_000, 6_000);
        assert!(
            stats.fastpass_fraction() < 0.5,
            "low load should be regular-dominated, got {}",
            stats.fastpass_fraction()
        );
    }

    #[test]
    fn saturation_does_not_wedge() {
        let sim_cfg = cfg(1);
        let fp = FastPass::new(&sim_cfg, fast_cfg());
        let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.8, 9);
        let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
        sim.run(30_000);
        assert!(
            sim.starvation_cycles() < 2_000,
            "FastPass must keep consuming even past saturation (got {})",
            sim.starvation_cycles()
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let sim_cfg = cfg(2);
            let fp = FastPass::new(&sim_cfg, fast_cfg());
            let wl = SyntheticWorkload::new(SyntheticPattern::Shuffle, 0.2, 9);
            let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
            let s = sim.run_windows(2_000, 4_000);
            (s.delivered(), s.dropped, s.rejections)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pipelined_lanes_outperform_serialized() {
        // Pipelining pays off when lanes are long enough to hold several
        // FastPass-Packets in flight, so measure on an 8x8 mesh (a 4x4
        // lane drains before depth ever binds). A single seed's margin is
        // within injection noise; the summed margin across seeds is not.
        let measure = |depth: usize, seed: u64| {
            let sim_cfg = SimConfig::builder()
                .mesh(8, 8)
                .vns(0)
                .vcs_per_vn(1)
                .seed(42)
                .build();
            let fp = FastPass::new(
                &sim_cfg,
                FastPassConfig {
                    slot_cycles: Some(TdmSchedule::min_slot_cycles(noc_core::topology::Mesh::new(
                        8, 8,
                    ))),
                    budget_slack: 4,
                    pipeline_depth: depth,
                },
            );
            let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.5, seed);
            let mut sim = Simulation::new(sim_cfg, Box::new(fp), Box::new(wl));
            sim.run_windows(3_000, 8_000).delivered_fastpass
        };
        let seeds = [9u64, 10, 11];
        let serial: u64 = seeds.iter().map(|&s| measure(1, s)).sum();
        let piped: u64 = seeds.iter().map(|&s| measure(4, s)).sum();
        assert!(
            piped > serial,
            "pipelining must raise lane throughput: {piped} vs {serial}"
        );
    }

    #[test]
    fn counters_are_consistent() {
        let sim_cfg = cfg(1);
        let mut fp = FastPass::new(&sim_cfg, fast_cfg());
        let mut core = NetworkCore::new(sim_cfg);
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.5, 9);
        use noc_sim::Workload;
        for _ in 0..20_000 {
            wl.tick(&mut core);
            fp.step(&mut core);
            let now = core.cycle();
            for n in core.mesh().nodes() {
                for class in CLASSES {
                    if core.ni(n).ej_consumable(class, now).is_some() {
                        let e = core.ni_mut(n).pop_ej(class).unwrap();
                        let pkt = core.store.remove(e.pkt);
                        core.stats.record_delivered(&pkt);
                    }
                }
            }
            core.advance_cycle();
        }
        let c = fp.counters();
        assert!(c.upgrades > 0);
        // Every upgrade ends exactly one way: committed at the
        // destination, bounced (rejection, later re-parked and possibly
        // re-upgraded — each re-upgrade counts again), or still in the
        // air right now.
        assert!(c.upgrades >= c.completed, "{c:?}");
        assert!(
            c.upgrades <= c.completed + c.rejections + fp.active_flights() as u64,
            "{c:?}"
        );
    }

    #[test]
    fn ejection_reservation_honored_end_to_end() {
        // Force rejections by never consuming at one node and flooding it.
        let sim_cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(1)
            .ej_queue_packets(1)
            .seed(1)
            .build();
        let mut fp = FastPass::new(&sim_cfg, fast_cfg());
        let mut core = NetworkCore::new(sim_cfg);
        // Hot-spot: many nodes send to node 5, nothing consumes.
        for s in [0usize, 1, 2, 3, 4, 6, 7, 8] {
            core.generate(Packet::new(
                NodeId::new(s),
                NodeId::new(5),
                MessageClass::Request,
                1,
                0,
            ));
        }
        for _ in 0..5_000 {
            fp.step(&mut core);
            core.advance_cycle();
        }
        // The hot-spot's queue (cap 1) holds one packet; everything else
        // is parked/buffered but nothing was lost.
        assert_eq!(core.ni(NodeId::new(5)).ej_len(MessageClass::Request), 1);
        assert_eq!(
            core.resident_packets() + fp.active_flights(),
            8,
            "conservation under rejection pressure"
        );
    }
}
