//! In-flight FastPass-Packets: bufferless traversal state (§III-B, C5).
//!
//! Once a prime upgrades a packet, the packet leaves the buffered world
//! entirely and becomes a [`Flight`]: a pipelined train of `len` flits
//! whose head advances one hop per cycle along the precomputed lane. A
//! flight's flits occupy a sliding window of directed links; those links
//! are reported through [`busy_links`](Flight::busy_links) and suppressed
//! for regular traffic (the lookahead signal of §III-C5 made explicit).

use crate::lane;
use noc_core::packet::PacketId;
use noc_core::topology::{LinkId, Mesh, NodeId};

/// Where a flight is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightState {
    /// Head is traversing the outbound lane.
    Outbound,
    /// Head reached the destination and flits are streaming into the
    /// (admitted or reserved-for-us) ejection queue.
    Ejecting {
        /// First ejection cycle.
        started: u64,
    },
    /// Rejected at a full ejection queue; heading back to the prime on
    /// the YX returning path.
    Returning {
        /// Cycle the head entered the returning path.
        started: u64,
    },
}

/// One FastPass-Packet in bufferless transit.
#[derive(Debug, Clone)]
pub struct Flight {
    /// The packet.
    pub pkt: PacketId,
    /// Prime router that launched it.
    pub prime: NodeId,
    /// Destination router.
    pub dst: NodeId,
    /// Packet length in flits.
    pub len: u8,
    /// Launch cycle (head enters the first outbound link).
    pub launch: u64,
    /// Current state.
    pub state: FlightState,
    out_links: Vec<LinkId>,
    ret_links: Vec<LinkId>,
}

impl Flight {
    /// Creates a flight launching at `launch` from `prime` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `prime == dst` (such packets eject locally and are never
    /// upgraded).
    pub fn new(
        mesh: Mesh,
        pkt: PacketId,
        prime: NodeId,
        dst: NodeId,
        len: u8,
        launch: u64,
    ) -> Self {
        assert_ne!(prime, dst, "flights must cross at least one link");
        let out_links = lane::path_links(mesh, &lane::outbound_path(mesh, prime, dst));
        let ret_links = lane::path_links(mesh, &lane::return_path(mesh, dst, prime));
        Flight {
            pkt,
            prime,
            dst,
            len,
            launch,
            state: FlightState::Outbound,
            out_links,
            ret_links,
        }
    }

    /// Outbound hop count.
    pub fn hops_out(&self) -> usize {
        self.out_links.len()
    }

    /// Return-path hop count.
    pub fn hops_ret(&self) -> usize {
        self.ret_links.len()
    }

    /// Cycle the head is fully at the destination (ejection/rejection
    /// decision point).
    pub fn head_arrival(&self) -> u64 {
        self.launch + self.hops_out() as u64
    }

    /// Last cycle any flit of this flight occupies an outbound link
    /// (flit `len-1` crossing link `hops-1`).
    pub fn outbound_clear(&self) -> u64 {
        self.launch + self.hops_out() as u64 - 1 + self.len as u64 - 1
    }

    /// Transitions to ejecting at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics unless the flight is outbound and the head has arrived.
    pub fn begin_eject(&mut self, cycle: u64) {
        assert_eq!(self.state, FlightState::Outbound, "double transition");
        assert!(cycle >= self.head_arrival(), "head has not arrived yet");
        self.state = FlightState::Ejecting { started: cycle };
    }

    /// Cycle the tail flit commits into the ejection queue.
    ///
    /// # Panics
    ///
    /// Panics unless ejecting.
    pub fn eject_done(&self) -> u64 {
        match self.state {
            FlightState::Ejecting { started } => started + self.len as u64 - 1,
            _ => panic!("eject_done on a non-ejecting flight"),
        }
    }

    /// Transitions to the returning path. The head turns around only
    /// after the tail has drained off the outbound lane, so the return
    /// starts at `max(cycle, outbound_clear) + 1`.
    ///
    /// Returns the cycle the return leg starts.
    ///
    /// # Panics
    ///
    /// Panics unless the flight is outbound.
    pub fn begin_return(&mut self, cycle: u64) -> u64 {
        assert_eq!(self.state, FlightState::Outbound, "double transition");
        let started = self.outbound_clear().max(cycle) + 1;
        self.state = FlightState::Returning { started };
        started
    }

    /// Cycle the tail flit is fully back at the prime (parking point).
    ///
    /// # Panics
    ///
    /// Panics unless returning.
    pub fn return_done(&self) -> u64 {
        match self.state {
            FlightState::Returning { started } => {
                started + self.hops_ret() as u64 + self.len as u64 - 1
            }
            _ => panic!("return_done on a non-returning flight"),
        }
    }

    /// Whether the flight is streaming flits into the destination NI at
    /// `cycle` (the ejection port is preempted, §Qn3).
    pub fn ejecting_at(&self, cycle: u64) -> bool {
        match self.state {
            FlightState::Ejecting { started } => cycle >= started && cycle <= self.eject_done(),
            _ => false,
        }
    }

    /// Appends every directed link one of this flight's flits traverses
    /// during `cycle`. Flit `j` traverses link `i` of a leg starting at
    /// `t0` during cycle `t0 + i + j`, so link `i` is busy during
    /// `[t0 + i, t0 + i + len - 1]`.
    pub fn busy_links(&self, cycle: u64, out: &mut Vec<LinkId>) {
        self.leg_busy(self.launch, &self.out_links, cycle, out);
        if let FlightState::Returning { started } = self.state {
            self.leg_busy(started, &self.ret_links, cycle, out);
        }
    }

    fn leg_busy(&self, t0: u64, links: &[LinkId], cycle: u64, out: &mut Vec<LinkId>) {
        if cycle < t0 {
            return;
        }
        let dt = cycle - t0;
        let len = self.len as u64;
        // Links i with t0+i <= cycle <= t0+i+len-1  ⇔  dt-len+1 <= i <= dt.
        let lo = dt.saturating_sub(len - 1) as usize;
        let hi = (dt as usize).min(links.len().saturating_sub(1));
        if lo < links.len() {
            out.extend_from_slice(&links[lo..=hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{MessageClass, Packet, PacketStore};

    fn mk(len: u8, launch: u64) -> (Flight, Mesh) {
        let mesh = Mesh::new(8, 8);
        let mut store = PacketStore::new();
        let prime = mesh.node(1, 2);
        let dst = mesh.node(5, 6);
        let pkt = store.insert(Packet::new(prime, dst, MessageClass::Request, len, 0));
        (Flight::new(mesh, pkt, prime, dst, len, launch), mesh)
    }

    #[test]
    fn geometry() {
        let (f, _) = mk(5, 100);
        assert_eq!(f.hops_out(), 8); // 4 east + 4 south
        assert_eq!(f.hops_ret(), 8);
        assert_eq!(f.head_arrival(), 108);
        assert_eq!(f.outbound_clear(), 111);
    }

    #[test]
    fn busy_window_slides() {
        let (f, _) = mk(5, 100);
        let mut busy = Vec::new();
        // Before launch: nothing.
        f.busy_links(99, &mut busy);
        assert!(busy.is_empty());
        // At launch: only link 0 (head).
        f.busy_links(100, &mut busy);
        assert_eq!(busy.len(), 1);
        busy.clear();
        // Mid-flight: a full window of min(len, remaining) links.
        f.busy_links(105, &mut busy);
        assert_eq!(busy.len(), 5);
        busy.clear();
        // Tail draining off the last links.
        f.busy_links(111, &mut busy);
        assert_eq!(busy.len(), 1, "only the last link carries the tail");
        busy.clear();
        f.busy_links(112, &mut busy);
        assert!(busy.is_empty(), "lane clear after outbound_clear");
    }

    #[test]
    fn single_flit_window_is_one_link() {
        let (f, _) = mk(1, 10);
        for c in 10..18 {
            let mut busy = Vec::new();
            f.busy_links(c, &mut busy);
            assert_eq!(busy.len(), 1, "cycle {c}");
        }
        let mut busy = Vec::new();
        f.busy_links(18, &mut busy);
        assert!(busy.is_empty());
    }

    #[test]
    fn eject_lifecycle() {
        let (mut f, _) = mk(5, 100);
        assert!(!f.ejecting_at(108));
        f.begin_eject(108);
        assert!(f.ejecting_at(108));
        assert!(f.ejecting_at(112));
        assert!(!f.ejecting_at(113));
        assert_eq!(f.eject_done(), 112);
    }

    #[test]
    fn return_lifecycle_and_links() {
        let (mut f, _) = mk(5, 100);
        let started = f.begin_return(108);
        assert_eq!(started, 112, "return waits for the tail to drain");
        assert_eq!(f.return_done(), 112 + 8 + 4);
        // During the turnaround gap the outbound trailing flits still
        // occupy links.
        let mut busy = Vec::new();
        f.busy_links(110, &mut busy);
        assert!(!busy.is_empty());
        busy.clear();
        // Once returning, return links appear.
        f.busy_links(112, &mut busy);
        assert!(!busy.is_empty());
    }

    #[test]
    fn outbound_and_return_windows_never_share_a_link() {
        let (mut f, _) = mk(5, 100);
        f.begin_return(108);
        for c in 100..=f.return_done() {
            let mut busy = Vec::new();
            f.busy_links(c, &mut busy);
            let set: std::collections::HashSet<_> = busy.iter().collect();
            assert_eq!(set.len(), busy.len(), "cycle {c}: duplicate link");
        }
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_hop_flight_rejected() {
        let mesh = Mesh::new(4, 4);
        let mut store = PacketStore::new();
        let n = mesh.node(1, 1);
        let pkt = store.insert(Packet::new(mesh.node(0, 0), n, MessageClass::Request, 1, 0));
        let _ = Flight::new(mesh, pkt, n, n, 1, 0);
    }
}
