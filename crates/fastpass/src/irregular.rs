//! Partition derivation for irregular topologies (§III-F).
//!
//! FastPass is topology-agnostic: for an arbitrary network whose
//! channels are bidirectional (each an opposing pair of unidirectional
//! links), §III-F leverages DRAIN-style *holistic paths* — closed walks
//! that traverse every physical link exactly once — and segments them
//! into non-overlapping lanes.
//!
//! In a directed graph built from bidirectional channels, every vertex
//! has equal in- and out-degree, so a connected graph always has an
//! Eulerian circuit; [`holistic_path`] computes one with Hierholzer's
//! algorithm, and [`segment`] cuts it into `p` contiguous lane segments.
//! Because the circuit uses each directed link exactly once, the segments
//! are disjoint by construction — the property FastPass needs from its
//! lanes.
//!
//! The mesh simulator uses the closed-form column partitioning instead;
//! this module provides the general construction (with proofs-as-tests)
//! for arbitrary topologies.

use std::collections::BTreeMap;

/// A directed edge `(from, to)` in an irregular topology.
pub type Edge = (usize, usize);

/// An irregular topology: nodes `0..n` with bidirectional channels.
#[derive(Debug, Clone, Default)]
pub struct IrregularTopo {
    n: usize,
    channels: Vec<(usize, usize)>,
}

impl IrregularTopo {
    /// Creates a topology with `n` nodes and no channels.
    pub fn new(n: usize) -> Self {
        IrregularTopo {
            n,
            channels: Vec::new(),
        }
    }

    /// Adds a bidirectional channel (two opposing directed links).
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_channel(&mut self, a: usize, b: usize) {
        assert!(a != b, "self-channels are meaningless");
        assert!(a < self.n && b < self.n, "endpoint out of range");
        self.channels.push((a.min(b), a.max(b)));
    }

    /// Builds the degraded topology of a seeded [`FaultConfig`]: the
    /// mesh's surviving bidirectional channels after the fault set is
    /// removed. This is the bridge between fault sweeps and §III-F
    /// holistic scheduling — the same `(mesh, seed, count)` triple
    /// yields the same topology here and in `noc-prove`'s certifier.
    pub fn from_fault_config(cfg: &noc_core::FaultConfig) -> Self {
        let mut t = IrregularTopo::new(cfg.mesh.num_nodes());
        for (a, b) in cfg.surviving_channels() {
            t.add_channel(a, b);
        }
        t
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// All directed links (both directions of every channel).
    pub fn directed_links(&self) -> Vec<Edge> {
        let mut v = Vec::with_capacity(self.channels.len() * 2);
        for &(a, b) in &self.channels {
            v.push((a, b));
            v.push((b, a));
        }
        v
    }

    /// Whether every node can reach every other (over directed links).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); self.n];
        for (a, b) in self.directed_links() {
            adj[a].push(b);
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Computes a holistic path: a closed walk traversing every directed link
/// exactly once (Eulerian circuit, Hierholzer's algorithm). Returned as
/// the sequence of directed links in traversal order.
///
/// # Errors
///
/// Returns [`HolisticPathError`] if the topology is disconnected or has
/// no links.
pub fn holistic_path(topo: &IrregularTopo) -> Result<Vec<Edge>, HolisticPathError> {
    let links = topo.directed_links();
    if links.is_empty() {
        return Err(HolisticPathError::NoLinks);
    }
    if !topo.is_connected() {
        return Err(HolisticPathError::Disconnected);
    }
    // Out-adjacency with consumption cursors.
    let mut out: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(a, b) in &links {
        out.entry(a).or_default().push(b);
    }
    let mut cursor: BTreeMap<usize, usize> = out.keys().map(|&k| (k, 0)).collect();
    let start = links[0].0;
    let mut stack = vec![start];
    let mut circuit_nodes: Vec<usize> = Vec::new();
    while let Some(&v) = stack.last() {
        let c = cursor
            .get_mut(&v)
            .expect("connected topology: every reachable node has outgoing links");
        let nbrs = &out[&v];
        if *c < nbrs.len() {
            let w = nbrs[*c];
            *c += 1;
            stack.push(w);
        } else {
            circuit_nodes.push(v);
            stack.pop();
        }
    }
    circuit_nodes.reverse();
    let circuit: Vec<Edge> = circuit_nodes.windows(2).map(|w| (w[0], w[1])).collect();
    // Bidirectional channels ⇒ balanced degrees ⇒ the circuit covers all.
    assert_eq!(
        circuit.len(),
        links.len(),
        "Eulerian circuit must cover every directed link"
    );
    Ok(circuit)
}

/// Error from [`holistic_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolisticPathError {
    /// The topology has no channels.
    NoLinks,
    /// The topology is not connected.
    Disconnected,
}

impl std::fmt::Display for HolisticPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HolisticPathError::NoLinks => f.write_str("topology has no links"),
            HolisticPathError::Disconnected => f.write_str("topology is not connected"),
        }
    }
}

impl std::error::Error for HolisticPathError {}

/// Segments a holistic path into `p` contiguous, non-overlapping lane
/// segments of near-equal length (FastPass partitions for an irregular
/// topology).
///
/// # Panics
///
/// Panics if `p == 0` or `p` exceeds the path length.
pub fn segment(path: &[Edge], p: usize) -> Vec<Vec<Edge>> {
    assert!(p > 0, "need at least one partition");
    assert!(p <= path.len(), "more partitions than links");
    let base = path.len() / p;
    let extra = path.len() % p;
    let mut segments = Vec::with_capacity(p);
    let mut at = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        segments.push(path[at..at + len].to_vec());
        at += len;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> IrregularTopo {
        let mut t = IrregularTopo::new(n);
        for i in 0..n {
            t.add_channel(i, (i + 1) % n);
        }
        t
    }

    fn random_connected(n: usize, extra: usize, seed: u64) -> IrregularTopo {
        use noc_core::rng::DetRng;
        let mut rng = DetRng::new(seed);
        let mut t = IrregularTopo::new(n);
        let mut seen = std::collections::HashSet::new();
        // Spanning tree first.
        for i in 1..n {
            let j = rng.range(0, i);
            t.add_channel(i, j);
            seen.insert((j.min(i), j.max(i)));
        }
        let mut added = 0;
        while added < extra {
            let a = rng.range(0, n);
            let b = rng.range(0, n);
            if a != b && seen.insert((a.min(b), a.max(b))) {
                t.add_channel(a, b);
                added += 1;
            }
        }
        t
    }

    fn check_holistic(t: &IrregularTopo) {
        let path = holistic_path(t).unwrap();
        // Every directed link exactly once.
        let mut seen = std::collections::HashSet::new();
        for &e in &path {
            assert!(seen.insert(e), "link {e:?} traversed twice");
        }
        assert_eq!(seen.len(), t.directed_links().len());
        // Consecutive links chain.
        for w in path.windows(2) {
            assert_eq!(w[0].1, w[1].0, "walk is discontinuous");
        }
        // Closed.
        assert_eq!(path.first().unwrap().0, path.last().unwrap().1);
    }

    #[test]
    fn ring_holistic_path() {
        check_holistic(&ring(6));
    }

    #[test]
    fn random_topologies_have_holistic_paths() {
        for seed in 0..10 {
            let t = random_connected(12, 8, seed);
            check_holistic(&t);
        }
    }

    #[test]
    fn segments_are_disjoint_and_cover() {
        let t = random_connected(10, 6, 3);
        let path = holistic_path(&t).unwrap();
        for p in [1, 2, 3, 5] {
            let segs = segment(&path, p);
            assert_eq!(segs.len(), p);
            let total: usize = segs.iter().map(|s| s.len()).sum();
            assert_eq!(total, path.len(), "segments cover the path");
            let mut seen = std::collections::HashSet::new();
            for s in &segs {
                for &e in s {
                    assert!(seen.insert(e), "segments overlap on {e:?}");
                }
            }
            // Near-equal lengths.
            let min = segs.iter().map(|s| s.len()).min().unwrap();
            let max = segs.iter().map(|s| s.len()).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn disconnected_rejected() {
        let mut t = IrregularTopo::new(4);
        t.add_channel(0, 1);
        t.add_channel(2, 3);
        assert_eq!(holistic_path(&t), Err(HolisticPathError::Disconnected));
    }

    #[test]
    fn empty_rejected() {
        let t = IrregularTopo::new(3);
        assert_eq!(holistic_path(&t), Err(HolisticPathError::NoLinks));
    }

    #[test]
    #[should_panic(expected = "self-channels")]
    fn self_channel_rejected() {
        let mut t = IrregularTopo::new(2);
        t.add_channel(1, 1);
    }

    #[test]
    fn fault_configs_yield_schedulable_topologies() {
        use noc_core::topology::Mesh;
        for seed in 0..8 {
            let cfg = noc_core::fault::generate(Mesh::new(4, 4), seed, 3).unwrap();
            let t = IrregularTopo::from_fault_config(&cfg);
            assert_eq!(t.num_nodes(), 16);
            assert_eq!(t.directed_links().len(), 2 * (24 - 3));
            // Connectivity was certified at generation time, so the
            // holistic construction must succeed.
            check_holistic(&t);
        }
    }
}
