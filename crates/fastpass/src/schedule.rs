//! The TDM schedule: slots, phases, prime-router rotation (§III-C1).
//!
//! Time is divided into recurring fixed slots of `K` cycles. The mesh's
//! `P` columns are the partitions; each partition has one *prime router*
//! at a time. During slot `t` of a phase, the prime of partition `p` owns
//! an exclusive FastPass-Lane into partition `(p + t) mod P`. A *phase*
//! is `P` slots — after it, every prime has covered every partition — and
//! after each phase the prime role moves one row down within each
//! partition, so every router is eventually prime (Lemma 2).
//!
//! Primes are placed on a shifted diagonal (`row = (p + phase) mod H`),
//! which guarantees no two concurrent primes share a row or a column —
//! the condition §III-E requires for the returning paths to be collision-
//! free.

use noc_core::topology::{Mesh, NodeId, NUM_PORTS};

/// Position within the TDM schedule at some cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotInfo {
    /// Monotone phase counter (increments every `P` slots).
    pub phase: u64,
    /// Slot within the phase, `0..P`.
    pub slot: usize,
    /// Cycle within the slot, `0..K`.
    pub cycle_in_slot: u64,
}

/// The FastPass TDM schedule for a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdmSchedule {
    mesh: Mesh,
    slot_cycles: u64,
}

impl TdmSchedule {
    /// Creates a schedule with the paper's slot length
    /// `K = 2·#Hops · #Inputs · #VCs` (Qn5), where `#Hops` is the mesh
    /// diameter.
    ///
    /// # Panics
    ///
    /// Panics unless `width <= height`: the shifted-diagonal prime
    /// placement needs at least as many rows as partitions to keep
    /// concurrent primes on distinct rows.
    pub fn new(mesh: Mesh, vcs_per_port: usize) -> Self {
        Self::with_slot_cycles(mesh, Self::paper_slot_cycles(mesh, vcs_per_port))
    }

    /// Creates a schedule with an explicit slot length (tests and
    /// sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if `width > height` or the slot is too short for any
    /// round trip (`< 2·diameter + 2·max-packet + slack`).
    pub fn with_slot_cycles(mesh: Mesh, slot_cycles: u64) -> Self {
        assert!(
            mesh.width() <= mesh.height(),
            "prime placement requires width <= height (got {}×{})",
            mesh.width(),
            mesh.height()
        );
        let min = Self::min_slot_cycles(mesh);
        assert!(
            slot_cycles >= min,
            "slot of {slot_cycles} cycles cannot fit a worst-case round trip ({min})"
        );
        TdmSchedule { mesh, slot_cycles }
    }

    /// The paper's design-time slot length (Qn5).
    pub fn paper_slot_cycles(mesh: Mesh, vcs_per_port: usize) -> u64 {
        (2 * mesh.diameter() * NUM_PORTS * vcs_per_port.max(1)) as u64
    }

    /// Smallest slot that admits a worst-case rejected round trip:
    /// `2·diameter + 2·max_len + slack`.
    pub fn min_slot_cycles(mesh: Mesh) -> u64 {
        (2 * mesh.diameter() + 2 * 5 + 4) as u64
    }

    /// The slot length `K`.
    pub fn slot_cycles(self) -> u64 {
        self.slot_cycles
    }

    /// Number of partitions `P` (mesh columns).
    pub fn partitions(self) -> usize {
        self.mesh.width()
    }

    /// Cycles per phase (`K × P`).
    pub fn phase_cycles(self) -> u64 {
        self.slot_cycles * self.partitions() as u64
    }

    /// Cycles for every router to have been prime once
    /// (`K × P × H`).
    pub fn rotation_cycles(self) -> u64 {
        self.phase_cycles() * self.mesh.height() as u64
    }

    /// Decomposes a cycle into its schedule position.
    pub fn slot_info(self, cycle: u64) -> SlotInfo {
        let slot_global = cycle / self.slot_cycles;
        let p = self.partitions() as u64;
        SlotInfo {
            phase: slot_global / p,
            slot: (slot_global % p) as usize,
            cycle_in_slot: cycle % self.slot_cycles,
        }
    }

    /// Cycles remaining in the current slot (including this one).
    pub fn remaining_in_slot(self, cycle: u64) -> u64 {
        self.slot_cycles - (cycle % self.slot_cycles)
    }

    /// Whether `cycle` is the first cycle of a slot (lane handover point;
    /// all flights must have completed).
    pub fn is_slot_boundary(self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.slot_cycles)
    }

    /// The prime router of partition `p` during `phase`.
    pub fn prime(self, p: usize, phase: u64) -> NodeId {
        debug_assert!(p < self.partitions());
        let row = (p + phase as usize) % self.mesh.height();
        self.mesh.node(p, row)
    }

    /// All concurrent primes at `cycle`, indexed by partition.
    pub fn primes(self, cycle: u64) -> Vec<NodeId> {
        let phase = self.slot_info(cycle).phase;
        (0..self.partitions())
            .map(|p| self.prime(p, phase))
            .collect()
    }

    /// The partition covered by partition `p`'s prime at `cycle`.
    pub fn covered_partition(self, p: usize, cycle: u64) -> usize {
        let slot = self.slot_info(cycle).slot;
        (p + slot) % self.partitions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> TdmSchedule {
        TdmSchedule::new(Mesh::new(8, 8), 4)
    }

    #[test]
    fn paper_slot_formula() {
        // 8×8, 4 VCs: 2 × 14 hops × 5 inputs × 4 VCs = 560 (Qn5).
        assert_eq!(TdmSchedule::paper_slot_cycles(Mesh::new(8, 8), 4), 560);
        assert_eq!(sched().slot_cycles(), 560);
        assert_eq!(sched().phase_cycles(), 8 * 560);
        assert_eq!(sched().rotation_cycles(), 8 * 8 * 560);
    }

    #[test]
    fn slot_decomposition() {
        let s = sched();
        assert_eq!(
            s.slot_info(0),
            SlotInfo {
                phase: 0,
                slot: 0,
                cycle_in_slot: 0
            }
        );
        assert_eq!(s.slot_info(559).slot, 0);
        assert_eq!(s.slot_info(560).slot, 1);
        assert_eq!(s.slot_info(8 * 560).phase, 1);
        assert_eq!(s.remaining_in_slot(0), 560);
        assert_eq!(s.remaining_in_slot(559), 1);
        assert!(s.is_slot_boundary(0));
        assert!(s.is_slot_boundary(560));
        assert!(!s.is_slot_boundary(561));
    }

    #[test]
    fn concurrent_primes_never_share_row_or_column() {
        let s = sched();
        let mesh = Mesh::new(8, 8);
        for phase in 0..32 {
            let primes: Vec<_> = (0..8).map(|p| s.prime(p, phase)).collect();
            let mut rows = std::collections::HashSet::new();
            let mut cols = std::collections::HashSet::new();
            for &pr in &primes {
                assert!(rows.insert(mesh.y(pr)), "row collision in phase {phase}");
                assert!(cols.insert(mesh.x(pr)), "column collision in phase {phase}");
            }
        }
    }

    #[test]
    fn every_router_becomes_prime() {
        let s = sched();
        let mesh = Mesh::new(8, 8);
        let mut seen = std::collections::HashSet::new();
        for phase in 0..8 {
            for p in 0..8 {
                seen.insert(s.prime(p, phase));
            }
        }
        assert_eq!(seen.len(), mesh.num_nodes(), "Lemma 2: all routers prime");
    }

    #[test]
    fn every_prime_covers_every_partition_within_a_phase() {
        let s = sched();
        for p in 0..8 {
            let mut covered = std::collections::HashSet::new();
            for slot in 0..8u64 {
                covered.insert(s.covered_partition(p, slot * s.slot_cycles()));
            }
            assert_eq!(covered.len(), 8);
        }
    }

    #[test]
    fn partitions_covered_exactly_once_per_slot() {
        let s = sched();
        for slot in 0..8u64 {
            let cycle = slot * s.slot_cycles();
            let mut covered = std::collections::HashSet::new();
            for p in 0..8 {
                assert!(
                    covered.insert(s.covered_partition(p, cycle)),
                    "two primes cover one partition in slot {slot}"
                );
            }
        }
    }

    #[test]
    fn rectangular_tall_mesh_supported() {
        let s = TdmSchedule::new(Mesh::new(4, 8), 2);
        assert_eq!(s.partitions(), 4);
        for phase in 0..16 {
            let mut rows = std::collections::HashSet::new();
            for p in 0..4 {
                assert!(rows.insert(Mesh::new(4, 8).y(s.prime(p, phase))));
            }
        }
    }

    #[test]
    #[should_panic(expected = "width <= height")]
    fn wide_mesh_rejected() {
        let _ = TdmSchedule::new(Mesh::new(8, 4), 2);
    }

    #[test]
    #[should_panic(expected = "round trip")]
    fn too_short_slot_rejected() {
        let _ = TdmSchedule::with_slot_cycles(Mesh::new(8, 8), 10);
    }
}
