//! Chrome `trace_event` JSON exporter (Perfetto-loadable).
//!
//! Emits the JSON Array Format of the Trace Event specification: a flat
//! array of event objects. Tracks are laid out as
//!
//! * `pid 0` — "routers": one thread (`tid` = node index) per router,
//!   carrying regular-pipeline events (`link` complete events plus
//!   instants for inject/vc_alloc/sa_grant/eject/consume/stall);
//! * `pid 1` — "fastpass lanes": one thread per router, carrying bypass
//!   overlay events (`lane` complete events plus bypass_enter/exit
//!   instants), so bypass and regular traversals are visually and
//!   programmatically distinguishable (`cat` is `bypass` vs `regular`).
//!
//! Timestamps are simulated cycles written as microseconds (1 cycle =
//! 1 µs), the natural unit for Perfetto's timeline. The export path is
//! cold — it runs after a simulation, never inside it — so it builds a
//! [`Content`] tree and leans on the JSON writer for well-formedness.

use crate::event::TraceEvent;
use crate::Tracer;
use serde::Content;

const PID_ROUTERS: u64 = 0;
const PID_LANES: u64 = 1;

fn s(v: &str) -> Content {
    Content::Str(v.to_string())
}

fn u(v: u64) -> Content {
    Content::U128(v as u128)
}

fn meta(name: &str, pid: u64, tid: Option<u64>, label: String) -> Content {
    let mut fields = vec![
        ("name".to_string(), s(name)),
        ("ph".to_string(), s("M")),
        ("pid".to_string(), u(pid)),
    ];
    if let Some(t) = tid {
        fields.push(("tid".to_string(), u(t)));
    }
    fields.push((
        "args".to_string(),
        Content::Map(vec![("name".to_string(), Content::Str(label))]),
    ));
    Content::Map(fields)
}

/// Renders the tracer's recorded events as Chrome trace JSON.
///
/// Returns the JSON text (an array of trace event objects). Load it at
/// `ui.perfetto.dev` or `chrome://tracing`.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut events: Vec<Content> = Vec::new();
    // Track naming metadata.
    events.push(meta(
        "process_name",
        PID_ROUTERS,
        None,
        "routers (regular pipeline)".to_string(),
    ));
    events.push(meta(
        "process_name",
        PID_LANES,
        None,
        "fastpass lanes (bypass overlay)".to_string(),
    ));
    for n in 0..tracer.num_nodes() {
        events.push(meta(
            "thread_name",
            PID_ROUTERS,
            Some(n as u64),
            format!("router {n}"),
        ));
        events.push(meta(
            "thread_name",
            PID_LANES,
            Some(n as u64),
            format!("lane @ router {n}"),
        ));
    }

    for rec in tracer.records_in_order() {
        let (pid, cat) = if rec.event.is_bypass() {
            (PID_LANES, "bypass")
        } else {
            (PID_ROUTERS, "regular")
        };
        let mut args: Vec<(String, Content)> = vec![("pkt".to_string(), u(rec.event.pkt().raw()))];
        let ph = match rec.event {
            TraceEvent::LinkTraverse { link, .. } | TraceEvent::BypassLink { link, .. } => {
                args.push(("link".to_string(), u(link.index() as u64)));
                "X"
            }
            TraceEvent::Inject { vc, .. } => {
                args.push(("vc".to_string(), u(vc as u64)));
                "i"
            }
            TraceEvent::VcAlloc {
                out_port, out_vc, ..
            } => {
                args.push(("out_port".to_string(), u(out_port as u64)));
                args.push(("out_vc".to_string(), u(out_vc as u64)));
                "i"
            }
            TraceEvent::SaGrant { out_port, .. } => {
                args.push(("out_port".to_string(), u(out_port as u64)));
                "i"
            }
            TraceEvent::BypassEnter { dst, .. } => {
                args.push(("dst".to_string(), u(dst.index() as u64)));
                "i"
            }
            TraceEvent::BypassExit { outcome, .. } => {
                args.push(("outcome".to_string(), s(outcome.label())));
                "i"
            }
            TraceEvent::Stall { cause, .. } => {
                args.push(("cause".to_string(), s(cause.label())));
                "i"
            }
            TraceEvent::Eject { .. } | TraceEvent::Consume { .. } => "i",
        };
        let mut fields = vec![
            ("name".to_string(), s(rec.event.name())),
            ("cat".to_string(), s(cat)),
            ("ph".to_string(), s(ph)),
            ("ts".to_string(), u(rec.cycle)),
            ("pid".to_string(), u(pid)),
            ("tid".to_string(), u(rec.node.index() as u64)),
        ];
        if ph == "X" {
            fields.push(("dur".to_string(), u(1)));
        }
        if ph == "i" {
            // Instant scope: thread.
            fields.push(("s".to_string(), s("t")));
        }
        fields.push(("args".to_string(), Content::Map(args)));
        events.push(Content::Map(fields));
    }

    serde_json::to_string(&Content::Seq(events)).expect("content tree always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BypassOutcome, StallCause};
    use crate::{TraceConfig, TraceLevel};
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::{Direction, Mesh, NodeId};

    #[test]
    fn export_is_parseable_and_distinguishes_tracks() {
        let mesh = Mesh::new(2, 2);
        let mut store = PacketStore::new();
        let pkt = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            1,
            0,
        ));
        let link = mesh
            .link(NodeId::new(0), Direction::East)
            .expect("link exists");
        let cfg = TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        };
        let mut t = Tracer::new(&cfg, 4);
        t.set_now(5);
        t.push_event(NodeId::new(0), TraceEvent::LinkTraverse { pkt, link });
        t.push_event(NodeId::new(0), TraceEvent::BypassLink { pkt, link });
        t.push_event(
            NodeId::new(1),
            TraceEvent::Stall {
                pkt,
                cause: StallCause::SaLost,
            },
        );
        t.push_event(
            NodeId::new(1),
            TraceEvent::BypassExit {
                pkt,
                outcome: BypassOutcome::Ejected,
            },
        );
        let json = chrome_trace_json(&t);
        let parsed: Content = serde_json::from_str(&json).expect("well-formed JSON");
        let seq = parsed.as_seq().expect("top level is an array");
        let names: Vec<&str> = seq
            .iter()
            .filter_map(|e| e.as_map())
            .filter_map(|m| serde::field(m, "name").ok())
            .filter_map(|n| n.as_str())
            .collect();
        assert!(names.contains(&"link"), "regular traversal exported");
        assert!(names.contains(&"lane"), "bypass traversal exported");
        assert!(names.contains(&"stall"));
        // Complete events carry durations; instants carry scope.
        for e in seq.iter().filter_map(|e| e.as_map()) {
            let ph = serde::field(e, "ph")
                .ok()
                .and_then(|p| p.as_str())
                .expect("every event has ph");
            match ph {
                "X" => assert!(serde::field(e, "dur").is_ok(), "X event missing dur"),
                "i" | "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
    }
}
