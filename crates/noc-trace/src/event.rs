//! The trace event vocabulary.
//!
//! Every observable micro-architectural happening is one [`TraceEvent`]:
//! a small `Copy` value designed to be recorded into a pre-allocated
//! ring buffer with zero heap traffic. Events carry packet ids (never
//! packet bodies) so a record is a fixed handful of words; the exporters
//! join against the packet store only at report time.

use noc_core::packet::PacketId;
use noc_core::topology::{LinkId, NodeId};
use std::fmt;

/// Why a packet made no progress this cycle (the stall-with-reason
/// breakdown of the per-router metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The flit's output link is suppressed by a FastPass lane this
    /// cycle (the lookahead signal of §III-C5).
    LinkSuppressed,
    /// Requested switch allocation and lost the round-robin grant.
    SaLost,
    /// The destination ejection queue has no free slot.
    EjBackpressure,
    /// The only free ejection slot is reserved for a rejected
    /// FastPass-Packet (§III-C4), so this packet may not take it.
    EjReserved,
    /// The ejection port is preempted by an overlay (FastPass) packet.
    EjPreempted,
    /// A packet waits at the NI with no free VC in its class's range.
    NoFreeVc,
    /// The routing policy returned no admissible output this cycle.
    RouteBlocked,
}

impl StallCause {
    /// Number of distinct causes (sizes the per-router counter array).
    pub const COUNT: usize = 7;

    /// Every cause, in counter-array order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::LinkSuppressed,
        StallCause::SaLost,
        StallCause::EjBackpressure,
        StallCause::EjReserved,
        StallCause::EjPreempted,
        StallCause::NoFreeVc,
        StallCause::RouteBlocked,
    ];

    /// Counter-array index of this cause.
    pub fn index(self) -> usize {
        match self {
            StallCause::LinkSuppressed => 0,
            StallCause::SaLost => 1,
            StallCause::EjBackpressure => 2,
            StallCause::EjReserved => 3,
            StallCause::EjPreempted => 4,
            StallCause::NoFreeVc => 5,
            StallCause::RouteBlocked => 6,
        }
    }

    /// Stable snake_case label (used in JSON exports and reports).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::LinkSuppressed => "link_suppressed",
            StallCause::SaLost => "sa_lost",
            StallCause::EjBackpressure => "ej_backpressure",
            StallCause::EjReserved => "ej_reserved",
            StallCause::EjPreempted => "ej_preempted",
            StallCause::NoFreeVc => "no_free_vc",
            StallCause::RouteBlocked => "route_blocked",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a FastPass flight left the bypass overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BypassOutcome {
    /// Committed into the destination ejection queue.
    Ejected,
    /// Bounced off a full ejection queue; heading home (§III-C4).
    Rejected,
    /// Arrived back at its prime and was parked in the request
    /// injection queue.
    Returned,
}

impl BypassOutcome {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            BypassOutcome::Ejected => "ejected",
            BypassOutcome::Rejected => "rejected",
            BypassOutcome::Returned => "returned",
        }
    }
}

/// One micro-architectural event. All variants are `Copy` and carry at
/// most a packet id plus a couple of small indices — recording one is a
/// fixed-size store into a pre-allocated ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet's first flit entered the router's local input port.
    Inject {
        /// The injected packet.
        pkt: PacketId,
        /// Local-input VC it was installed into.
        vc: u8,
    },
    /// Route computed and a downstream VC allocated.
    VcAlloc {
        /// The allocated packet.
        pkt: PacketId,
        /// Output port index ([`noc_core::topology::Port::index`]).
        out_port: u8,
        /// Allocated downstream VC (0 for the local port).
        out_vc: u8,
    },
    /// Switch allocation granted (recorded for the head flit of each
    /// switch transfer).
    SaGrant {
        /// The granted packet.
        pkt: PacketId,
        /// Output port index the crossbar connected.
        out_port: u8,
    },
    /// One flit crossed a directed link under the regular pipeline.
    LinkTraverse {
        /// The owning packet.
        pkt: PacketId,
        /// The directed link.
        link: LinkId,
    },
    /// A packet was upgraded to a FastPass-Packet and launched onto a
    /// bypass lane at its prime router.
    BypassEnter {
        /// The upgraded packet.
        pkt: PacketId,
        /// Flight destination.
        dst: NodeId,
    },
    /// One flit-cycle of a FastPass flight occupying a directed link
    /// (distinguishes bypass traversals from regular ones).
    BypassLink {
        /// The flying packet.
        pkt: PacketId,
        /// The occupied link.
        link: LinkId,
    },
    /// A FastPass flight left the overlay.
    BypassExit {
        /// The packet.
        pkt: PacketId,
        /// How it left.
        outcome: BypassOutcome,
    },
    /// Tail flit left the network into the ejection queue.
    Eject {
        /// The delivered packet.
        pkt: PacketId,
    },
    /// The NI consumer popped the packet (end of its lifetime).
    Consume {
        /// The consumed packet.
        pkt: PacketId,
    },
    /// The packet wanted to move and could not.
    Stall {
        /// The stalled packet.
        pkt: PacketId,
        /// Why.
        cause: StallCause,
    },
}

impl TraceEvent {
    /// The packet this event concerns.
    pub fn pkt(&self) -> PacketId {
        match *self {
            TraceEvent::Inject { pkt, .. }
            | TraceEvent::VcAlloc { pkt, .. }
            | TraceEvent::SaGrant { pkt, .. }
            | TraceEvent::LinkTraverse { pkt, .. }
            | TraceEvent::BypassEnter { pkt, .. }
            | TraceEvent::BypassLink { pkt, .. }
            | TraceEvent::BypassExit { pkt, .. }
            | TraceEvent::Eject { pkt }
            | TraceEvent::Consume { pkt }
            | TraceEvent::Stall { pkt, .. } => pkt,
        }
    }

    /// Stable snake_case event name (Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::VcAlloc { .. } => "vc_alloc",
            TraceEvent::SaGrant { .. } => "sa_grant",
            TraceEvent::LinkTraverse { .. } => "link",
            TraceEvent::BypassEnter { .. } => "bypass_enter",
            TraceEvent::BypassLink { .. } => "lane",
            TraceEvent::BypassExit { .. } => "bypass_exit",
            TraceEvent::Eject { .. } => "eject",
            TraceEvent::Consume { .. } => "consume",
            TraceEvent::Stall { .. } => "stall",
        }
    }

    /// Whether this event belongs to the FastPass bypass overlay (drawn
    /// on the lane track rather than the router track).
    pub fn is_bypass(&self) -> bool {
        matches!(
            self,
            TraceEvent::BypassEnter { .. }
                | TraceEvent::BypassLink { .. }
                | TraceEvent::BypassExit { .. }
        )
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Inject { vc, .. } => write!(f, "inject vc={vc}"),
            TraceEvent::VcAlloc {
                out_port, out_vc, ..
            } => write!(f, "vc_alloc out_port={out_port} out_vc={out_vc}"),
            TraceEvent::SaGrant { out_port, .. } => write!(f, "sa_grant out_port={out_port}"),
            TraceEvent::LinkTraverse { link, .. } => write!(f, "link {link}"),
            TraceEvent::BypassEnter { dst, .. } => write!(f, "bypass_enter dst={dst}"),
            TraceEvent::BypassLink { link, .. } => write!(f, "lane {link}"),
            TraceEvent::BypassExit { outcome, .. } => {
                write!(f, "bypass_exit {}", outcome.label())
            }
            TraceEvent::Eject { .. } => write!(f, "eject"),
            TraceEvent::Consume { .. } => write!(f, "consume"),
            TraceEvent::Stall { cause, .. } => write!(f, "stall {cause}"),
        }
    }
}

/// A recorded event: what happened, where, and when. `seq` is a global
/// monotonically increasing sequence number assigned at record time, so
/// merging per-node rings reconstructs the exact recording order even
/// within one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Global record order (total order across all nodes).
    pub seq: u64,
    /// Node (router/NI) the event occurred at.
    pub node: NodeId,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cause_indices_are_a_bijection() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::COUNT);
    }

    #[test]
    fn event_accessors() {
        let mut store = noc_core::packet::PacketStore::new();
        let pkt = store.insert(noc_core::packet::Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            noc_core::packet::MessageClass::Request,
            1,
            0,
        ));
        let ev = TraceEvent::Stall {
            pkt,
            cause: StallCause::SaLost,
        };
        assert_eq!(ev.pkt(), pkt);
        assert_eq!(ev.name(), "stall");
        assert!(!ev.is_bypass());
        let mesh = noc_core::topology::Mesh::new(2, 2);
        let link = mesh
            .link(NodeId::new(0), noc_core::topology::Direction::East)
            .expect("interior link exists");
        let lane = TraceEvent::BypassLink { pkt, link };
        assert!(lane.is_bypass());
        assert_eq!(lane.name(), "lane");
    }
}
