//! Zero-overhead flit-level tracing and per-router metrics.
//!
//! The simulator's observability subsystem, designed around one hard
//! constraint from `ROADMAP.md`: **it must cost nothing when off**. The
//! pieces:
//!
//! * [`TraceEvent`] — a compact `Copy` event vocabulary (inject, VC
//!   alloc, SA grant, link traversal, bypass enter/exit, eject,
//!   stall-with-reason);
//! * [`EventRing`] — pre-allocated per-node overwrite-oldest ring
//!   buffers the events are recorded into;
//! * [`RouterMetrics`] — per-router/per-class counters (occupancy
//!   integrals, stall-cause breakdown, lane-occupancy histogram);
//! * [`Tracer`] — the recording façade owned by the network core, with
//!   a three-position [`TraceLevel`] switch;
//! * exporters — Chrome `trace_event` JSON ([`chrome_trace_json`]) and
//!   a textual per-packet lifetime report ([`packet_lifetimes`]).
//!
//! # The no-alloc hook contract
//!
//! Instrumentation in per-cycle hot paths goes through the [`trace!`]
//! macro, which compiles to
//!
//! ```text
//! if tracer.events_on() {            // one load + branch when off
//!     let ev = (<closure>)();        // event built only when tracing
//!     tracer.push_event(node, ev);   // indexed store into a ring
//! }
//! ```
//!
//! The closure body must be allocation-free (it runs inside the hot
//! loop whenever full tracing is on), and direct `push_event` calls in
//! hot scopes are rejected by `noc-lint` so the branch gate cannot be
//! bypassed by accident. Counters use the same pattern through
//! [`Tracer::counters_on`] internally: every `count_*` method is a
//! no-op branch in off mode.
//!
//! Recording never mutates simulation state: enabling any trace level
//! leaves `NetStats` bitwise identical (gated by `tests/trace_gate.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod report;
pub mod ring;

pub use chrome::chrome_trace_json;
pub use event::{BypassOutcome, StallCause, TraceEvent, TraceRecord};
pub use metrics::{MetricsReport, NetworkTotals, RouterMetrics};
pub use report::{packet_lifetime, packet_lifetimes};
pub use ring::EventRing;

use noc_core::topology::NodeId;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing. Every hook is a single load-and-branch.
    #[default]
    Off,
    /// Bump per-router counters only (no event rings).
    Counters,
    /// Counters plus full event records into per-node rings.
    Full,
}

impl TraceLevel {
    /// Parses `off` / `counters` / `full` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input as the error.
    pub fn parse(s: &str) -> Result<TraceLevel, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(TraceLevel::Off),
            "counters" => Ok(TraceLevel::Counters),
            "full" => Ok(TraceLevel::Full),
            other => Err(format!(
                "unknown trace level `{other}` (expected off|counters|full)"
            )),
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Full => "full",
        }
    }
}

/// Tracer configuration handed to `Simulation::set_trace`.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Recording level.
    pub level: TraceLevel,
    /// Half-open cycle window `[start, end)` outside which nothing is
    /// recorded (`None` = always).
    pub window: Option<(u64, u64)>,
    /// Restrict full-event recording to these nodes (`None` = all).
    /// Counters are always kept for every router — the per-router
    /// metrics table is only meaningful complete.
    pub nodes: Option<Vec<NodeId>>,
    /// Per-node event-ring capacity (0 picks the default, 4096).
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Default per-node ring capacity.
    pub const DEFAULT_RING_CAPACITY: usize = 4096;

    /// Counters-only configuration.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::default()
        }
    }

    /// Full-event configuration with default capacity and no filters.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        }
    }
}

/// The recording façade. One lives inside the simulator's network core;
/// a disabled tracer ([`Tracer::disabled`]) owns no storage at all.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    window: Option<(u64, u64)>,
    /// Per-node full-event enable flags (empty = all nodes).
    node_mask: Vec<bool>,
    /// Mirror of the core's cycle counter, synced by the owner at each
    /// cycle boundary so hooks never need a second borrow of the core.
    now: u64,
    seq: u64,
    rings: Vec<EventRing>,
    metrics: Vec<RouterMetrics>,
    lane_hist: Vec<u64>,
}

impl Tracer {
    /// A tracer that records nothing and owns no buffers (the default
    /// state of every simulation).
    pub fn disabled() -> Self {
        Tracer {
            level: TraceLevel::Off,
            window: None,
            node_mask: Vec::new(),
            now: 0,
            seq: 0,
            rings: Vec::new(),
            metrics: Vec::new(),
            lane_hist: Vec::new(),
        }
    }

    /// Builds a tracer for a network of `num_nodes` nodes. All storage
    /// (rings, counters, histograms) is allocated here, once.
    pub fn new(cfg: &TraceConfig, num_nodes: usize) -> Self {
        let cap = if cfg.ring_capacity == 0 {
            TraceConfig::DEFAULT_RING_CAPACITY
        } else {
            cfg.ring_capacity
        };
        let full = matches!(cfg.level, TraceLevel::Full);
        let any = !matches!(cfg.level, TraceLevel::Off);
        let node_mask = match &cfg.nodes {
            Some(sel) => {
                let mut mask = vec![false; num_nodes];
                for n in sel {
                    mask[n.index()] = true;
                }
                mask
            }
            None => Vec::new(),
        };
        Tracer {
            level: cfg.level,
            window: cfg.window,
            node_mask,
            now: 0,
            seq: 0,
            rings: if full {
                (0..num_nodes).map(|_| EventRing::new(cap)).collect()
            } else {
                Vec::new()
            },
            metrics: if any {
                vec![RouterMetrics::default(); num_nodes]
            } else {
                Vec::new()
            },
            lane_hist: if any {
                vec![0; num_nodes + 1]
            } else {
                Vec::new()
            },
        }
    }

    // ---- hot-path gates ---------------------------------------------------

    /// Whether full event recording is on (the `trace!` macro's gate).
    #[inline]
    pub fn events_on(&self) -> bool {
        matches!(self.level, TraceLevel::Full)
    }

    /// Whether counters (and therefore any recording at all) are on.
    #[inline]
    pub fn counters_on(&self) -> bool {
        !matches!(self.level, TraceLevel::Off)
    }

    /// Syncs the tracer's cycle mirror (called by the core at each cycle
    /// boundary).
    #[inline]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    #[inline]
    fn in_window(&self) -> bool {
        match self.window {
            Some((start, end)) => self.now >= start && self.now < end,
            None => true,
        }
    }

    #[inline]
    fn node_selected(&self, node: NodeId) -> bool {
        self.node_mask.is_empty() || self.node_mask[node.index()]
    }

    // ---- recording --------------------------------------------------------

    /// Records one event at `node`. Allocation-free: a filtered indexed
    /// store into the node's pre-allocated ring.
    ///
    /// Do not call this directly from hot code — go through [`trace!`],
    /// which wraps the call in the branch-on-disabled gate (`noc-lint`
    /// enforces this in hot scopes).
    pub fn push_event(&mut self, node: NodeId, event: TraceEvent) {
        if !self.events_on() || !self.in_window() || !self.node_selected(node) {
            return;
        }
        let rec = TraceRecord {
            cycle: self.now,
            seq: self.seq,
            node,
            event,
        };
        self.seq += 1;
        self.rings[node.index()].push(rec);
    }

    /// Counts a packet injection at `node` (class-indexed).
    #[inline]
    pub fn count_inject(&mut self, node: NodeId, class: usize) {
        if self.counters_on() && self.in_window() {
            self.metrics[node.index()].injected[class] += 1;
        }
    }

    /// Counts a tail ejection at `node` (class-indexed).
    #[inline]
    pub fn count_eject(&mut self, node: NodeId, class: usize) {
        if self.counters_on() && self.in_window() {
            self.metrics[node.index()].ejected[class] += 1;
        }
    }

    /// Counts one stall cycle at `node`.
    #[inline]
    pub fn count_stall(&mut self, node: NodeId, cause: StallCause) {
        if self.counters_on() && self.in_window() {
            self.metrics[node.index()].stalls[cause.index()] += 1;
        }
    }

    /// Counts one flit leaving `node` over a link (`bypass` selects the
    /// lane counter instead of the regular-pipeline counter).
    #[inline]
    pub fn count_link(&mut self, node: NodeId, bypass: bool) {
        if self.counters_on() && self.in_window() {
            let m = &mut self.metrics[node.index()];
            if bypass {
                m.link_flits_bypass += 1;
            } else {
                m.link_flits_regular += 1;
            }
        }
    }

    /// Counts a FastPass upgrade launched at prime router `node`.
    #[inline]
    pub fn count_bypass_launch(&mut self, node: NodeId) {
        if self.counters_on() && self.in_window() {
            self.metrics[node.index()].bypass_launches += 1;
        }
    }

    /// Adds one cycle's occupied-VC count for router `node_idx` to its
    /// occupancy integral.
    #[inline]
    pub fn sample_occupancy(&mut self, node_idx: usize, occupied: u64) {
        if self.counters_on() && self.in_window() {
            let m = &mut self.metrics[node_idx];
            m.occupancy_integral += occupied;
            m.cycles_sampled += 1;
        }
    }

    /// Samples the number of concurrently active FastPass flights for
    /// the lane-occupancy histogram (last bucket aggregates overflow).
    #[inline]
    pub fn sample_lanes(&mut self, active: u64) {
        if self.counters_on() && self.in_window() {
            let last = self.lane_hist.len() - 1;
            let bucket = (active as usize).min(last);
            self.lane_hist[bucket] += 1;
        }
    }

    // ---- inspection -------------------------------------------------------

    /// Nodes this tracer was sized for (0 when disabled).
    pub fn num_nodes(&self) -> usize {
        self.metrics.len().max(self.rings.len())
    }

    /// Per-router counters (empty when level is off).
    pub fn metrics(&self) -> &[RouterMetrics] {
        &self.metrics
    }

    /// Network-wide counter sums as one `Copy` value (all-zero when the
    /// level is off). Allocation-free: this is the windowed sampler's
    /// per-window read of the stall / link-utilization counters.
    pub fn totals(&self) -> NetworkTotals {
        NetworkTotals::accumulate(&self.metrics)
    }

    /// The event ring of one node (full mode only).
    ///
    /// # Panics
    ///
    /// Panics if full tracing is not enabled.
    pub fn ring(&self, node: NodeId) -> &EventRing {
        &self.rings[node.index()]
    }

    /// Full-mode events lost to ring overwriting, across all nodes.
    pub fn dropped_events(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Events ever recorded (before any ring eviction).
    pub fn total_events(&self) -> u64 {
        self.rings.iter().map(|r| r.total_recorded()).sum()
    }

    /// All held records merged across nodes, in exact recording order
    /// (sorted by the global sequence number). Cold path; allocates.
    pub fn records_in_order(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self.rings.iter().flat_map(|r| r.iter().copied()).collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Assembles the metrics report (routers + histograms).
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport {
            routers: self.metrics.clone(),
            lane_occupancy: self.lane_hist.clone(),
            dropped_events: self.dropped_events(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

/// Records a trace event from a hot path, compiling to a single
/// load-and-branch when full tracing is off.
///
/// The event expression must be a zero-argument closure returning a
/// [`TraceEvent`]; it is invoked only when recording is live, so any
/// field reads it performs are free in off/counters mode. Its body must
/// not allocate (`noc-lint`'s `hot-loop-alloc` rule scans it like any
/// other hot-scope code).
///
/// ```
/// # use noc_trace::{trace, Tracer, TraceConfig, TraceEvent};
/// # use noc_core::topology::NodeId;
/// # use noc_core::packet::{Packet, PacketStore, MessageClass};
/// # let mut store = PacketStore::new();
/// # let pkt = store.insert(Packet::new(NodeId::new(0), NodeId::new(1), MessageClass::Request, 1, 0));
/// let mut tracer = Tracer::new(&TraceConfig::full(), 4);
/// let node = NodeId::new(0);
/// trace!(tracer, node, || TraceEvent::Eject { pkt });
/// assert_eq!(tracer.records_in_order().len(), 1);
/// ```
#[macro_export]
macro_rules! trace {
    ($tracer:expr, $node:expr, $ev:expr) => {
        if $tracer.events_on() {
            let __noc_trace_event = ($ev)();
            $tracer.push_event($node, __noc_trace_event);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{MessageClass, Packet, PacketId, PacketStore};

    fn pkt(store: &mut PacketStore) -> PacketId {
        store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            1,
            0,
        ))
    }

    #[test]
    fn disabled_tracer_records_nothing_and_owns_nothing() {
        let mut store = PacketStore::new();
        let p = pkt(&mut store);
        let mut t = Tracer::disabled();
        assert!(!t.events_on() && !t.counters_on());
        // The macro's gate means push_event is never reached; even a
        // direct call is a filtered no-op.
        t.push_event(NodeId::new(0), TraceEvent::Eject { pkt: p });
        t.count_stall(NodeId::new(0), StallCause::SaLost);
        t.sample_occupancy(0, 3);
        assert_eq!(t.num_nodes(), 0);
        assert!(t.metrics().is_empty());
        assert_eq!(t.records_in_order().len(), 0);
    }

    #[test]
    fn counters_mode_counts_but_keeps_no_events() {
        let mut store = PacketStore::new();
        let p = pkt(&mut store);
        let mut t = Tracer::new(&TraceConfig::counters(), 4);
        assert!(t.counters_on() && !t.events_on());
        t.count_inject(NodeId::new(2), 0);
        t.count_stall(NodeId::new(2), StallCause::NoFreeVc);
        trace!(t, NodeId::new(2), || TraceEvent::Eject { pkt: p });
        assert_eq!(t.metrics()[2].injected[0], 1);
        assert_eq!(t.metrics()[2].stalls[StallCause::NoFreeVc.index()], 1);
        assert_eq!(t.total_events(), 0, "no rings in counters mode");
    }

    #[test]
    fn event_ordering_is_global_across_nodes() {
        let mut store = PacketStore::new();
        let p = pkt(&mut store);
        let q = pkt(&mut store);
        let mut t = Tracer::new(&TraceConfig::full(), 4);
        t.set_now(10);
        // Interleave nodes; the merged order must match recording order,
        // not node order.
        t.push_event(NodeId::new(3), TraceEvent::Inject { pkt: p, vc: 0 });
        t.push_event(NodeId::new(0), TraceEvent::Inject { pkt: q, vc: 1 });
        t.set_now(11);
        t.push_event(NodeId::new(3), TraceEvent::Eject { pkt: p });
        let recs = t.records_in_order();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.node.index()).collect::<Vec<_>>(),
            vec![3, 0, 3]
        );
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(recs[0].cycle, 10);
        assert_eq!(recs[2].cycle, 11);
    }

    #[test]
    fn window_and_node_filters_apply() {
        let mut store = PacketStore::new();
        let p = pkt(&mut store);
        let cfg = TraceConfig {
            level: TraceLevel::Full,
            window: Some((100, 200)),
            nodes: Some(vec![NodeId::new(1)]),
            ring_capacity: 16,
        };
        let mut t = Tracer::new(&cfg, 4);
        t.set_now(50); // before window
        t.push_event(NodeId::new(1), TraceEvent::Eject { pkt: p });
        t.count_stall(NodeId::new(1), StallCause::SaLost);
        t.set_now(150); // inside window
        t.push_event(NodeId::new(1), TraceEvent::Eject { pkt: p });
        t.push_event(NodeId::new(2), TraceEvent::Eject { pkt: p }); // filtered node
        t.count_stall(NodeId::new(2), StallCause::SaLost); // counters ignore node filter
        t.set_now(200); // past window (half-open)
        t.push_event(NodeId::new(1), TraceEvent::Eject { pkt: p });
        let recs = t.records_in_order();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cycle, 150);
        assert_eq!(t.metrics()[1].stalls[StallCause::SaLost.index()], 0);
        assert_eq!(t.metrics()[2].stalls[StallCause::SaLost.index()], 1);
    }

    #[test]
    fn lane_histogram_clamps_to_last_bucket() {
        let mut t = Tracer::new(&TraceConfig::counters(), 2);
        t.sample_lanes(0);
        t.sample_lanes(1);
        t.sample_lanes(50); // way past the 3-bucket histogram
        let report = t.metrics_report();
        assert_eq!(report.lane_occupancy, vec![1, 1, 1]);
    }

    #[test]
    fn trace_level_parses() {
        assert_eq!(TraceLevel::parse("full"), Ok(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("OFF"), Ok(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("Counters"), Ok(TraceLevel::Counters));
        assert!(TraceLevel::parse("verbose").is_err());
        assert_eq!(TraceLevel::Full.name(), "full");
    }
}
