//! Per-router and per-class counters (the `RouterMetrics` section of
//! traced stats output).
//!
//! Counters are plain pre-allocated integer arrays bumped by the tracer
//! in counters/full mode — the per-cycle cost is a branch plus an add,
//! and in off mode just the branch. Serialization is implemented by hand
//! (not derived) so the JSON shape is an explicit, stable contract.

use crate::event::StallCause;
use noc_core::packet::NUM_CLASSES;
use serde::{Content, Serialize};

/// Counters for one router/NI pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Sum over sampled cycles of the router's occupied-VC count; divide
    /// by [`RouterMetrics::cycles_sampled`] for mean buffer occupancy.
    pub occupancy_integral: u64,
    /// Cycles the occupancy integral covers.
    pub cycles_sampled: u64,
    /// Packets injected into the router's local port, per class.
    pub injected: [u64; NUM_CLASSES],
    /// Packets whose tail ejected into the NI, per class.
    pub ejected: [u64; NUM_CLASSES],
    /// Stall cycles by cause, indexed by [`StallCause::index`].
    pub stalls: [u64; StallCause::COUNT],
    /// Flits sent over this router's outgoing links by the regular
    /// pipeline.
    pub link_flits_regular: u64,
    /// Flit-cycles of FastPass lanes on this router's outgoing links.
    pub link_flits_bypass: u64,
    /// FastPass upgrades launched at this router (prime routers only).
    pub bypass_launches: u64,
}

impl RouterMetrics {
    /// Mean occupied VCs over the sampled window (0 when unsampled).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles_sampled == 0 {
            0.0
        } else {
            self.occupancy_integral as f64 / self.cycles_sampled as f64
        }
    }

    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

fn u64_seq(xs: &[u64]) -> Content {
    Content::Seq(xs.iter().map(|&x| Content::U128(x as u128)).collect())
}

impl Serialize for RouterMetrics {
    fn to_content(&self) -> Content {
        let stall_map = StallCause::ALL
            .iter()
            .map(|&c| {
                (
                    c.label().to_string(),
                    Content::U128(self.stalls[c.index()] as u128),
                )
            })
            .collect();
        Content::Map(vec![
            (
                "occupancy_integral".to_string(),
                Content::U128(self.occupancy_integral as u128),
            ),
            (
                "cycles_sampled".to_string(),
                Content::U128(self.cycles_sampled as u128),
            ),
            (
                "mean_occupancy".to_string(),
                Content::F64(self.mean_occupancy()),
            ),
            ("injected".to_string(), u64_seq(&self.injected)),
            ("ejected".to_string(), u64_seq(&self.ejected)),
            ("stalls".to_string(), Content::Map(stall_map)),
            (
                "link_flits_regular".to_string(),
                Content::U128(self.link_flits_regular as u128),
            ),
            (
                "link_flits_bypass".to_string(),
                Content::U128(self.link_flits_bypass as u128),
            ),
            (
                "bypass_launches".to_string(),
                Content::U128(self.bypass_launches as u128),
            ),
        ])
    }
}

/// Network-wide sums of [`RouterMetrics`] counters, as one `Copy` value.
///
/// This is the reuse point for the windowed sampler: every counter here
/// is monotonically non-decreasing while tracing stays enabled, so two
/// totals bracketing a window subtract to the window's exact stall /
/// link-utilization contribution without walking per-router state twice.
/// With tracing disabled (or at [`TraceLevel::Off`](crate::TraceLevel))
/// all fields are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkTotals {
    /// Sum of per-router occupancy integrals.
    pub occupancy_integral: u64,
    /// Packets injected, summed over routers and classes.
    pub injected: u64,
    /// Packets ejected, summed over routers and classes.
    pub ejected: u64,
    /// Stall cycles by cause, summed over routers.
    pub stalls: [u64; StallCause::COUNT],
    /// Regular-pipeline link flits, summed over routers.
    pub link_flits_regular: u64,
    /// FastPass-lane flit-cycles, summed over routers.
    pub link_flits_bypass: u64,
    /// FastPass upgrades launched, summed over routers.
    pub bypass_launches: u64,
}

impl NetworkTotals {
    /// Sums the given per-router counters.
    pub fn accumulate(routers: &[RouterMetrics]) -> NetworkTotals {
        let mut t = NetworkTotals::default();
        for r in routers {
            t.occupancy_integral += r.occupancy_integral;
            t.injected += r.injected.iter().sum::<u64>();
            t.ejected += r.ejected.iter().sum::<u64>();
            for (acc, &s) in t.stalls.iter_mut().zip(r.stalls.iter()) {
                *acc += s;
            }
            t.link_flits_regular += r.link_flits_regular;
            t.link_flits_bypass += r.link_flits_bypass;
            t.bypass_launches += r.bypass_launches;
        }
        t
    }

    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Field-wise `self - earlier` (saturating: a tracer re-arm between
    /// totals degrades to zeros instead of wrapping).
    pub fn delta_since(&self, earlier: &NetworkTotals) -> NetworkTotals {
        let mut d = NetworkTotals {
            occupancy_integral: self
                .occupancy_integral
                .saturating_sub(earlier.occupancy_integral),
            injected: self.injected.saturating_sub(earlier.injected),
            ejected: self.ejected.saturating_sub(earlier.ejected),
            stalls: [0; StallCause::COUNT],
            link_flits_regular: self
                .link_flits_regular
                .saturating_sub(earlier.link_flits_regular),
            link_flits_bypass: self
                .link_flits_bypass
                .saturating_sub(earlier.link_flits_bypass),
            bypass_launches: self.bypass_launches.saturating_sub(earlier.bypass_launches),
        };
        for (i, s) in d.stalls.iter_mut().enumerate() {
            *s = self.stalls[i].saturating_sub(earlier.stalls[i]);
        }
        d
    }
}

/// The full metrics section: every router plus network-wide histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Per-router counters, indexed by node index.
    pub routers: Vec<RouterMetrics>,
    /// Histogram of concurrently active FastPass flights: bucket `i`
    /// counts sampled cycles with exactly `i` flights in the air (the
    /// last bucket aggregates `≥ len-1`).
    pub lane_occupancy: Vec<u64>,
    /// Full-mode events lost to ring-buffer overwriting.
    pub dropped_events: u64,
}

impl Serialize for MetricsReport {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "routers".to_string(),
                Content::Seq(self.routers.iter().map(|r| r.to_content()).collect()),
            ),
            ("lane_occupancy".to_string(), u64_seq(&self.lane_occupancy)),
            (
                "dropped_events".to_string(),
                Content::U128(self.dropped_events as u128),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_occupancy_handles_empty_window() {
        let m = RouterMetrics::default();
        assert_eq!(m.mean_occupancy(), 0.0);
        let m = RouterMetrics {
            occupancy_integral: 10,
            cycles_sampled: 4,
            ..Default::default()
        };
        assert_eq!(m.mean_occupancy(), 2.5);
    }

    #[test]
    fn totals_accumulate_and_delta() {
        let mut a = RouterMetrics::default();
        a.stalls[StallCause::SaLost.index()] = 3;
        a.injected[0] = 5;
        a.link_flits_regular = 7;
        let mut b = RouterMetrics::default();
        b.stalls[StallCause::SaLost.index()] = 2;
        b.ejected[1] = 4;
        b.bypass_launches = 1;
        let t = NetworkTotals::accumulate(&[a, b]);
        assert_eq!(t.stalls[StallCause::SaLost.index()], 5);
        assert_eq!(t.total_stalls(), 5);
        assert_eq!(t.injected, 5);
        assert_eq!(t.ejected, 4);
        assert_eq!(t.link_flits_regular, 7);
        assert_eq!(t.bypass_launches, 1);

        let mut later = t;
        later.stalls[StallCause::SaLost.index()] += 10;
        later.link_flits_bypass += 6;
        let d = later.delta_since(&t);
        assert_eq!(d.stalls[StallCause::SaLost.index()], 10);
        assert_eq!(d.link_flits_bypass, 6);
        assert_eq!(d.injected, 0);
        // Saturating across a re-arm: earlier bigger than later clamps.
        assert_eq!(t.delta_since(&later).total_stalls(), 0);
        // Disabled tracer shape: no routers, all-zero totals.
        assert_eq!(NetworkTotals::accumulate(&[]), NetworkTotals::default());
    }

    #[test]
    fn report_serializes_to_well_formed_json() {
        let mut r = RouterMetrics::default();
        r.stalls[StallCause::SaLost.index()] = 3;
        r.injected[0] = 5;
        let report = MetricsReport {
            routers: vec![r],
            lane_occupancy: vec![10, 2, 0],
            dropped_events: 1,
        };
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("\"sa_lost\": 3"), "{json}");
        assert!(json.contains("\"lane_occupancy\""), "{json}");
        // Round-trips through the generic JSON parser.
        let parsed: Content = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed.as_map().is_some());
    }
}
