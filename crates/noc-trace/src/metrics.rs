//! Per-router and per-class counters (the `RouterMetrics` section of
//! traced stats output).
//!
//! Counters are plain pre-allocated integer arrays bumped by the tracer
//! in counters/full mode — the per-cycle cost is a branch plus an add,
//! and in off mode just the branch. Serialization is implemented by hand
//! (not derived) so the JSON shape is an explicit, stable contract.

use crate::event::StallCause;
use noc_core::packet::NUM_CLASSES;
use serde::{Content, Serialize};

/// Counters for one router/NI pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Sum over sampled cycles of the router's occupied-VC count; divide
    /// by [`RouterMetrics::cycles_sampled`] for mean buffer occupancy.
    pub occupancy_integral: u64,
    /// Cycles the occupancy integral covers.
    pub cycles_sampled: u64,
    /// Packets injected into the router's local port, per class.
    pub injected: [u64; NUM_CLASSES],
    /// Packets whose tail ejected into the NI, per class.
    pub ejected: [u64; NUM_CLASSES],
    /// Stall cycles by cause, indexed by [`StallCause::index`].
    pub stalls: [u64; StallCause::COUNT],
    /// Flits sent over this router's outgoing links by the regular
    /// pipeline.
    pub link_flits_regular: u64,
    /// Flit-cycles of FastPass lanes on this router's outgoing links.
    pub link_flits_bypass: u64,
    /// FastPass upgrades launched at this router (prime routers only).
    pub bypass_launches: u64,
}

impl RouterMetrics {
    /// Mean occupied VCs over the sampled window (0 when unsampled).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles_sampled == 0 {
            0.0
        } else {
            self.occupancy_integral as f64 / self.cycles_sampled as f64
        }
    }

    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

fn u64_seq(xs: &[u64]) -> Content {
    Content::Seq(xs.iter().map(|&x| Content::U128(x as u128)).collect())
}

impl Serialize for RouterMetrics {
    fn to_content(&self) -> Content {
        let stall_map = StallCause::ALL
            .iter()
            .map(|&c| {
                (
                    c.label().to_string(),
                    Content::U128(self.stalls[c.index()] as u128),
                )
            })
            .collect();
        Content::Map(vec![
            (
                "occupancy_integral".to_string(),
                Content::U128(self.occupancy_integral as u128),
            ),
            (
                "cycles_sampled".to_string(),
                Content::U128(self.cycles_sampled as u128),
            ),
            (
                "mean_occupancy".to_string(),
                Content::F64(self.mean_occupancy()),
            ),
            ("injected".to_string(), u64_seq(&self.injected)),
            ("ejected".to_string(), u64_seq(&self.ejected)),
            ("stalls".to_string(), Content::Map(stall_map)),
            (
                "link_flits_regular".to_string(),
                Content::U128(self.link_flits_regular as u128),
            ),
            (
                "link_flits_bypass".to_string(),
                Content::U128(self.link_flits_bypass as u128),
            ),
            (
                "bypass_launches".to_string(),
                Content::U128(self.bypass_launches as u128),
            ),
        ])
    }
}

/// The full metrics section: every router plus network-wide histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Per-router counters, indexed by node index.
    pub routers: Vec<RouterMetrics>,
    /// Histogram of concurrently active FastPass flights: bucket `i`
    /// counts sampled cycles with exactly `i` flights in the air (the
    /// last bucket aggregates `≥ len-1`).
    pub lane_occupancy: Vec<u64>,
    /// Full-mode events lost to ring-buffer overwriting.
    pub dropped_events: u64,
}

impl Serialize for MetricsReport {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "routers".to_string(),
                Content::Seq(self.routers.iter().map(|r| r.to_content()).collect()),
            ),
            ("lane_occupancy".to_string(), u64_seq(&self.lane_occupancy)),
            (
                "dropped_events".to_string(),
                Content::U128(self.dropped_events as u128),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_occupancy_handles_empty_window() {
        let m = RouterMetrics::default();
        assert_eq!(m.mean_occupancy(), 0.0);
        let m = RouterMetrics {
            occupancy_integral: 10,
            cycles_sampled: 4,
            ..Default::default()
        };
        assert_eq!(m.mean_occupancy(), 2.5);
    }

    #[test]
    fn report_serializes_to_well_formed_json() {
        let mut r = RouterMetrics::default();
        r.stalls[StallCause::SaLost.index()] = 3;
        r.injected[0] = 5;
        let report = MetricsReport {
            routers: vec![r],
            lane_occupancy: vec![10, 2, 0],
            dropped_events: 1,
        };
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("\"sa_lost\": 3"), "{json}");
        assert!(json.contains("\"lane_occupancy\""), "{json}");
        // Round-trips through the generic JSON parser.
        let parsed: Content = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed.as_map().is_some());
    }
}
