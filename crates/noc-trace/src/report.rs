//! Textual per-packet lifetime report.
//!
//! Merges every node's event ring into per-packet timelines: one block
//! per packet id, one line per event, in exact recording order. This is
//! the "why did packet N take 400 cycles" view — grep for the packet id
//! and read its life story.

use crate::event::TraceRecord;
use crate::Tracer;
use std::fmt::Write as _;

/// Renders the lifetime of every traced packet, ordered by packet id.
///
/// Events lost to ring overwriting are summarized in a header line so a
/// truncated lifetime is never mistaken for a complete one.
pub fn packet_lifetimes(tracer: &Tracer) -> String {
    let mut records: Vec<TraceRecord> = tracer.records_in_order();
    records.sort_by_key(|r| (r.event.pkt().raw(), r.seq));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# packet lifetimes: {} events from {} nodes ({} dropped by ring overwrite)",
        records.len(),
        tracer.num_nodes(),
        tracer.dropped_events()
    );
    let mut current: Option<u64> = None;
    for rec in &records {
        let pkt = rec.event.pkt();
        if current != Some(pkt.raw()) {
            let _ = writeln!(out, "\npacket {pkt}:");
            current = Some(pkt.raw());
        }
        let _ = writeln!(
            out,
            "  cycle {:>8}  node {:>4}  {}",
            rec.cycle,
            rec.node.index(),
            rec.event
        );
    }
    out
}

/// Renders the lifetime of one packet (empty string if never traced).
pub fn packet_lifetime(tracer: &Tracer, pkt_raw: u64) -> String {
    let mut records: Vec<TraceRecord> = tracer.records_in_order();
    records.retain(|r| r.event.pkt().raw() == pkt_raw);
    if records.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "packet P{pkt_raw}:");
    for rec in &records {
        let _ = writeln!(
            out,
            "  cycle {:>8}  node {:>4}  {}",
            rec.cycle,
            rec.node.index(),
            rec.event
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::{TraceConfig, TraceLevel};
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::NodeId;

    #[test]
    fn lifetimes_group_events_by_packet_in_order() {
        let mut store = PacketStore::new();
        let a = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(3),
            MessageClass::Request,
            1,
            0,
        ));
        let b = store.insert(Packet::new(
            NodeId::new(1),
            NodeId::new(2),
            MessageClass::Response,
            1,
            0,
        ));
        let cfg = TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        };
        let mut t = Tracer::new(&cfg, 4);
        t.set_now(1);
        t.push_event(NodeId::new(0), TraceEvent::Inject { pkt: a, vc: 0 });
        t.push_event(NodeId::new(1), TraceEvent::Inject { pkt: b, vc: 1 });
        t.set_now(2);
        t.push_event(NodeId::new(3), TraceEvent::Eject { pkt: a });
        let text = packet_lifetimes(&t);
        let a_pos = text.find(&format!("packet {a}:")).expect("packet a block");
        let b_pos = text.find(&format!("packet {b}:")).expect("packet b block");
        assert!(a_pos < b_pos, "blocks ordered by packet id");
        // Within a's block, inject precedes eject.
        let inj = text.find("inject vc=0").expect("inject line");
        let ej = text.find("node    3  eject").expect("eject line");
        assert!(a_pos < inj && inj < ej && ej < b_pos);
        // Single-packet view contains only that packet.
        let only_b = packet_lifetime(&t, b.raw());
        assert!(only_b.contains("inject vc=1"));
        assert!(!only_b.contains("eject"));
        assert_eq!(packet_lifetime(&t, 999), "");
    }
}
