//! Fixed-capacity event rings.
//!
//! Each node records into its own [`EventRing`]: a pre-allocated,
//! overwrite-oldest circular buffer. Pushing is a bounds-checked indexed
//! store — no allocation ever happens after construction, which is what
//! lets the `trace!` hook live inside the simulator's hot loop.

use crate::event::TraceRecord;

/// A pre-allocated overwrite-oldest ring of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Write cursor: the slot the next record lands in once the ring is
    /// full (always 0 while still filling).
    next: usize,
    /// Records ever pushed (≥ `len`; the difference is how many were
    /// overwritten).
    total: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` records (`cap ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "event ring capacity must be at least 1");
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records one event, overwriting the oldest record when full. Never
    /// allocates: the backing storage was reserved at construction.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records ever pushed (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records lost to overwriting (oldest-first eviction).
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates the held records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (older, newer) = self.buf.split_at(self.next.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StallCause, TraceEvent};
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::NodeId;

    fn rec(store: &mut PacketStore, cycle: u64, seq: u64) -> TraceRecord {
        let pkt = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            1,
            cycle,
        ));
        TraceRecord {
            cycle,
            seq,
            node: NodeId::new(0),
            event: TraceEvent::Stall {
                pkt,
                cause: StallCause::SaLost,
            },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut store = PacketStore::new();
        let mut ring = EventRing::new(4);
        for i in 0..7u64 {
            ring.push(rec(&mut store, i, i));
        }
        // Capacity 4, 7 pushed: records 3..=6 survive, oldest first.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 7);
        assert_eq!(ring.dropped(), 3);
        let seqs: Vec<u64> = ring.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
    }

    #[test]
    fn partial_fill_iterates_in_push_order() {
        let mut store = PacketStore::new();
        let mut ring = EventRing::new(8);
        for i in 0..3u64 {
            ring.push(rec(&mut store, i, i));
        }
        assert_eq!(ring.dropped(), 0);
        let seqs: Vec<u64> = ring.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn wraparound_is_stable_over_many_generations() {
        let mut store = PacketStore::new();
        let mut ring = EventRing::new(3);
        for i in 0..100u64 {
            ring.push(rec(&mut store, i, i));
        }
        let seqs: Vec<u64> = ring.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![97, 98, 99]);
        assert_eq!(ring.dropped(), 97);
    }

    #[test]
    fn push_never_grows_the_backing_buffer() {
        let mut store = PacketStore::new();
        let mut ring = EventRing::new(5);
        let cap_before = ring.buf.capacity();
        for i in 0..50u64 {
            ring.push(rec(&mut store, i, i));
        }
        assert_eq!(
            ring.buf.capacity(),
            cap_before,
            "ring must never reallocate"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }
}
