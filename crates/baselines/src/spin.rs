//! SPIN \[31\]: Synchronized Progress in Interconnection Networks.
//!
//! SPIN pairs fully-adaptive routing with timeout-based deadlock
//! *detection*: a packet blocked past a threshold launches a probe that
//! walks the dependency chain; if the probe returns (a cycle exists),
//! every packet in the cycle moves forward one hop simultaneously — a
//! "spin". Each packet moves through its desired output into the buffer
//! vacated by the next, so spins are productive (no misrouting).
//!
//! The cost the paper highlights (and this model reproduces) is the
//! probe round-trip: detection latency grows with the dependency-chain
//! length, so SPIN pays heavily at saturation and scales poorly
//! (Table I, Fig. 8).

use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::FullyAdaptive;
use noc_sim::scheme::{Scheme, SchemeProperties, StateExport};
use noc_sim::waitgraph::{rotate_cycle, WaitGraph};

/// Tunables for [`Spin`].
#[derive(Debug, Clone, Copy)]
pub struct SpinConfig {
    /// Cycles a packet must be blocked before counting as suspected
    /// (Table II: 128).
    pub detection_threshold: u64,
    /// Cycles between suspicion scans.
    pub check_interval: u64,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            detection_threshold: 128,
            check_interval: 16,
        }
    }
}

/// The SPIN baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct Spin {
    cfg: SpinConfig,
    routing: FullyAdaptive,
    /// An outstanding probe: the cycle its round trip completes.
    probe_due: Option<u64>,
    /// Spins performed (diagnostics).
    pub spins: u64,
    /// Probes launched (diagnostics).
    pub probes: u64,
}

impl Spin {
    /// Creates the scheme.
    pub fn new(seed: u64, cfg: SpinConfig) -> Self {
        Spin {
            cfg,
            routing: FullyAdaptive::new(seed ^ 0x5917),
            probe_due: None,
            spins: 0,
            probes: 0,
        }
    }

    fn any_suspect(&self, core: &NetworkCore) -> bool {
        let now = core.cycle();
        let vcs = core.cfg().vcs_per_port();
        core.mesh().nodes().any(|n| {
            (0..noc_core::topology::NUM_PORTS).any(|p| {
                (0..vcs).any(|vc| {
                    core.input(n, p).occupant(vc).is_some_and(|o| {
                        o.route.is_none()
                            && o.quiescent()
                            && o.blocked_for(now) >= self.cfg.detection_threshold
                    })
                })
            })
        })
    }

    /// The probe's modelled round-trip latency: proportional to the
    /// network's diameter (the probe walks the dependency chain and
    /// back).
    fn probe_latency(core: &NetworkCore) -> u64 {
        (2 * core.mesh().diameter()) as u64
    }
}

impl Scheme for Spin {
    fn name(&self) -> &'static str {
        "SPIN"
    }

    fn properties(&self) -> SchemeProperties {
        // Table I, row SPIN: requires detection, no protocol freedom,
        // full path diversity, poor scalability.
        SchemeProperties {
            no_detection: false,
            protocol_deadlock_freedom: false,
            network_deadlock_freedom: true,
            full_path_diversity: true,
            high_throughput: false,
            low_power: false,
            scalable: false,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        6
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        match self.probe_due {
            None => {
                if cycle.is_multiple_of(self.cfg.check_interval) && self.any_suspect(core) {
                    self.probe_due = Some(cycle + Self::probe_latency(core));
                    self.probes += 1;
                }
            }
            Some(due) if cycle >= due => {
                self.probe_due = None;
                // Probe returned: rebuild the dependency graph and spin
                // the first confirmed cycle.
                let graph = WaitGraph::build(core, &self.routing, self.cfg.detection_threshold);
                let found = (0..graph.len()).find_map(|v| graph.find_cycle_from(v));
                if let Some(cycle_verts) = found {
                    rotate_cycle(core, &graph, &cycle_verts);
                    self.spins += 1;
                }
            }
            Some(_) => {}
        }
        advance(core, &mut self.routing, &AdvanceCtx::default());
    }

    fn export_state(&self, core: &NetworkCore, out: &mut StateExport) {
        let now = core.cycle();
        // Detection cadence: suspect checks fire on check_interval
        // boundaries.
        out.word(now % self.cfg.check_interval);
        match self.probe_due {
            Some(due) => {
                out.word(1);
                out.word(due.saturating_sub(now));
            }
            None => out.word(0),
        }
        // `spins`/`probes` are diagnostics; the adaptive routing RNG is a
        // documented abstraction (merges schedules, never invents).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn cfg(vcs: usize) -> SimConfig {
        SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(vcs)
            .seed(8)
            .build()
    }

    #[test]
    fn survives_saturation_with_adaptive_routing() {
        // Fully-adaptive + tiny VC budget is the deadlock-prone corner;
        // SPIN must keep the network moving.
        let sim_cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(1)
            .seed(8)
            .build();
        let mut sim = Simulation::new(
            sim_cfg,
            Box::new(Spin::new(1, SpinConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.7, 2)),
        );
        sim.run(40_000);
        assert!(
            sim.starvation_cycles() < 4_000,
            "SPIN wedged: starved {} cycles",
            sim.starvation_cycles()
        );
        assert!(sim.total_consumed() > 500);
    }

    #[test]
    fn no_probes_at_low_load() {
        let mut core = NetworkCore::new(cfg(2));
        let mut spin = Spin::new(1, SpinConfig::default());
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.02, 2);
        use noc_sim::Workload;
        for _ in 0..3_000 {
            wl.tick(&mut core);
            spin.step(&mut core);
            let now = core.cycle();
            for n in core.mesh().nodes() {
                for class in noc_core::packet::CLASSES {
                    if core.ni(n).ej_consumable(class, now).is_some() {
                        let e = core.ni_mut(n).pop_ej(class).unwrap();
                        core.store.remove(e.pkt);
                    }
                }
            }
            core.advance_cycle();
        }
        assert_eq!(spin.probes, 0, "no suspicion at trivial load");
        assert_eq!(spin.spins, 0);
    }

    #[test]
    fn probe_latency_scales_with_size() {
        let small = NetworkCore::new(cfg(2));
        let big = NetworkCore::new(SimConfig::builder().mesh(8, 8).vns(6).vcs_per_vn(2).build());
        assert!(Spin::probe_latency(&big) > Spin::probe_latency(&small));
    }
}
