//! Token Flow Control \[19\].
//!
//! TFC routers broadcast *tokens* advertising downstream buffer
//! availability within a small region, letting packets pick less
//! congested admissible outputs (and, in the original hardware, skip
//! pipeline stages — a no-op here since the substrate's routers are
//! already single-cycle for every scheme, matching Table II's 1-cycle
//! router latency). Routing is west-first (Table II), which is what
//! limits TFC's path diversity on adversarial patterns and drives its
//! early saturation in Fig. 7.

use noc_core::rng::DetRng;
use noc_core::topology::{Direction, NodeId, Port};
use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::{
    downstream_credits, free_downstream_vc, RouteDecision, RouteReq, RoutingPolicy, WestFirst,
};
use noc_sim::scheme::{Scheme, SchemeProperties};

/// West-first routing weighted by region tokens: the score of a
/// direction is the free-VC count one hop away plus the free-VC count
/// two hops straight ahead (the token broadcast radius of \[19\]).
#[derive(Debug)]
struct TokenWestFirst {
    rng: DetRng,
}

impl TokenWestFirst {
    fn token_score(core: &NetworkCore, at: NodeId, d: Direction, class: usize) -> usize {
        let near = downstream_credits(core, at, d, class);
        let far = core
            .mesh()
            .neighbor(at, d)
            .map(|n| downstream_credits(core, n, d, class))
            .unwrap_or(0);
        2 * near + far
    }
}

impl RoutingPolicy for TokenWestFirst {
    fn name(&self) -> &'static str {
        "token-west-first"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if req.dst == req.at {
            return Some(RouteDecision {
                out_port: Port::Local,
                out_vc: 0,
            });
        }
        let class = req.class.index();
        let mut best: Option<(usize, Direction, usize)> = None;
        for dir in WestFirst::admissible(core, req.at, req.dst) {
            if let Some(vc) = free_downstream_vc(core, req.at, dir, class) {
                let score = Self::token_score(core, req.at, dir, class);
                let better = match best {
                    Some((b, _, _)) => score > b || (score == b && self.rng.chance(0.5)),
                    None => true,
                };
                if better {
                    best = Some((score, dir, vc));
                }
            }
        }
        best.map(|(_, dir, vc)| RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            WestFirst::admissible(core, req.at, req.dst)
                .into_iter()
                .map(Port::Dir)
                .collect()
        }
    }
}

/// The TFC baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct Tfc {
    routing: TokenWestFirst,
}

impl Tfc {
    /// Creates the scheme; `seed` feeds tie-breaking.
    pub fn new(seed: u64) -> Self {
        Tfc {
            routing: TokenWestFirst {
                rng: DetRng::new(seed ^ 0x7F_C0DE),
            },
        }
    }
}

impl Scheme for Tfc {
    fn name(&self) -> &'static str {
        "TFC"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: false, // needs 6 VNs
            network_deadlock_freedom: true,   // west-first
            full_path_diversity: false,
            high_throughput: false,
            low_power: false,
            scalable: true,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        6
    }

    fn step(&mut self, core: &mut NetworkCore) {
        advance(core, &mut self.routing, &AdvanceCtx::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn sim(rate: f64, pattern: SyntheticPattern) -> Simulation {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(2)
            .seed(4)
            .build();
        Simulation::new(
            cfg,
            Box::new(Tfc::new(5)),
            Box::new(SyntheticWorkload::new(pattern, rate, 6)),
        )
    }

    #[test]
    fn delivers_without_wedging() {
        let mut s = sim(0.5, SyntheticPattern::Uniform);
        s.run(15_000);
        assert!(s.starvation_cycles() < 500);
        assert!(s.total_consumed() > 500);
    }

    #[test]
    fn west_first_restriction_is_respected() {
        // A packet that needs to go west must be routed west first; run a
        // westbound-heavy pattern and confirm delivery (correctness of
        // the restricted turns).
        let mut s = sim(0.1, SyntheticPattern::Transpose);
        let stats = s.run_windows(1_000, 4_000);
        assert!(stats.delivered() > 50);
    }

    #[test]
    fn tokens_spread_load_relative_to_plain_west_first() {
        // Token-weighted selection must not be worse than blind west-first.
        let measure = |tokens: bool| {
            let cfg = SimConfig::builder()
                .mesh(4, 4)
                .vns(6)
                .vcs_per_vn(2)
                .seed(4)
                .build();
            let scheme: Box<dyn noc_sim::Scheme> = if tokens {
                Box::new(Tfc::new(5))
            } else {
                Box::new(crate::vct::CreditVct::xy(6))
            };
            let mut s = Simulation::new(
                cfg,
                scheme,
                Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.35, 6)),
            );
            s.run_windows(3_000, 6_000).throughput_packets()
        };
        let tfc = measure(true);
        let xy = measure(false);
        assert!(tfc > xy * 0.8, "tfc {tfc:.4} vs xy {xy:.4}");
    }
}
