//! SWAP \[26\]: Synchronized Weaving of Adjacent Packets.
//!
//! SWAP avoids detection entirely: on a fixed duty cycle (Table II: 1K
//! cycles), a long-blocked packet *swaps places* with the packet
//! occupying the downstream buffer it waits on. The blocked packet makes
//! forward progress; the displaced packet is misrouted one hop backward.
//! Periodic forced progress breaks any network-level deadlock without
//! probes, at the cost of misrouting (Table I).

use noc_core::topology::{NodeId, Port, NUM_PORTS};
use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::{FullyAdaptive, RouteReq, RoutingPolicy};
use noc_sim::scheme::{Scheme, SchemeProperties};
use noc_sim::vc::VcOccupant;

/// Tunables for [`Swap`].
#[derive(Debug, Clone, Copy)]
pub struct SwapConfig {
    /// Cycles between swap sweeps (Table II: 1000).
    pub duty: u64,
    /// Minimum blocked time before a packet is eligible to force a swap.
    pub threshold: u64,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            duty: 1_000,
            threshold: 200,
        }
    }
}

/// The SWAP baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct Swap {
    cfg: SwapConfig,
    routing: FullyAdaptive,
    /// Swaps performed (diagnostics).
    pub swaps: u64,
}

impl Swap {
    /// Creates the scheme.
    pub fn new(seed: u64, cfg: SwapConfig) -> Self {
        Swap {
            cfg,
            routing: FullyAdaptive::new(seed ^ 0x53A9),
            swaps: 0,
        }
    }

    /// Performs at most one swap per router this sweep.
    fn sweep(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        let vcs = core.cfg().vcs_per_port();
        let nodes: Vec<NodeId> = core.nodes_rotating().collect();
        for node in nodes {
            'this_router: for p in 0..NUM_PORTS {
                for vc in 0..vcs {
                    let Some(occ) = core.input(node, p).occupant(vc) else {
                        continue;
                    };
                    if !occ.quiescent()
                        || occ.route.is_some()
                        || occ.out_vc.is_some()
                        || occ.blocked_for(now) < self.cfg.threshold
                    {
                        continue;
                    }
                    let req = RouteReq::new(core, node, Port::from_index(p), vc, occ.pkt);
                    let desired = self.routing.desired_ports(core, &req);
                    for port in desired {
                        let Port::Dir(d) = port else { continue };
                        let Some(nbr) = core.mesh().neighbor(node, d) else {
                            continue;
                        };
                        let nbr_in = Port::Dir(d.opposite()).index();
                        let range = core.cfg().vc_range_for_class(req.class.index());
                        for nvc in range {
                            let Some(victim) = core.input(nbr, nbr_in).occupant(nvc) else {
                                continue;
                            };
                            if !victim.quiescent() || victim.out_vc.is_some() {
                                continue;
                            }
                            // Swap: the blocked packet advances through
                            // its desired output; the victim is misrouted
                            // one hop backward into the vacated slot.
                            let fwd = core.take_vc_packet(node, Port::from_index(p), vc);
                            let back = core.take_vc_packet(nbr, Port::from_index(nbr_in), nvc);
                            let fwd_len = core.store.get(fwd).len_flits;
                            let back_len = core.store.get(back).len_flits;
                            let mut fwd_occ = VcOccupant::reserved(fwd, fwd_len, now);
                            fwd_occ.arrived = fwd_len;
                            core.input_mut(nbr, nbr_in).install(nvc, fwd_occ);
                            let mut back_occ = VcOccupant::reserved(back, back_len, now);
                            back_occ.arrived = back_len;
                            core.input_mut(node, p).install(vc, back_occ);
                            {
                                let f = core.store.get_mut(fwd);
                                f.hops += 1;
                            }
                            {
                                let b = core.store.get_mut(back);
                                b.hops += 1;
                                b.deflections += 1;
                            }
                            self.swaps += 1;
                            continue 'this_router;
                        }
                    }
                }
            }
        }
    }
}

impl Scheme for Swap {
    fn name(&self) -> &'static str {
        "SWAP"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: false,
            network_deadlock_freedom: true,
            full_path_diversity: true,
            high_throughput: false,
            low_power: false,
            scalable: true,
            no_misrouting: false, // the displaced packet is misrouted
        }
    }

    fn required_vns(&self) -> usize {
        6
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        if cycle > 0 && cycle.is_multiple_of(self.cfg.duty) {
            self.sweep(core);
        }
        advance(core, &mut self.routing, &AdvanceCtx::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    #[test]
    fn survives_saturation() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(1)
            .seed(3)
            .build();
        let mut sim = Simulation::new(
            cfg,
            Box::new(Swap::new(1, SwapConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.7, 2)),
        );
        sim.run(40_000);
        assert!(
            sim.starvation_cycles() < 4_000,
            "SWAP wedged: {}",
            sim.starvation_cycles()
        );
        assert!(sim.total_consumed() > 500);
    }

    #[test]
    fn swaps_count_as_misroutes() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(1)
            .seed(3)
            .build();
        let mut core = NetworkCore::new(cfg);
        let mut swap = Swap::new(
            1,
            SwapConfig {
                duty: 100,
                threshold: 50,
            },
        );
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.8, 2);
        use noc_sim::Workload;
        for _ in 0..20_000 {
            wl.tick(&mut core);
            swap.step(&mut core);
            let now = core.cycle();
            for n in core.mesh().nodes() {
                for class in noc_core::packet::CLASSES {
                    if core.ni(n).ej_consumable(class, now).is_some() {
                        let e = core.ni_mut(n).pop_ej(class).unwrap();
                        let p = core.store.remove(e.pkt);
                        core.stats.record_delivered(&p);
                    }
                }
            }
            core.advance_cycle();
        }
        assert!(
            swap.swaps > 0,
            "saturated adaptive traffic must trigger swaps"
        );
        // Deflections recorded at delivery never exceed swaps performed
        // (undelivered packets still hold theirs).
        assert!(core.stats.deflections <= swap.swaps);
    }

    #[test]
    fn no_swaps_at_low_load() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(2)
            .seed(3)
            .build();
        let mut sim = Simulation::new(
            cfg,
            Box::new(Swap::new(1, SwapConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.02, 2)),
        );
        let stats = sim.run_windows(2_000, 4_000);
        assert_eq!(stats.deflections, 0);
    }
}
