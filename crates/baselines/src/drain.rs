//! DRAIN \[24\]: deadlock removal by periodic coordinated circulation.
//!
//! DRAIN never detects anything: on a coarse period (Table II: 64K
//! cycles) the whole network enters a *drain epoch* during which regular
//! movement is frozen and every buffered packet circulates in lockstep
//! along a predefined Hamiltonian ring. Because everyone moves at once,
//! movement never needs free buffers — any deadlock cycle is forcibly
//! rotated apart, and packets passing over their destination eject. The
//! price is wholesale misrouting, which is what gives DRAIN the worst
//! tail latency in Fig. 12.
//!
//! The ring is the classic serpentine Hamiltonian cycle, which exists
//! whenever at least one mesh dimension is even (an odd×odd mesh has an
//! odd number of vertices and, being bipartite, admits no Hamiltonian
//! cycle — construction rejects it, as does the DRAIN paper's).

use noc_core::packet::PacketId;
use noc_core::topology::{Mesh, NodeId, NUM_PORTS};
use noc_sim::network::NetworkCore;
use noc_sim::ni::EjectEntry;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::FullyAdaptive;
use noc_sim::scheme::{Scheme, SchemeProperties};
use noc_sim::vc::VcOccupant;

/// Tunables for [`Drain`].
#[derive(Debug, Clone, Copy)]
pub struct DrainConfig {
    /// Cycles between drain epochs (Table II: 64K).
    pub period: u64,
    /// Cycles per ring step during an epoch (packet serialization:
    /// the maximum packet length).
    pub step_cycles: u64,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            period: 64_000,
            step_cycles: 5,
        }
    }
}

/// Builds the serpentine Hamiltonian cycle over a mesh.
///
/// Row 0 is traversed fully east; rows 1..h serpentine over columns
/// 1..w; column 0 carries the return path north. Requires even height
/// (or transposes the construction if the width is even instead).
///
/// # Panics
///
/// Panics for odd×odd meshes (no Hamiltonian cycle exists) and for
/// degenerate single-row/column meshes.
pub fn hamiltonian_ring(mesh: Mesh) -> Vec<NodeId> {
    let (w, h) = (mesh.width(), mesh.height());
    assert!(w >= 2 && h >= 2, "ring needs at least a 2×2 mesh");
    assert!(
        w % 2 == 0 || h % 2 == 0,
        "odd×odd meshes admit no Hamiltonian cycle"
    );
    // Ensure even height; otherwise build on the transpose and flip.
    let transpose = h % 2 != 0;
    let (w, h) = if transpose { (h, w) } else { (w, h) };
    let mut path = Vec::with_capacity(w * h);
    let push = |path: &mut Vec<NodeId>, x: usize, y: usize| {
        let (x, y) = if transpose { (y, x) } else { (x, y) };
        path.push(mesh.node(x, y));
    };
    for x in 0..w {
        push(&mut path, x, 0);
    }
    for y in 1..h {
        if y % 2 == 1 {
            for x in (1..w).rev() {
                push(&mut path, x, y);
            }
        } else {
            for x in 1..w {
                push(&mut path, x, y);
            }
        }
    }
    for y in (1..h).rev() {
        push(&mut path, 0, y);
    }
    path
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    /// Draining: `steps_left` ring steps remain; next step fires when
    /// `cycle % step_cycles == 0`.
    Draining {
        steps_left: usize,
    },
}

/// The DRAIN baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct Drain {
    cfg: DrainConfig,
    routing: FullyAdaptive,
    ring_next: Vec<usize>, // node index -> successor node index
    mode: Mode,
    /// Drain epochs entered (diagnostics).
    pub epochs: u64,
    /// Packets force-moved during drains (diagnostics).
    pub moves: u64,
}

impl Drain {
    /// Creates the scheme for the given mesh.
    pub fn new(mesh: Mesh, seed: u64, cfg: DrainConfig) -> Self {
        let ring = hamiltonian_ring(mesh);
        let mut ring_next = vec![usize::MAX; mesh.num_nodes()];
        for (i, &n) in ring.iter().enumerate() {
            ring_next[n.index()] = ring[(i + 1) % ring.len()].index();
        }
        Drain {
            cfg,
            routing: FullyAdaptive::new(seed ^ 0xD9A1),
            ring_next,
            mode: Mode::Normal,
            epochs: 0,
            moves: 0,
        }
    }

    /// One lockstep ring rotation: every movable packet advances to the
    /// same `(port, vc)` slot at its ring successor. A slot moves iff the
    /// whole chain ahead of it moves or ends in a free slot, computed per
    /// slot column around the ring.
    fn rotate_ring(&mut self, core: &mut NetworkCore) {
        let mesh = core.mesh();
        let now = core.cycle();
        let vcs = core.cfg().vcs_per_port();
        let n = mesh.num_nodes();
        for p in 0..NUM_PORTS {
            for vc in 0..vcs {
                // movable[i]: node i's (p,vc) occupant can participate.
                let mut movable = vec![false; n];
                let mut occupied = vec![false; n];
                for i in 0..n {
                    if let Some(occ) = core.input(NodeId::new(i), p).occupant(vc) {
                        occupied[i] = true;
                        movable[i] = occ.quiescent() && occ.out_vc.is_none();
                    }
                }
                // A movable packet moves iff its successor slot is free
                // or itself moving. Resolve by propagating "can move"
                // backward around each ring chain; iterate to fixpoint
                // (ring length bounded, cheap).
                let mut moves = movable.clone();
                loop {
                    let mut changed = false;
                    for i in 0..n {
                        if !moves[i] {
                            continue;
                        }
                        let succ = self.ring_next[i];
                        if occupied[succ] && !moves[succ] {
                            moves[i] = false;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                // Extract movers simultaneously, then reinstall shifted.
                let mut in_air: Vec<(usize, PacketId)> = Vec::new();
                for (i, &m) in moves.iter().enumerate() {
                    if m {
                        let pkt = core.take_vc_packet(
                            NodeId::new(i),
                            noc_core::topology::Port::from_index(p),
                            vc,
                        );
                        in_air.push((self.ring_next[i], pkt));
                    }
                }
                for (target, pkt) in in_air {
                    let node = NodeId::new(target);
                    self.moves += 1;
                    let (len, class, arrived_home) = {
                        let pk = core.store.get_mut(pkt);
                        pk.hops += 1;
                        pk.deflections += 1; // circulation is misrouting
                        (pk.len_flits, pk.class, pk.dst == node)
                    };
                    // Eject in passing if this is the destination and the
                    // queue has room; otherwise keep circulating.
                    if arrived_home && core.ni(node).ej_can_accept(class, pkt) {
                        let ready = now + core.cfg().ni_consume_cycles;
                        core.ni_mut(node).ej_begin(class, pkt);
                        core.store.get_mut(pkt).eject_cycle = Some(now);
                        core.ni_mut(node)
                            .ej_commit(class, EjectEntry { pkt, ready });
                        continue;
                    }
                    let mut occ = VcOccupant::reserved(pkt, len, now);
                    occ.arrived = len;
                    core.input_mut(node, p).install(vc, occ);
                }
            }
        }
    }
}

impl Scheme for Drain {
    fn name(&self) -> &'static str {
        "DRAIN"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: true, // works with 0 VNs in principle,
            network_deadlock_freedom: true,  // but needs non-minimal buffers [13]
            full_path_diversity: true,
            high_throughput: false,
            low_power: false,
            scalable: false,
            no_misrouting: false,
        }
    }

    fn required_vns(&self) -> usize {
        6
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        match self.mode {
            Mode::Normal => {
                if cycle > 0 && cycle.is_multiple_of(self.cfg.period) {
                    self.mode = Mode::Draining {
                        steps_left: core.mesh().num_nodes(),
                    };
                    self.epochs += 1;
                }
            }
            Mode::Draining { steps_left } => {
                if cycle.is_multiple_of(self.cfg.step_cycles) {
                    self.rotate_ring(core);
                    if steps_left <= 1 {
                        self.mode = Mode::Normal;
                    } else {
                        self.mode = Mode::Draining {
                            steps_left: steps_left - 1,
                        };
                    }
                }
            }
        }
        let freeze = matches!(self.mode, Mode::Draining { .. });
        let ctx = AdvanceCtx {
            freeze,
            ..Default::default()
        };
        advance(core, &mut self.routing, &ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    #[test]
    fn ring_is_hamiltonian() {
        for (w, h) in [(4, 4), (8, 8), (4, 6), (5, 4), (2, 2), (3, 4)] {
            let mesh = Mesh::new(w, h);
            let ring = hamiltonian_ring(mesh);
            assert_eq!(ring.len(), mesh.num_nodes(), "{w}x{h}: visits all");
            let set: std::collections::HashSet<_> = ring.iter().collect();
            assert_eq!(set.len(), ring.len(), "{w}x{h}: each node once");
            for i in 0..ring.len() {
                let a = ring[i];
                let b = ring[(i + 1) % ring.len()];
                assert_eq!(
                    mesh.hops(a, b),
                    1,
                    "{w}x{h}: ring step {a}->{b} not adjacent"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd×odd")]
    fn odd_odd_rejected() {
        let _ = hamiltonian_ring(Mesh::new(3, 3));
    }

    #[test]
    fn survives_saturation() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(1)
            .seed(5)
            .build();
        let mesh = cfg.mesh;
        let mut sim = Simulation::new(
            cfg,
            Box::new(Drain::new(
                mesh,
                1,
                DrainConfig {
                    period: 2_000,
                    step_cycles: 5,
                },
            )),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.7, 2)),
        );
        sim.run(40_000);
        assert!(
            sim.starvation_cycles() < 5_000,
            "DRAIN wedged: {}",
            sim.starvation_cycles()
        );
        assert!(sim.total_consumed() > 300);
    }

    #[test]
    fn drains_misroute_packets() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(1)
            .seed(5)
            .build();
        let mesh = cfg.mesh;
        let mut sim = Simulation::new(
            cfg,
            Box::new(Drain::new(
                mesh,
                1,
                DrainConfig {
                    period: 500,
                    step_cycles: 5,
                },
            )),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.4, 2)),
        );
        let stats = sim.run_windows(2_000, 8_000);
        assert!(
            stats.deflections > 0,
            "frequent drains must misroute buffered packets"
        );
    }

    #[test]
    fn no_epoch_before_period() {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(2)
            .seed(5)
            .build();
        let mesh = cfg.mesh;
        let mut core = NetworkCore::new(cfg);
        let mut drain = Drain::new(mesh, 1, DrainConfig::default());
        for _ in 0..10_000 {
            drain.step(&mut core);
            core.advance_cycle();
        }
        assert_eq!(drain.epochs, 0, "default period is 64K");
    }
}
