//! Plain credit-based virtual cut-through with a fixed routing policy.
//!
//! Not a scheme from the paper's comparison table, but the substrate
//! sanity baseline: deterministic XY (or YX) routing is network-deadlock-
//! free by turn restriction, and protocol-level deadlock freedom comes
//! only from VNs. Used by integration tests to demonstrate the deadlocks
//! that FastPass/Pitstop resolve and the VN-based baselines avoid.

use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::{DorXy, DorYx, RoutingPolicy};
use noc_sim::scheme::{Scheme, SchemeProperties};

/// Plain credit-based VCT (implements [`Scheme`]).
pub struct CreditVct {
    policy: Box<dyn RoutingPolicy>,
    vns: usize,
    name: &'static str,
}

impl std::fmt::Debug for CreditVct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CreditVct")
            .field("name", &self.name)
            .finish()
    }
}

impl CreditVct {
    /// XY-routed VCT with `vns` virtual networks.
    pub fn xy(vns: usize) -> Self {
        CreditVct {
            policy: Box::new(DorXy),
            vns,
            name: "VCT-XY",
        }
    }

    /// YX-routed VCT with `vns` virtual networks.
    pub fn yx(vns: usize) -> Self {
        CreditVct {
            policy: Box::new(DorYx),
            vns,
            name: "VCT-YX",
        }
    }
}

impl Scheme for CreditVct {
    fn name(&self) -> &'static str {
        self.name
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: false, // needs VNs
            network_deadlock_freedom: true,   // turn-restricted routing
            full_path_diversity: false,
            high_throughput: false,
            low_power: false,
            scalable: true,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        self.vns
    }

    fn step(&mut self, core: &mut NetworkCore) {
        advance(core, self.policy.as_mut(), &AdvanceCtx::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    #[test]
    fn xy_delivers_uniform_traffic() {
        let cfg = SimConfig::builder().mesh(4, 4).vns(6).vcs_per_vn(2).build();
        let mut sim = Simulation::new(
            cfg,
            Box::new(CreditVct::xy(6)),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.05, 1)),
        );
        let stats = sim.run_windows(1_000, 4_000);
        assert!(stats.delivered() > 100);
        assert!(sim.starvation_cycles() < 100);
    }

    #[test]
    fn yx_also_works_and_differs() {
        let cfg = SimConfig::builder().mesh(4, 4).vns(6).vcs_per_vn(2).build();
        let mut sim = Simulation::new(
            cfg,
            Box::new(CreditVct::yx(6)),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.1, 1)),
        );
        let stats = sim.run_windows(1_000, 4_000);
        assert!(stats.delivered() > 100);
    }

    #[test]
    fn zero_vn_variant_for_deadlock_demos() {
        let cfg = SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(2).build();
        let mut sim = Simulation::new(
            cfg,
            Box::new(CreditVct::xy(0)),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.05, 1)),
        );
        let stats = sim.run_windows(500, 2_000);
        assert!(stats.delivered() > 0);
    }
}
