//! EscapeVC \[8\]: Duato's escape-channel deadlock avoidance.
//!
//! Per VN, VC 0 is an escape channel routed deterministically (XY — a
//! west-first subset, as configured in Table II); the remaining VCs are
//! fully adaptive. Any blocked packet can always fall back to the escape
//! channel, whose turn-restricted routing admits no cycles, so the
//! network is deadlock-free without detection — at the cost of 6 VNs for
//! protocol-level freedom and reduced path diversity inside the escape
//! channel.

use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::EscapeVcRouting;
use noc_sim::scheme::{Scheme, SchemeProperties};

/// The EscapeVC baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct EscapeVc {
    routing: EscapeVcRouting,
}

impl EscapeVc {
    /// Creates the scheme; `seed` feeds adaptive tie-breaking.
    pub fn new(seed: u64) -> Self {
        EscapeVc {
            routing: EscapeVcRouting::new(seed ^ 0xE5CA_9E0C),
        }
    }
}

impl Scheme for EscapeVc {
    fn name(&self) -> &'static str {
        "EscapeVC"
    }

    fn properties(&self) -> SchemeProperties {
        // Table I, row "Escape VCs".
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: false,
            network_deadlock_freedom: true,
            full_path_diversity: false, // not within the escape VC
            high_throughput: false,
            low_power: false, // 6 VNs
            scalable: true,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        6
    }

    fn step(&mut self, core: &mut NetworkCore) {
        advance(core, &mut self.routing, &AdvanceCtx::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn sim(rate: f64, pattern: SyntheticPattern) -> Simulation {
        let cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(2)
            .seed(2)
            .build();
        Simulation::new(
            cfg,
            Box::new(EscapeVc::new(7)),
            Box::new(SyntheticWorkload::new(pattern, rate, 3)),
        )
    }

    #[test]
    fn delivers_and_never_wedges_at_high_load() {
        let mut s = sim(0.6, SyntheticPattern::Transpose);
        s.run(20_000);
        assert!(
            s.starvation_cycles() < 500,
            "escape channel must guarantee forward progress (got {})",
            s.starvation_cycles()
        );
        assert!(s.total_consumed() > 500);
    }

    #[test]
    fn adaptive_beats_dor_on_transpose() {
        // The adaptive VCs give EscapeVC more throughput than plain XY on
        // an adversarial pattern.
        let measure = |scheme: Box<dyn noc_sim::Scheme>| {
            let cfg = SimConfig::builder()
                .mesh(4, 4)
                .vns(6)
                .vcs_per_vn(2)
                .seed(2)
                .build();
            let mut s = Simulation::new(
                cfg,
                scheme,
                Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.30, 3)),
            );
            s.run_windows(3_000, 6_000).throughput_packets()
        };
        let escape = measure(Box::new(EscapeVc::new(7)));
        let xy = measure(Box::new(crate::vct::CreditVct::xy(6)));
        assert!(
            escape >= xy * 0.95,
            "escape ({escape:.4}) should at least match XY ({xy:.4}) on transpose"
        );
    }

    #[test]
    fn low_load_latency_reasonable() {
        let mut s = sim(0.02, SyntheticPattern::Uniform);
        let stats = s.run_windows(1_000, 4_000);
        assert!(stats.avg_latency() < 25.0, "{}", stats.avg_latency());
    }
}
