//! Pitstop \[13\]: a virtual-network-free NoC via NI pit lanes.
//!
//! Pitstop removes both deadlock types with **0 VNs** by letting blocked
//! packets pull into a *pit lane* at the local network interface and be
//! transported NI-to-NI to their destination, bypassing the clogged
//! router buffers (no misrouting, unlike DRAIN). To bound the NI storage
//! and wiring, only **one message class at a time** may use the pit
//! lanes (rotating on a TDM period), and the bypass transports one
//! packet at a time — the serialization that makes Pitstop's resolution
//! latency grow with network size (Table I footnote, §V-B), which
//! FastPass's concurrent per-partition lanes avoid.

use noc_core::packet::{MessageClass, PacketId, CLASSES};
use noc_core::topology::{NodeId, Port, NUM_PORTS};
use noc_sim::network::NetworkCore;
use noc_sim::ni::EjectEntry;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::FullyAdaptive;
use noc_sim::scheme::{Scheme, SchemeProperties, StateExport};
use std::collections::VecDeque;

/// Tunables for [`Pitstop`].
#[derive(Debug, Clone, Copy)]
pub struct PitstopConfig {
    /// Cycles each message class owns the pit lanes.
    pub class_period: u64,
    /// Pit capacity per node, in packets.
    pub pit_capacity: usize,
    /// Blocked time before a packet may pull into the pit.
    pub threshold: u64,
}

impl Default for PitstopConfig {
    fn default() -> Self {
        PitstopConfig {
            class_period: 256,
            pit_capacity: 4,
            threshold: 128,
        }
    }
}

/// A packet in the NI-to-NI bypass.
#[derive(Debug, Clone, Copy)]
struct BypassTransit {
    pkt: PacketId,
    dst: NodeId,
    arrival: u64,
}

/// The Pitstop baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct Pitstop {
    cfg: PitstopConfig,
    routing: FullyAdaptive,
    pits: Vec<VecDeque<PacketId>>,
    /// The single serialized bypass channel (one packet at a time).
    transit: Option<BypassTransit>,
    /// Round-robin dispatch pointer over nodes.
    dispatch_rr: usize,
    /// Packets absorbed into pits (diagnostics).
    pub absorbed: u64,
    /// Packets delivered over the bypass (diagnostics).
    pub bypassed: u64,
}

impl Pitstop {
    /// Creates the scheme for `nodes` nodes.
    pub fn new(nodes: usize, seed: u64, cfg: PitstopConfig) -> Self {
        Pitstop {
            cfg,
            routing: FullyAdaptive::new(seed ^ 0x9175_0907),
            pits: vec![VecDeque::new(); nodes],
            transit: None,
            dispatch_rr: 0,
            absorbed: 0,
            bypassed: 0,
        }
    }

    /// The message class currently owning the pit lanes.
    pub fn active_class(&self, cycle: u64) -> MessageClass {
        CLASSES[((cycle / self.cfg.class_period) % CLASSES.len() as u64) as usize]
    }

    /// Pit occupancy that counts against the absorption capacity:
    /// packets still needing transport. Packets that already landed at
    /// their destination sit in delivered-side NI storage and do not
    /// block further absorption.
    fn pit_load(&self, core: &NetworkCore, node: NodeId) -> usize {
        self.pits[node.index()]
            .iter()
            .filter(|&&pkt| core.store.get(pkt).dst != node)
            .count()
    }

    /// Absorb: one long-blocked packet of the active class per router
    /// per cycle may pull into the local pit — from the head of the
    /// class's injection queue (the NI-side pit entrance) or from a
    /// router input buffer.
    fn absorb(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        let active = self.active_class(now);
        let vcs = core.cfg().vcs_per_port();
        let nodes: Vec<NodeId> = core.nodes_rotating().collect();
        for node in nodes {
            if self.pit_load(core, node) >= self.cfg.pit_capacity {
                continue;
            }
            // NI-side entrance: a head packet stuck in the injection
            // queue of the active class joins the pit directly.
            if let Some(pkt) = core.ni(node).inj_head(active) {
                if core.store.get(pkt).gen_cycle + self.cfg.threshold <= now {
                    core.ni_mut(node).pop_inj(active);
                    if core.store.get(pkt).inject_cycle.is_none() {
                        core.store.get_mut(pkt).inject_cycle = Some(now);
                    }
                    self.pits[node.index()].push_back(pkt);
                    self.absorbed += 1;
                    continue;
                }
            }
            'found: for p in 0..NUM_PORTS {
                for vc in 0..vcs {
                    let Some(occ) = core.input(node, p).occupant(vc) else {
                        continue;
                    };
                    if !occ.quiescent()
                        || occ.route.is_some()
                        || occ.out_vc.is_some()
                        || occ.blocked_for(now) < self.cfg.threshold
                    {
                        continue;
                    }
                    if core.store.get(occ.pkt).class != active {
                        continue;
                    }
                    let pkt = core.take_vc_packet(node, Port::from_index(p), vc);
                    self.pits[node.index()].push_back(pkt);
                    self.absorbed += 1;
                    break 'found;
                }
            }
        }
    }

    /// Dispatch: when the bypass channel is idle, the next pit packet of
    /// the active class (round-robin over nodes) enters NI-to-NI transit;
    /// transit time models hop-by-hop store-and-forward through the
    /// interface bypass (2 cycles/hop + serialization). Packets already
    /// at their destination's pit are handled by [`local_eject`] instead.
    ///
    /// [`local_eject`]: Self::local_eject
    fn dispatch(&mut self, core: &mut NetworkCore) {
        if self.transit.is_some() {
            return;
        }
        let now = core.cycle();
        let active = self.active_class(now);
        let n = self.pits.len();
        for k in 0..n {
            let i = (self.dispatch_rr + k) % n;
            let Some(pos) = self.pits[i].iter().position(|&pkt| {
                let p = core.store.get(pkt);
                p.class == active && p.dst != NodeId::new(i)
            }) else {
                continue;
            };
            let pkt = self.pits[i]
                .remove(pos)
                .expect("pit position came from a fresh position() scan");
            let p = core.store.get(pkt);
            let dst = p.dst;
            let len = p.len_flits as u64;
            let hops = core.mesh().hops(NodeId::new(i), dst) as u64;
            self.dispatch_rr = (i + 1) % n;
            self.transit = Some(BypassTransit {
                pkt,
                dst,
                arrival: now + 2 * hops + len,
            });
            core.store.get_mut(pkt).hops += hops as u32;
            return;
        }
    }

    /// Complete a transit whose packet has arrived: it lands in the
    /// destination's pit (NI storage; may transiently exceed the
    /// absorption capacity so the shared channel never blocks) and is
    /// ejected locally from there.
    fn land(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        let Some(t) = self.transit else { return };
        if now < t.arrival {
            return;
        }
        let _ = core;
        self.pits[t.dst.index()].push_back(t.pkt);
        self.bypassed += 1;
        self.transit = None;
    }

    /// Pit packets that are at their destination move into the local
    /// ejection queue as space appears (one per node per cycle).
    fn local_eject(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        for i in 0..self.pits.len() {
            let node = NodeId::new(i);
            let Some(pos) = self.pits[i].iter().position(|&pkt| {
                let p = core.store.get(pkt);
                p.dst == node && core.ni(node).ej_can_accept(p.class, pkt)
            }) else {
                continue;
            };
            let pkt = self.pits[i]
                .remove(pos)
                .expect("pit position came from a fresh position() scan");
            let class = core.store.get(pkt).class;
            core.ni_mut(node).ej_begin(class, pkt);
            let ready = now + core.cfg().ni_consume_cycles;
            core.store.get_mut(pkt).eject_cycle = Some(now);
            core.ni_mut(node)
                .ej_commit(class, EjectEntry { pkt, ready });
        }
    }
}

impl Scheme for Pitstop {
    fn name(&self) -> &'static str {
        "Pitstop"
    }

    fn properties(&self) -> SchemeProperties {
        // Table I, row Pitstop: everything except high throughput and
        // scalability (single class, single bypass at a time).
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: true,
            network_deadlock_freedom: true,
            full_path_diversity: true,
            high_throughput: false,
            low_power: true,
            scalable: false,
            no_misrouting: true,
        }
    }

    fn required_vns(&self) -> usize {
        0
    }

    fn step(&mut self, core: &mut NetworkCore) {
        self.land(core);
        self.local_eject(core);
        self.absorb(core);
        self.dispatch(core);
        advance(core, &mut self.routing, &AdvanceCtx::default());
    }

    fn overlay_packets(&self) -> usize {
        self.pits.iter().map(|p| p.len()).sum::<usize>() + usize::from(self.transit.is_some())
    }

    fn export_state(&self, core: &NetworkCore, out: &mut StateExport) {
        let now = core.cycle();
        // Class-rotation position: active class and time-to-handover are
        // periodic in `class_period × NUM_CLASSES`.
        out.word(now % (self.cfg.class_period * CLASSES.len() as u64));
        for pit in &self.pits {
            out.word(pit.len() as u64);
            for &p in pit {
                out.pkt(p);
            }
        }
        match self.transit {
            Some(t) => {
                out.word(1);
                out.pkt(t.pkt);
                out.word(t.dst.index() as u64);
                out.word(t.arrival.saturating_sub(now));
            }
            None => out.word(0),
        }
        out.word(self.dispatch_rr as u64);
        // `absorbed`/`bypassed` are diagnostics; the adaptive routing RNG
        // is a documented abstraction (merges schedules, never invents).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(2)
            .seed(6)
            .build()
    }

    #[test]
    fn class_rotation_covers_all() {
        let p = Pitstop::new(16, 1, PitstopConfig::default());
        let period = PitstopConfig::default().class_period;
        let mut seen = std::collections::HashSet::new();
        for k in 0..6u64 {
            seen.insert(p.active_class(k * period));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn survives_saturation_with_zero_vns() {
        let sim_cfg = SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(1)
            .seed(6)
            .build();
        let n = sim_cfg.mesh.num_nodes();
        let mut sim = Simulation::new(
            sim_cfg,
            Box::new(Pitstop::new(n, 1, PitstopConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.7, 2)),
        );
        sim.run(40_000);
        assert!(
            sim.starvation_cycles() < 4_000,
            "Pitstop wedged: {}",
            sim.starvation_cycles()
        );
        assert!(sim.total_consumed() > 500);
    }

    #[test]
    fn pits_absorb_and_bypass_conservatively() {
        let sim_cfg = cfg();
        let n = sim_cfg.mesh.num_nodes();
        let mut core = NetworkCore::new(sim_cfg);
        let mut pit = Pitstop::new(
            n,
            1,
            PitstopConfig {
                class_period: 64,
                pit_capacity: 2,
                threshold: 16,
            },
        );
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.6, 2);
        use noc_sim::Workload;
        for _ in 0..20_000 {
            wl.tick(&mut core);
            pit.step(&mut core);
            let now = core.cycle();
            for node in core.mesh().nodes() {
                for class in CLASSES {
                    if core.ni(node).ej_consumable(class, now).is_some() {
                        let e = core.ni_mut(node).pop_ej(class).unwrap();
                        core.store.remove(e.pkt);
                    }
                }
            }
            core.advance_cycle();
        }
        assert!(pit.absorbed > 0, "saturation must trigger pit stops");
        assert!(pit.bypassed > 0, "the bypass must deliver");
        assert!(pit.bypassed <= pit.absorbed);
        assert_eq!(
            pit.absorbed - pit.bypassed,
            pit.overlay_packets() as u64,
            "pit accounting balances"
        );
    }

    #[test]
    fn quiet_network_never_pits() {
        let sim_cfg = cfg();
        let n = sim_cfg.mesh.num_nodes();
        let mut sim = Simulation::new(
            sim_cfg,
            Box::new(Pitstop::new(n, 1, PitstopConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.02, 2)),
        );
        sim.run(5_000);
        assert!(sim.total_consumed() > 0);
    }
}
