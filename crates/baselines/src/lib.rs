//! Baseline NoC schemes the paper compares FastPass against (Table II).
//!
//! Each baseline is a functional reimplementation of the mechanism that
//! drives its performance in the paper's figures:
//!
//! * [`vct`] — plain credit-based VCT with a fixed routing policy
//!   (building block and sanity baseline);
//! * [`escape_vc`] — Duato escape VCs \[8\]: deterministic escape channel
//!   + fully-adaptive remainder, 6 VNs;
//! * [`tfc`] — Token Flow Control \[19\]: west-first routing with
//!   region-broadcast buffer-availability tokens, 6 VNs;
//! * [`spin`] — SPIN \[31\]: timeout-based deadlock detection probes and
//!   synchronized spins of dependency cycles, 6 VNs;
//! * [`swap`] — SWAP \[26\]: periodic swapping of a long-blocked packet
//!   with the downstream packet it waits on (misrouting), 6 VNs;
//! * [`drain`] — DRAIN \[24\]: periodic coordinated circulation of all
//!   buffered packets along a Hamiltonian ring, 6 VNs;
//! * [`pitstop`] — Pitstop \[13\]: NI pit-lane absorption of one message
//!   class at a time, 0 VNs;
//! * [`minbd`] — MinBD \[12\]: flit-level minimally-buffered deflection
//!   routing with a side buffer and destination reassembly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drain;
pub mod escape_vc;
pub mod minbd;
pub mod pitstop;
pub mod spin;
pub mod swap;
pub mod tfc;
pub mod vct;

pub use drain::Drain;
pub use escape_vc::EscapeVc;
pub use minbd::MinBd;
pub use pitstop::Pitstop;
pub use spin::Spin;
pub use swap::Swap;
pub use tfc::Tfc;
pub use vct::CreditVct;
