//! MinBD \[12\]: minimally-buffered deflection routing.
//!
//! MinBD abandons the buffered router model entirely: flits travel
//! independently, every flit arriving at a router *must* leave the same
//! cycle (there are as many output links as input links), and contention
//! is resolved by deflecting losers to free ports. A small *side buffer*
//! absorbs one would-be-deflected flit per cycle and re-injects it when
//! a slot frees, and destinations reassemble flits into packets. Oldest-
//! first priority gives livelock freedom.
//!
//! This module therefore bypasses the substrate's buffered pipeline
//! completely: it implements its own per-cycle flit movement on top of
//! the same NIs, packet store and statistics, so its results are
//! directly comparable (Fig. 7's MinBD curve, which saturates from
//! deflection-induced throughput loss).

use noc_core::packet::{PacketId, CLASSES};
use noc_core::rng::DetRng;
use noc_core::topology::{Direction, NodeId, DIRECTIONS};
use noc_sim::network::NetworkCore;
use noc_sim::ni::EjectEntry;
use noc_sim::scheme::{Scheme, SchemeProperties, StateExport};
use std::collections::{BTreeMap, VecDeque};

/// Tunables for [`MinBd`].
#[derive(Debug, Clone, Copy)]
pub struct MinBdConfig {
    /// Side-buffer capacity per router, in flits (the "minimal buffer").
    pub side_capacity: usize,
    /// Flits ejected per router per cycle.
    pub eject_bandwidth: usize,
}

impl Default for MinBdConfig {
    fn default() -> Self {
        MinBdConfig {
            side_capacity: 8,
            eject_bandwidth: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DeflFlit {
    pkt: PacketId,
    seq: u8,
    len: u8,
    dst: NodeId,
    /// Injection cycle: oldest-first priority key (livelock freedom).
    age: u64,
}

/// The MinBD baseline (implements [`Scheme`]).
#[derive(Debug)]
pub struct MinBd {
    cfg: MinBdConfig,
    arriving: Vec<Vec<DeflFlit>>,
    staged: Vec<Vec<DeflFlit>>,
    side: Vec<VecDeque<DeflFlit>>,
    reasm: BTreeMap<PacketId, u8>,
    /// Completed packets awaiting ejection-queue space, per node.
    pending: Vec<VecDeque<PacketId>>,
    /// Per-node in-progress injection stream: (packet, next seq).
    inj: Vec<Option<(PacketId, u8)>>,
    in_air: usize,
    rng: DetRng,
    /// Flit deflections performed (diagnostics).
    pub deflections: u64,
    /// Flits absorbed by side buffers (diagnostics).
    pub side_absorbed: u64,
}

impl MinBd {
    /// Creates the scheme for `nodes` nodes.
    pub fn new(nodes: usize, seed: u64, cfg: MinBdConfig) -> Self {
        MinBd {
            cfg,
            arriving: vec![Vec::new(); nodes],
            staged: vec![Vec::new(); nodes],
            side: vec![VecDeque::new(); nodes],
            reasm: BTreeMap::new(),
            pending: vec![VecDeque::new(); nodes],
            inj: vec![None; nodes],
            in_air: 0,
            rng: DetRng::new(seed ^ 0x316B_D000),
            deflections: 0,
            side_absorbed: 0,
        }
    }

    fn valid_dirs(core: &NetworkCore, node: NodeId) -> Vec<Direction> {
        DIRECTIONS
            .into_iter()
            .filter(|&d| core.mesh().neighbor(node, d).is_some())
            .collect()
    }

    fn deliver_pending(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        for i in 0..self.pending.len() {
            let node = NodeId::new(i);
            while let Some(&pkt) = self.pending[i].front() {
                let class = core.store.get(pkt).class;
                if !core.ni(node).ej_can_accept(class, pkt) {
                    break;
                }
                self.pending[i].pop_front();
                core.ni_mut(node).ej_begin(class, pkt);
                let ready = now + core.cfg().ni_consume_cycles;
                core.store.get_mut(pkt).eject_cycle = Some(now);
                core.ni_mut(node)
                    .ej_commit(class, EjectEntry { pkt, ready });
                self.in_air -= 1;
            }
        }
    }
}

impl Scheme for MinBd {
    fn name(&self) -> &'static str {
        "MinBD"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            no_detection: true,
            protocol_deadlock_freedom: true, // bufferless: no buffer cycles
            network_deadlock_freedom: true,
            full_path_diversity: true,
            high_throughput: false, // deflections waste bandwidth
            low_power: true,
            scalable: true,
            no_misrouting: false,
        }
    }

    fn required_vns(&self) -> usize {
        0
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        let n = core.mesh().num_nodes();
        for i in 0..n {
            let node = NodeId::new(i);
            let dirs = Self::valid_dirs(core, node);
            let cap = dirs.len();
            let mut flits = std::mem::take(&mut self.arriving[i]);
            debug_assert!(flits.len() <= cap, "more flits than links at {node}");

            // 1. Side-buffer re-injection: one buffered flit per cycle
            //    (MinBD re-injects through a single pipeline slot). This
            //    happens before ejection so a side-buffered flit that is
            //    already home can leave the network this cycle.
            if flits.len() < cap {
                if let Some(f) = self.side[i].pop_front() {
                    flits.push(f);
                }
            }

            // 2. NI injection: continue the current stream, else start a
            //    new packet, one flit per cycle, only into a free slot.
            if flits.len() < cap {
                if let Some((pkt, seq)) = self.inj[i] {
                    let (len, dst, age) = {
                        let p = core.store.get(pkt);
                        (p.len_flits, p.dst, p.inject_cycle.unwrap_or(cycle))
                    };
                    flits.push(DeflFlit {
                        pkt,
                        seq,
                        len,
                        dst,
                        age,
                    });
                    self.inj[i] = if seq + 1 < len {
                        Some((pkt, seq + 1))
                    } else {
                        None
                    };
                } else {
                    core.ni_mut(node).refill_inj();
                    for class in CLASSES {
                        if let Some(pkt) = core.ni(node).inj_head(class) {
                            core.ni_mut(node).pop_inj(class);
                            let (len, dst) = {
                                let p = core.store.get_mut(pkt);
                                p.inject_cycle = Some(cycle);
                                (p.len_flits, p.dst)
                            };
                            self.in_air += 1;
                            flits.push(DeflFlit {
                                pkt,
                                seq: 0,
                                len,
                                dst,
                                age: cycle,
                            });
                            self.inj[i] = if len > 1 { Some((pkt, 1)) } else { None };
                            break;
                        }
                    }
                }
            }

            // 3. Ejection: oldest local flits first, up to the bandwidth.
            flits.sort_by_key(|f| (f.age, f.pkt, f.seq));
            let mut ejected = 0;
            flits.retain(|f| {
                if f.dst == node && ejected < self.cfg.eject_bandwidth {
                    ejected += 1;
                    let have = self.reasm.entry(f.pkt).or_insert(0);
                    *have += 1;
                    if *have == f.len {
                        self.reasm.remove(&f.pkt);
                        self.pending[i].push_back(f.pkt);
                    }
                    false
                } else {
                    true
                }
            });

            // 4. Port assignment: oldest first; winners take a productive
            //    free port, losers are deflected to any free port — or
            //    absorbed into the side buffer if there is room.
            flits.sort_by_key(|f| (f.age, f.pkt, f.seq));
            let mut taken = [false; 4];
            let mut absorbed_this_cycle = false;
            for f in flits {
                let productive = core
                    .mesh()
                    .productive_dirs(node, f.dst)
                    .iter()
                    .find(|&d| !taken[d.index()]);
                let chosen = if let Some(d) = productive {
                    Some(d)
                } else if !absorbed_this_cycle && self.side[i].len() < self.cfg.side_capacity {
                    // Side buffer instead of deflection (the "minimal
                    // buffering" of MinBD buffers one flit per cycle).
                    self.side[i].push_back(f);
                    self.side_absorbed += 1;
                    absorbed_this_cycle = true;
                    None
                } else {
                    // Deflect to any free valid port (drawn without
                    // collecting: same RNG stream as `pick` on the slice
                    // of free ports, but no per-flit allocation).
                    let free_count = dirs.iter().filter(|d| !taken[d.index()]).count();
                    let k = self.rng.range(0, free_count);
                    let d = dirs
                        .iter()
                        .copied()
                        .filter(|d| !taken[d.index()])
                        .nth(k)
                        .expect("k drawn below the free-port count");
                    self.deflections += 1;
                    if f.seq == 0 {
                        core.store.get_mut(f.pkt).deflections += 1;
                    }
                    Some(d)
                };
                if let Some(d) = chosen {
                    taken[d.index()] = true;
                    if f.seq == 0 {
                        core.store.get_mut(f.pkt).hops += 1;
                    }
                    let nbr = core.mesh().neighbor(node, d).expect("valid dir");
                    self.staged[nbr.index()].push(f);
                }
            }
        }
        std::mem::swap(&mut self.arriving, &mut self.staged);
        for s in &mut self.staged {
            s.clear();
        }
        self.deliver_pending(core);
    }

    fn overlay_packets(&self) -> usize {
        self.in_air
    }

    fn export_state(&self, core: &NetworkCore, out: &mut StateExport) {
        let now = core.cycle();
        let flit = |out: &mut StateExport, f: &DeflFlit| {
            out.pkt(f.pkt);
            out.word(f.seq as u64);
            out.word(f.len as u64);
            out.word(f.dst.index() as u64);
            out.word(now.saturating_sub(f.age));
        };
        for lists in [&self.arriving, &self.staged] {
            for node in lists {
                out.word(node.len() as u64);
                for f in node {
                    flit(out, f);
                }
            }
        }
        for q in &self.side {
            out.word(q.len() as u64);
            for f in q {
                flit(out, f);
            }
        }
        for (&p, &got) in &self.reasm {
            out.pkt(p);
            out.word(got as u64);
        }
        out.word(u64::MAX);
        for q in &self.pending {
            out.word(q.len() as u64);
            for &p in q {
                out.pkt(p);
            }
        }
        for s in &self.inj {
            match s {
                Some((p, seq)) => {
                    out.word(1);
                    out.pkt(*p);
                    out.word(*seq as u64);
                }
                None => out.word(0),
            }
        }
        out.word(self.in_air as u64);
        // The deflection-draw RNG is a documented abstraction; `age` is
        // exported as an exact relative value because MinBD sorts by it
        // (a saturation cap would over-merge the priority order).
        // `deflections`/`side_absorbed` are diagnostics.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};
    use noc_sim::Simulation;
    use traffic::{SyntheticPattern, SyntheticWorkload};

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(1)
            .seed(7)
            .build()
    }

    #[test]
    fn single_packet_delivery() {
        let sim_cfg = cfg();
        let mut core = NetworkCore::new(sim_cfg);
        let mut mb = MinBd::new(16, 1, MinBdConfig::default());
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(15),
            MessageClass::Request,
            5,
            0,
        ));
        for _ in 0..100 {
            mb.step(&mut core);
            core.advance_cycle();
            if core
                .ni(NodeId::new(15))
                .ej_consumable(MessageClass::Request, core.cycle())
                .is_some()
            {
                break;
            }
        }
        let pkt = core.store.get(id);
        assert!(pkt.eject_cycle.is_some(), "packet delivered");
        assert!(pkt.hops >= 6, "at least minimal hops");
        assert_eq!(mb.overlay_packets(), 0);
    }

    #[test]
    fn uniform_load_flows() {
        let mut sim = Simulation::new(
            cfg(),
            Box::new(MinBd::new(16, 1, MinBdConfig::default())),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.1, 2)),
        );
        let stats = sim.run_windows(2_000, 6_000);
        assert!(stats.delivered() > 300);
        assert!(sim.starvation_cycles() < 500);
    }

    #[test]
    fn heavy_load_causes_deflections_but_no_wedge() {
        let mut core = NetworkCore::new(cfg());
        let mut mb = MinBd::new(16, 1, MinBdConfig::default());
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.6, 2);
        use noc_sim::Workload;
        let mut consumed = 0u64;
        for _ in 0..20_000 {
            wl.tick(&mut core);
            mb.step(&mut core);
            let now = core.cycle();
            for node in core.mesh().nodes() {
                for class in CLASSES {
                    if core.ni(node).ej_consumable(class, now).is_some() {
                        let e = core.ni_mut(node).pop_ej(class).unwrap();
                        core.store.remove(e.pkt);
                        consumed += 1;
                    }
                }
            }
            core.advance_cycle();
        }
        assert!(consumed > 1_000, "MinBD keeps delivering at load");
        assert!(
            mb.deflections + mb.side_absorbed > 0,
            "contention must deflect or side-buffer"
        );
    }

    #[test]
    fn flit_conservation() {
        let mut core = NetworkCore::new(cfg());
        let mut mb = MinBd::new(16, 1, MinBdConfig::default());
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.2, 5);
        use noc_sim::Workload;
        for _ in 0..2_000 {
            wl.tick(&mut core);
            mb.step(&mut core);
            core.advance_cycle();
        }
        // Every injected packet is in the air, pending, or ejected.
        let flits_in_network: usize = mb.arriving.iter().map(|v| v.len()).sum::<usize>()
            + mb.side.iter().map(|v| v.len()).sum::<usize>();
        assert!(flits_in_network > 0 || mb.in_air == 0);
        // No node ever holds more flits than its link count.
        for (i, v) in mb.arriving.iter().enumerate() {
            let node = NodeId::new(i);
            assert!(v.len() <= MinBd::valid_dirs(&core, node).len());
        }
    }
}
