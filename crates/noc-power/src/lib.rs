//! Analytical router area & power model (the Fig. 11 substitute).
//!
//! The paper reports post place-and-route area and static power of each
//! scheme's router in TSMC 28 nm at 1 GHz. Re-running P&R is out of
//! scope; what Fig. 11 communicates is *where the silicon goes* — input
//! buffering scales with `VNs × VCs × depth` and dominates VN-based
//! routers, the crossbar and NI queues are common to every scheme, and
//! per-scheme control logic is small (SPIN's detection circuit being the
//! largest at ~6% of an EscapeVC router).
//!
//! This crate models exactly those proportions with per-component
//! constants calibrated to the figure's 28 nm magnitudes, so the
//! reproduction preserves the paper's claims: FastPass ≈ Pitstop, both
//! roughly 40–55% below the 6-VN baselines, with FastPass overhead ~4%
//! of its own router.

#![forbid(unsafe_code)]

pub mod model;
pub mod report;

pub use model::{
    router_area, router_power, AreaBreakdown, PowerBreakdown, RouterParams, SchemeKind,
};
pub use report::{fig11_configs, Fig11Row};
