//! Fig. 11-shaped reporting: the six evaluated router configurations.

use crate::model::{
    router_area, router_power, AreaBreakdown, PowerBreakdown, RouterParams, SchemeKind,
};
use serde::{Deserialize, Serialize};

/// One bar pair of Fig. 11: a scheme at its evaluated configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Scheme label, e.g. "FastPass".
    pub scheme: String,
    /// Configuration label, e.g. "VN=0, VC=2".
    pub config: String,
    /// Area breakdown (µm²).
    pub area: AreaBreakdown,
    /// Static power breakdown (µW).
    pub power: PowerBreakdown,
}

impl Fig11Row {
    fn new(kind: SchemeKind, params: RouterParams) -> Self {
        Fig11Row {
            scheme: kind.name().to_string(),
            config: format!("VN={}, VC={}", params.vns, params.vcs_per_vn),
            area: router_area(kind, &params),
            power: router_power(kind, &params),
        }
    }
}

/// The six configurations of Fig. 11: EscapeVC, SPIN, SWAP, DRAIN at
/// 6 VN × 2 VC; Pitstop and FastPass at 0 VN × 2 VC.
pub fn fig11_configs() -> Vec<Fig11Row> {
    let vn6 = RouterParams::default();
    let vn0 = RouterParams {
        vns: 0,
        vcs_per_vn: 2,
        ..RouterParams::default()
    };
    vec![
        Fig11Row::new(SchemeKind::EscapeVc, vn6),
        Fig11Row::new(SchemeKind::Spin, vn6),
        Fig11Row::new(SchemeKind::Swap, vn6),
        Fig11Row::new(SchemeKind::Drain, vn6),
        Fig11Row::new(SchemeKind::Pitstop, vn0),
        Fig11Row::new(SchemeKind::FastPass, vn0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_in_figure_order() {
        let rows = fig11_configs();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].scheme, "EscapeVC");
        assert_eq!(rows[5].scheme, "FastPass");
        assert_eq!(rows[5].config, "VN=0, VC=2");
    }

    #[test]
    fn vn_based_schemes_cost_more_than_vn_free() {
        let rows = fig11_configs();
        let max_vn0 = rows[4].area.total().max(rows[5].area.total());
        for row in &rows[..4] {
            assert!(
                row.area.total() > max_vn0,
                "{} should exceed the VN-free routers",
                row.scheme
            );
        }
    }

    #[test]
    fn spin_is_the_most_expensive() {
        let rows = fig11_configs();
        let spin = rows.iter().find(|r| r.scheme == "SPIN").unwrap();
        for row in &rows {
            assert!(spin.area.total() >= row.area.total());
            assert!(spin.power.total() >= row.power.total());
        }
    }
}
