//! Per-component area/power model with 28 nm-calibrated constants.

use serde::{Deserialize, Serialize};

/// Which scheme's router is being synthesized (selects the overhead
/// block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Plain credit VCT (no scheme logic).
    PlainVct,
    /// Duato escape VCs.
    EscapeVc,
    /// SPIN: deadlock-detection probes.
    Spin,
    /// SWAP: swap control.
    Swap,
    /// DRAIN: drain sequencing.
    Drain,
    /// Pitstop: pit-lane buffers and class TDM.
    Pitstop,
    /// FastPass: lane table, TDM counters, lookahead, drop management.
    FastPass,
    /// MinBD: deflection router with side buffer (replaces input buffers).
    MinBd,
    /// TFC: token broadcast logic.
    Tfc,
}

impl SchemeKind {
    /// Display name as in Fig. 11.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::PlainVct => "VCT",
            SchemeKind::EscapeVc => "EscapeVC",
            SchemeKind::Spin => "SPIN",
            SchemeKind::Swap => "SWAP",
            SchemeKind::Drain => "DRAIN",
            SchemeKind::Pitstop => "Pitstop",
            SchemeKind::FastPass => "FastPass",
            SchemeKind::MinBd => "MinBD",
            SchemeKind::Tfc => "TFC",
        }
    }
}

/// Router structural parameters feeding the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Virtual networks (0 = none).
    pub vns: usize,
    /// VCs per VN (or per port when `vns == 0`).
    pub vcs_per_vn: usize,
    /// Buffer depth per VC in flits.
    pub buffer_flits: usize,
    /// Router ports (5 for a mesh).
    pub ports: usize,
    /// Message classes (NI queues per side).
    pub classes: usize,
    /// NI queue depth per class, in flits.
    pub ni_queue_flits: usize,
    /// Flit width in bits (Table II: 128).
    pub flit_bits: usize,
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams {
            vns: 6,
            vcs_per_vn: 2,
            buffer_flits: 5,
            ports: 5,
            classes: 6,
            ni_queue_flits: 5,
            flit_bits: 128,
        }
    }
}

impl RouterParams {
    /// Total VCs per input port.
    pub fn vcs_per_port(&self) -> usize {
        self.vns.max(1) * self.vcs_per_vn
    }

    /// Total input-buffer flit slots across the router.
    pub fn input_buffer_slots(&self) -> usize {
        self.ports * self.vcs_per_port() * self.buffer_flits
    }

    /// Total NI queue flit slots (injection + ejection, per class).
    pub fn ni_queue_slots(&self) -> usize {
        2 * self.classes * self.ni_queue_flits
    }
}

// ---- calibrated 28 nm constants -------------------------------------------
// Area in µm² per unit, static power in µW per unit, both at 1 GHz /
// nominal corner. Chosen so that the 6-VN 2-VC EscapeVC router lands at
// Fig. 11's ≈ 350–400k µm² scale with a buffer-dominated breakdown.

/// Area of one 128-bit flit buffer slot (µm²).
const AREA_PER_FLIT_SLOT: f64 = 700.0;
/// Crossbar + link-infrastructure area coefficient: × ports² ×
/// flit_bits. Covers the 5×5 128-bit crossbar, link drivers, pipeline
/// registers and clocking — the parts of a router that do not shrink
/// with buffer count (≈ 80k µm² at the Table II configuration).
const AREA_XBAR_COEFF: f64 = 25.0;
/// Arbiter/VC-state area per VC (µm²).
const AREA_PER_VC_ARBITER: f64 = 400.0;
/// Static power of one flit slot (µW).
const POWER_PER_FLIT_SLOT: f64 = 0.55;
/// Crossbar + link-infrastructure power coefficient.
const POWER_XBAR_COEFF: f64 = 0.022;
/// Arbiter power per VC (µW).
const POWER_PER_VC_ARBITER: f64 = 0.30;

/// Per-scheme overhead, as (extra flit slots, extra control area µm²).
fn overhead(kind: SchemeKind, p: &RouterParams) -> (usize, f64) {
    match kind {
        SchemeKind::PlainVct | SchemeKind::EscapeVc => (0, 0.0),
        // SPIN's probe/detection network: ~6% of an EscapeVC router.
        SchemeKind::Spin => (0, 22_000.0),
        SchemeKind::Swap => (0, 6_000.0),
        SchemeKind::Drain => (0, 8_000.0),
        // Pitstop: 2-packet pit per router + class TDM control.
        SchemeKind::Pitstop => (2 * p.buffer_flits, 4_000.0),
        // FastPass: lane table (P entries), TDM counters, lookahead
        // mux/demux, dropping management (Fig. 6) — ~4% of its router.
        SchemeKind::FastPass => (0, 6_500.0),
        // MinBD replaces input buffers with a 4-flit side buffer; the
        // input-buffer term is zeroed by the caller via `vcs_per_vn`.
        SchemeKind::MinBd => (4, 5_000.0),
        SchemeKind::Tfc => (0, 7_000.0),
    }
}

/// Area breakdown of one router + NI (µm²), mirroring Fig. 11's stacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Input buffers.
    pub buffers: f64,
    /// Crossbar.
    pub crossbar: f64,
    /// Switch/VC arbiters and per-VC state.
    pub arbiters: f64,
    /// NI injection/ejection queues.
    pub ni_queues: f64,
    /// Scheme-specific overhead.
    pub overhead: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.arbiters + self.ni_queues + self.overhead
    }
}

/// Static power breakdown of one router + NI (µW).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Input buffers.
    pub buffers: f64,
    /// Crossbar.
    pub crossbar: f64,
    /// Arbiters.
    pub arbiters: f64,
    /// NI queues.
    pub ni_queues: f64,
    /// Scheme overhead.
    pub overhead: f64,
}

impl PowerBreakdown {
    /// Total static power.
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.arbiters + self.ni_queues + self.overhead
    }
}

/// Computes the area breakdown for a scheme's router.
pub fn router_area(kind: SchemeKind, p: &RouterParams) -> AreaBreakdown {
    let (extra_slots, control) = overhead(kind, p);
    let input_slots = if kind == SchemeKind::MinBd {
        0 // bufferless: no input buffers
    } else {
        p.input_buffer_slots()
    };
    AreaBreakdown {
        buffers: input_slots as f64 * AREA_PER_FLIT_SLOT,
        crossbar: AREA_XBAR_COEFF * (p.ports * p.ports * p.flit_bits) as f64,
        arbiters: (p.ports * p.vcs_per_port()) as f64 * AREA_PER_VC_ARBITER,
        ni_queues: p.ni_queue_slots() as f64 * AREA_PER_FLIT_SLOT,
        overhead: control + extra_slots as f64 * AREA_PER_FLIT_SLOT,
    }
}

/// Computes the static power breakdown for a scheme's router.
pub fn router_power(kind: SchemeKind, p: &RouterParams) -> PowerBreakdown {
    let (extra_slots, control) = overhead(kind, p);
    let input_slots = if kind == SchemeKind::MinBd {
        0
    } else {
        p.input_buffer_slots()
    };
    // Control overhead leaks at roughly the SRAM rate per unit area.
    let control_power = control * (POWER_PER_FLIT_SLOT / AREA_PER_FLIT_SLOT);
    PowerBreakdown {
        buffers: input_slots as f64 * POWER_PER_FLIT_SLOT,
        crossbar: POWER_XBAR_COEFF * (p.ports * p.ports * p.flit_bits) as f64,
        arbiters: (p.ports * p.vcs_per_port()) as f64 * POWER_PER_VC_ARBITER,
        ni_queues: p.ni_queue_slots() as f64 * POWER_PER_FLIT_SLOT,
        overhead: control_power + extra_slots as f64 * POWER_PER_FLIT_SLOT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn6() -> RouterParams {
        RouterParams::default()
    }

    fn vn0() -> RouterParams {
        RouterParams {
            vns: 0,
            vcs_per_vn: 2,
            ..RouterParams::default()
        }
    }

    #[test]
    fn escape_router_is_buffer_dominated_at_28nm_scale() {
        let a = router_area(SchemeKind::EscapeVc, &vn6());
        assert!(
            (250_000.0..450_000.0).contains(&a.total()),
            "EscapeVC total {} off Fig. 11 scale",
            a.total()
        );
        assert!(
            a.buffers > a.crossbar && a.buffers > a.arbiters,
            "buffers must dominate a 6-VN router"
        );
    }

    #[test]
    fn fastpass_cuts_area_and_power_roughly_in_half() {
        let escape = router_area(SchemeKind::EscapeVc, &vn6()).total();
        let fp = router_area(SchemeKind::FastPass, &vn0()).total();
        let reduction = 1.0 - fp / escape;
        assert!(
            (0.35..0.70).contains(&reduction),
            "paper: ~40% area reduction; model gives {reduction:.2}"
        );
        let escape_p = router_power(SchemeKind::EscapeVc, &vn6()).total();
        let fp_p = router_power(SchemeKind::FastPass, &vn0()).total();
        let p_reduction = 1.0 - fp_p / escape_p;
        assert!(
            (0.35..0.70).contains(&p_reduction),
            "paper: ~41% power reduction; model gives {p_reduction:.2}"
        );
    }

    #[test]
    fn fastpass_matches_pitstop() {
        // Paper: "FastPass has similar area and power consumption as
        // Pitstop".
        let fp = router_area(SchemeKind::FastPass, &vn0()).total();
        let pit = router_area(SchemeKind::Pitstop, &vn0()).total();
        assert!(
            (fp - pit).abs() / fp < 0.08,
            "FastPass {fp} vs Pitstop {pit}"
        );
    }

    #[test]
    fn spin_overhead_is_about_six_percent() {
        let escape = router_area(SchemeKind::EscapeVc, &vn6()).total();
        let spin = router_area(SchemeKind::Spin, &vn6()).total();
        let ratio = (spin - escape) / escape;
        assert!(
            (0.03..0.09).contains(&ratio),
            "paper: SPIN +6% over EscapeVC; model gives {ratio:.3}"
        );
    }

    #[test]
    fn fastpass_overhead_is_small() {
        let fp = router_area(SchemeKind::FastPass, &vn0());
        let frac = fp.overhead / fp.total();
        assert!(
            (0.01..0.08).contains(&frac),
            "paper: FastPass overhead ~4% of its router; model gives {frac:.3}"
        );
    }

    #[test]
    fn area_monotone_in_vcs() {
        let base = router_area(SchemeKind::PlainVct, &vn6()).total();
        let more = router_area(
            SchemeKind::PlainVct,
            &RouterParams {
                vcs_per_vn: 4,
                ..vn6()
            },
        )
        .total();
        assert!(more > base);
    }

    #[test]
    fn minbd_has_no_input_buffers() {
        let a = router_area(SchemeKind::MinBd, &vn0());
        assert_eq!(a.buffers, 0.0);
        assert!(a.overhead > 0.0, "side buffer accounted as overhead");
        assert!(a.total() < router_area(SchemeKind::FastPass, &vn0()).total());
    }

    #[test]
    fn breakdown_totals_sum() {
        let a = router_area(SchemeKind::FastPass, &vn0());
        let sum = a.buffers + a.crossbar + a.arbiters + a.ni_queues + a.overhead;
        assert!((a.total() - sum).abs() < 1e-9);
    }
}
