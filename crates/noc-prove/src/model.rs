//! Channel dependency graphs from the simulator's own route sets.
//!
//! The vertex space is `(directed link, VC)`; edges are induced by two
//! mechanisms only:
//!
//! * **Route continuation** — a packet holding channel `(l₁, v₁)` may
//!   next request `(l₂, v₂)` when the routing function continues `l₁`
//!   with `l₂` for some destination and `v₂` lies in the packet's class
//!   VC range. Route sets come from
//!   [`noc_sim::routing::introspect`] — the exact functions the live
//!   policies delegate to — so the model cannot drift from the
//!   simulator.
//! * **Protocol coupling** — under the consumer-backlog protocol model
//!   (`noc-check`'s `ScriptCtl`: consuming a non-sink message raises a
//!   response obligation, and a full backlog refuses further non-sink
//!   ejections), a channel delivering a non-sink class to node `d`
//!   depends on `d`'s response injection draining, i.e. on every
//!   first-hop channel a response from `d` can take. Sink classes are
//!   terminal and couple to nothing.
//!
//! Both mechanisms over-approximate the reachable dependencies (every
//! destination pairing is admitted), which keeps the analysis sound:
//! extra edges can only turn a real proof into a spurious cycle report,
//! never a real deadlock into a certificate.

use crate::cdg::Digraph;
use noc_core::config::SimConfig;
use noc_core::packet::{MessageClass, CLASSES};
use noc_core::topology::{LinkId, Mesh, Port};
use noc_sim::routing::introspect::{route_set, travel_dir, PolicyKind};

/// The `(link, VC)` vertex space of a mesh CDG.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSpace {
    /// The mesh the links belong to.
    pub mesh: Mesh,
    /// Total VCs per input port.
    pub vcs: usize,
}

impl ChannelSpace {
    /// Number of vertex ids (including ids of mesh-edge links that do
    /// not exist; those never receive edges).
    pub fn num_vertices(self) -> usize {
        self.mesh.num_links() * self.vcs
    }

    /// Vertex id of `(link, vc)`.
    pub fn vertex(self, link: LinkId, vc: usize) -> u32 {
        (link.index() * self.vcs + vc) as u32
    }

    /// Human-readable channel name, e.g. `R5->R6.vc1`.
    pub fn label(self, v: u32) -> String {
        let link_idx = v as usize / self.vcs;
        let vc = v as usize % self.vcs;
        let link = LinkId::new(link_idx);
        let (from, dir) = self.mesh.link_endpoints(link);
        let to = self
            .mesh
            .neighbor(from, dir)
            .expect("labelled vertices come from real links");
        format!("R{}->R{}.vc{}", from.index(), to.index(), vc)
    }
}

/// Link-level routing structure extracted by per-destination forward
/// reachability: which link continues which, which links inject and
/// deliver at each node, and whether the policy is free of dead ends.
#[derive(Debug)]
pub struct RouteGraph {
    /// Deduplicated link continuations `(l₁, l₂)` over all destinations.
    pub continuations: Vec<(LinkId, LinkId)>,
    /// Per node: first-hop links of packets injected there (any dst).
    pub injects: Vec<Vec<LinkId>>,
    /// Per node: links that can carry traffic terminating there.
    pub delivers: Vec<Vec<LinkId>>,
    /// Reachable routing states with an empty route set before the
    /// destination (descriptions). Empty for a sound minimal policy.
    pub dead_ends: Vec<String>,
}

impl RouteGraph {
    /// Whether every source can reach every destination: minimal route
    /// sets always make progress, so routability is exactly "no
    /// reachable dead end and every first hop exists".
    pub fn routable(&self) -> bool {
        self.dead_ends.is_empty()
    }
}

/// Extracts the [`RouteGraph`] of `kind` on `mesh` by forward
/// reachability from every injection point toward every destination.
///
/// A link fully determines the routing state at its head (the input
/// port is the opposite of the travel direction), so the walk visits
/// each `(destination, link)` pair at most once — `O(dsts × links)`
/// route-set evaluations, which keeps 32×32 meshes comfortably inside
/// the CI budget.
pub fn route_graph(kind: PolicyKind, mesh: Mesh) -> RouteGraph {
    let n = mesh.num_nodes();
    let num_links = mesh.num_links();
    let mut cont: Vec<(LinkId, LinkId)> = Vec::new();
    let mut injects: Vec<Vec<LinkId>> = vec![Vec::new(); n];
    let mut delivers: Vec<Vec<LinkId>> = vec![Vec::new(); n];
    let mut dead_ends = Vec::new();

    let mut seen = vec![false; num_links];
    let mut queue: Vec<LinkId> = Vec::new();
    for dst in mesh.nodes() {
        seen.iter_mut().for_each(|s| *s = false);
        queue.clear();
        // Injection first hops from every source.
        for src in mesh.nodes() {
            if src == dst {
                continue;
            }
            let dirs = route_set(kind, mesh, src, Port::Local, dst);
            if dirs.is_empty() {
                dead_ends.push(format!(
                    "no first hop from R{} to R{} under {}",
                    src.index(),
                    dst.index(),
                    kind.name()
                ));
                continue;
            }
            for d in dirs {
                let l = mesh.link(src, d).expect("route set stays on the mesh");
                injects[src.index()].push(l);
                if !seen[l.index()] {
                    seen[l.index()] = true;
                    queue.push(l);
                }
            }
        }
        // Propagate along continuations.
        while let Some(l) = queue.pop() {
            let (from, dir) = mesh.link_endpoints(l);
            let at = mesh.neighbor(from, dir).expect("seen links are real");
            if at == dst {
                delivers[dst.index()].push(l);
                continue;
            }
            let in_port = Port::Dir(dir.opposite());
            debug_assert_eq!(travel_dir(in_port), Some(dir));
            let dirs = route_set(kind, mesh, at, in_port, dst);
            if dirs.is_empty() {
                dead_ends.push(format!(
                    "dead end at R{} (arrived {dir}) toward R{} under {}",
                    at.index(),
                    dst.index(),
                    kind.name()
                ));
                continue;
            }
            for d in dirs {
                let l2 = mesh.link(at, d).expect("route set stays on the mesh");
                cont.push((l, l2));
                if !seen[l2.index()] {
                    seen[l2.index()] = true;
                    queue.push(l2);
                }
            }
        }
    }
    cont.sort_unstable_by_key(|&(a, b)| (a.index(), b.index()));
    cont.dedup();
    for list in injects.iter_mut().chain(delivers.iter_mut()) {
        list.sort_unstable_by_key(|l| l.index());
        list.dedup();
    }
    dead_ends.sort();
    dead_ends.dedup();
    RouteGraph {
        continuations: cont,
        injects,
        delivers,
        dead_ends,
    }
}

/// Which VC transitions the CDG admits, mirroring
/// [`SimConfig::vc_range_for_class`]: a packet of class `c` may hold any
/// VC of `c`'s range and request any VC of the target channel's range.
fn class_ranges(sim: &SimConfig) -> Vec<std::ops::Range<usize>> {
    CLASSES
        .iter()
        .map(|c| sim.vc_range_for_class(c.index()))
        .collect()
}

/// Builds the extended CDG of `kind` on `sim`'s mesh/VC structure.
///
/// `coupling` adds the protocol-coupling edges of the consumer-backlog
/// model; `escape_only` restricts the vertex set to each class range's
/// first VC (the Duato escape subnetwork of `EscapeVc`: VC `range.start`
/// per VN is XY-routed and always requestable).
pub fn build_cdg(
    sim: &SimConfig,
    kind: PolicyKind,
    coupling: bool,
    escape_only: bool,
) -> (Digraph, ChannelSpace, RouteGraph) {
    let mesh = sim.mesh;
    let space = ChannelSpace {
        mesh,
        vcs: sim.vcs_per_port(),
    };
    let rg = route_graph(kind, mesh);
    let ranges = class_ranges(sim);
    let mut g = Digraph::new(space.num_vertices());

    let vcs_of = |class_idx: usize| -> Vec<usize> {
        let r = ranges[class_idx].clone();
        if escape_only {
            vec![r.start]
        } else {
            r.collect()
        }
    };

    // Route-continuation edges, per class VC range.
    for class in CLASSES {
        let vcs = vcs_of(class.index());
        for &(l1, l2) in &rg.continuations {
            for &v1 in &vcs {
                for &v2 in &vcs {
                    g.add_edge(space.vertex(l1, v1), space.vertex(l2, v2));
                }
            }
        }
    }

    // Protocol-coupling edges: non-sink delivery at `d` waits on `d`'s
    // response injection.
    if coupling {
        let resp_vcs = vcs_of(MessageClass::Response.index());
        for class in CLASSES {
            if class.is_sink() {
                continue;
            }
            let req_vcs = vcs_of(class.index());
            for d in mesh.nodes() {
                for &l_in in &rg.delivers[d.index()] {
                    for &l_out in &rg.injects[d.index()] {
                        for &v1 in &req_vcs {
                            for &v2 in &resp_vcs {
                                g.add_edge(space.vertex(l_in, v1), space.vertex(l_out, v2));
                            }
                        }
                    }
                }
            }
        }
    }

    g.dedup();
    (g, space, rg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(w: usize, h: usize, vns: usize, vcs: usize) -> SimConfig {
        SimConfig::builder()
            .mesh(w, h)
            .vns(vns)
            .vcs_per_vn(vcs)
            .build()
    }

    #[test]
    fn xy_cdg_is_acyclic_without_coupling() {
        for (w, h) in [(2, 2), (4, 4), (3, 5)] {
            let (g, _, rg) = build_cdg(&sim(w, h, 0, 1), PolicyKind::Xy, false, false);
            assert!(rg.routable());
            assert!(g.is_acyclic(), "{w}x{h}");
        }
    }

    #[test]
    fn zero_vn_coupling_creates_a_cycle() {
        let (g, space, _) = build_cdg(&sim(2, 2, 0, 1), PolicyKind::Xy, true, false);
        let cycle = g.find_cycle().expect("protocol coupling closes a cycle");
        assert!(crate::cdg::is_valid_cycle(&g, &cycle));
        // The cycle involves real channels.
        for &v in &cycle {
            assert!(space.label(v).starts_with('R'));
        }
    }

    #[test]
    fn six_vn_coupling_stays_acyclic() {
        let (g, _, _) = build_cdg(&sim(2, 2, 6, 1), PolicyKind::Xy, true, false);
        assert!(g.is_acyclic(), "class-ordered coupling cannot cycle");
        let (g, _, _) = build_cdg(&sim(4, 4, 6, 2), PolicyKind::Xy, true, false);
        assert!(g.is_acyclic());
    }

    #[test]
    fn fully_adaptive_is_cyclic_even_without_coupling() {
        let (g, _, rg) = build_cdg(&sim(3, 3, 0, 1), PolicyKind::FullyAdaptive, false, false);
        assert!(rg.routable());
        assert!(g.find_cycle().is_some(), "adaptive turns close cycles");
    }

    #[test]
    fn turn_models_are_acyclic_and_routable() {
        for kind in [PolicyKind::WestFirst, PolicyKind::NorthLast] {
            for (w, h) in [(2, 2), (4, 4), (5, 3)] {
                let (g, _, rg) = build_cdg(&sim(w, h, 6, 2), kind, true, false);
                assert!(rg.routable(), "{} {w}x{h}", kind.name());
                assert!(g.is_acyclic(), "{} {w}x{h}", kind.name());
            }
        }
    }

    #[test]
    fn odd_even_has_no_reachable_dead_ends() {
        for (w, h) in [(2, 2), (4, 4), (5, 5), (3, 4)] {
            let rg = route_graph(PolicyKind::OddEven, Mesh::new(w, h));
            assert!(rg.routable(), "{w}x{h}: {:?}", rg.dead_ends);
        }
    }

    #[test]
    fn escape_subnetwork_of_adaptive_vcs_is_acyclic() {
        // EscapeVc's structure: adaptive inner VCs are cyclic, the
        // XY-routed escape VC (range.start per VN) is not.
        let cfg = sim(4, 4, 6, 2);
        let (full, _, _) = build_cdg(&cfg, PolicyKind::FullyAdaptive, true, false);
        assert!(full.find_cycle().is_some());
        let (esc, _, rg) = build_cdg(&cfg, PolicyKind::EscapeXy, true, true);
        assert!(rg.routable());
        assert!(esc.is_acyclic());
    }

    #[test]
    fn route_graph_injects_and_delivers_cover_all_nodes() {
        let rg = route_graph(PolicyKind::Xy, Mesh::new(3, 3));
        for n in 0..9 {
            assert!(!rg.injects[n].is_empty(), "node {n} never injects");
            assert!(!rg.delivers[n].is_empty(), "node {n} never receives");
        }
    }

    #[test]
    fn channel_labels_roundtrip() {
        let mesh = Mesh::new(2, 2);
        let space = ChannelSpace { mesh, vcs: 2 };
        let l = mesh
            .link(
                noc_core::topology::NodeId::new(0),
                noc_core::topology::Direction::East,
            )
            .unwrap();
        assert_eq!(space.label(space.vertex(l, 1)), "R0->R1.vc1");
    }
}
