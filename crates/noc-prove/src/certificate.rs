//! Machine-readable deadlock-freedom certificates.
//!
//! One [`Certificate`] per proved configuration, serialized to JSON by
//! the CLI and uploaded as a CI artifact. The format is deliberately
//! flat (strings and string lists) so any consumer — the CI gate, the
//! bench runner, a human with `jq` — can read it without sharing Rust
//! types.

use serde::Serialize;

/// Verdict slug: the proof succeeded.
pub const VERDICT_CERTIFIED: &str = "certified";
/// Verdict slug: the CDG contains a dependency cycle (reported in
/// [`Certificate::cycle`] as the concrete channel path).
pub const VERDICT_CYCLE: &str = "cycle-found";
/// Verdict slug: a non-CDG lemma failed (lane overlap, bad parameters,
/// disconnected topology); details in [`Certificate::failures`].
pub const VERDICT_REFUTED: &str = "refuted";

/// The result of statically certifying one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Certificate {
    /// Configuration name (stable across CI runs).
    pub config: String,
    /// Scheme name.
    pub scheme: String,
    /// Mesh, `WxH`.
    pub mesh: String,
    /// Routing discipline the proof analyzed.
    pub policy: String,
    /// Virtual networks (0 = shared buffers).
    pub vns: usize,
    /// VCs per VN (or per port at 0 VNs).
    pub vcs_per_vn: usize,
    /// Whether consumer-backlog protocol-coupling edges were modeled.
    pub protocol_coupling: bool,
    /// Disabled bidirectional channels (`"R5-R6"`), empty when regular.
    pub disabled_channels: Vec<String>,
    /// CDG vertices (channel count of the analyzed graph).
    pub vertices: usize,
    /// CDG edges after deduplication.
    pub edges: usize,
    /// Every source can reach every destination with no routing dead
    /// ends (vacuously true for proofs that do not use the CDG).
    pub routable: bool,
    /// One of [`VERDICT_CERTIFIED`], [`VERDICT_CYCLE`],
    /// [`VERDICT_REFUTED`].
    pub verdict: String,
    /// Proof kind slug: `cdg-acyclic`, `duato-escape`, `tdm-escape`,
    /// `class-rotation-escape`, `deflection`, `dynamic-recovery`,
    /// `holistic-lanes`.
    pub proof: String,
    /// Human-readable proof witness lines (escape structure, TDM
    /// parameters, lane coverage…).
    pub witness: Vec<String>,
    /// On [`VERDICT_CYCLE`]: the full channel path `c₀ → c₁ → … → c₀`
    /// (each entry `R<from>->R<to>.vc<v>`; the last entry repeats the
    /// first to close the cycle).
    pub cycle: Vec<String>,
    /// On [`VERDICT_REFUTED`]: which lemmas failed.
    pub failures: Vec<String>,
}

impl Certificate {
    /// Whether the proof succeeded.
    pub fn certified(&self) -> bool {
        self.verdict == VERDICT_CERTIFIED
    }

    /// Gate outcome: a certificate is as-expected when it is certified,
    /// or when it found the cycle a planted configuration exists to
    /// demonstrate.
    pub fn as_expected(&self, expect_cycle: bool) -> bool {
        if expect_cycle {
            self.verdict == VERDICT_CYCLE
        } else {
            self.certified()
        }
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        match self.verdict.as_str() {
            VERDICT_CERTIFIED => format!(
                "{}: certified ({}) — {} channels, {} edges",
                self.config, self.proof, self.vertices, self.edges
            ),
            VERDICT_CYCLE => format!(
                "{}: CYCLE of length {} — {}",
                self.config,
                self.cycle.len().saturating_sub(1),
                self.cycle.join(" -> ")
            ),
            _ => format!("{}: REFUTED — {}", self.config, self.failures.join("; ")),
        }
    }
}
