//! The certification suite: every configuration CI proves per PR.
//!
//! Four tiers:
//!
//! * [`figure_suite`] — the bench figure matrix (all Table II schemes at
//!   the figure sizes, FastPass VC variants included), with the
//!   consumer-backlog protocol model on.
//! * [`mirror_2x2`] — name-for-name mirrors of `noc-check`'s exhaustive
//!   2×2 tier, used for static↔dynamic cross-validation.
//! * [`big_points`] — 16×16 and 32×32 FastPass/EscapeVC points beyond
//!   the model checker's reach (the whole point of a static certifier).
//! * [`fault_suite`] — seeded irregular configurations from
//!   [`noc_core::fault::generate`], certified before any sweep may
//!   simulate them.
//!
//! [`planted`] is the suite's soundness gate: a config whose CDG
//! provably cycles (zero VNs, shared VCs, protocol coupling). CI runs it
//! expecting `cycle-found`; a `certified` verdict means the certifier is
//! unsound and the gate must go red. It is the static twin of
//! `noc-check`'s `planted-vct0-protocol-2x2`, whose wedge the model
//! checker witnesses dynamically.

use noc_core::config::SimConfig;
use noc_core::fault::{self, FaultConfig};
use noc_core::topology::Mesh;
use noc_sim::routing::introspect::PolicyKind;

/// Scheme taxonomy for certification (mirrors the bench registry's
/// Table II parameters without depending on `bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Plain credit VCT with the given deterministic/turn-model policy.
    Vct(PolicyKind),
    /// TFC: token-weighted west-first (acyclic turn model).
    Tfc,
    /// EscapeVC: adaptive inner VCs + XY escape VC per VN.
    EscapeVc,
    /// SPIN: fully adaptive + probe/spin recovery.
    Spin,
    /// SWAP: fully adaptive + swap recovery.
    Swap,
    /// DRAIN: fully adaptive + periodic drain.
    Drain,
    /// Pitstop: class-rotation pit lanes.
    Pitstop {
        /// Cycles each class owns the pit lanes.
        class_period: u64,
        /// Pit capacity per node, in packets.
        pit_capacity: usize,
    },
    /// MinBD: bufferless deflection with a minimal side buffer.
    MinBd {
        /// Side-buffer capacity in flits.
        side_capacity: usize,
        /// Flits ejected per router per cycle.
        eject_bandwidth: usize,
    },
    /// FastPass: TDM bypass lanes over a fully-adaptive regular network.
    FastPass {
        /// Slot length override (`None`: the paper's formula).
        slot_cycles: Option<u64>,
    },
}

impl SchemeKind {
    /// Display name (matches the bench registry where schemes overlap).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Vct(PolicyKind::Yx) => "VCT-YX",
            SchemeKind::Vct(_) => "VCT-XY",
            SchemeKind::Tfc => "TFC",
            SchemeKind::EscapeVc => "EscapeVC",
            SchemeKind::Spin => "SPIN",
            SchemeKind::Swap => "SWAP",
            SchemeKind::Drain => "DRAIN",
            SchemeKind::Pitstop { .. } => "Pitstop",
            SchemeKind::MinBd { .. } => "MinBD",
            SchemeKind::FastPass { .. } => "FastPass",
        }
    }
}

/// One configuration to certify.
#[derive(Debug, Clone)]
pub struct ProveConfig {
    /// Stable name (certificate + CI artifact key).
    pub name: String,
    /// Mesh + VC structure.
    pub sim: SimConfig,
    /// Scheme under proof.
    pub scheme: SchemeKind,
    /// Model the consumer-backlog protocol-coupling edges.
    pub coupling: bool,
    /// Degraded topology (FastPass holistic certification).
    pub fault: Option<FaultConfig>,
    /// Planted configs: the gate expects `cycle-found`.
    pub expect_cycle: bool,
}

fn sim(size: usize, vns: usize, vcs: usize) -> SimConfig {
    SimConfig::builder()
        .mesh(size, size)
        .vns(vns)
        .vcs_per_vn(vcs)
        .build()
}

fn cfg(name: impl Into<String>, sim: SimConfig, scheme: SchemeKind, coupling: bool) -> ProveConfig {
    ProveConfig {
        name: name.into(),
        sim,
        scheme,
        coupling,
        fault: None,
        expect_cycle: false,
    }
}

/// Default Pitstop parameters (Table II / `PitstopConfig::default`).
fn pitstop_default() -> SchemeKind {
    SchemeKind::Pitstop {
        class_period: 256,
        pit_capacity: 4,
    }
}

/// Default MinBD parameters (`MinBdConfig::default`).
fn minbd_default() -> SchemeKind {
    SchemeKind::MinBd {
        side_capacity: 8,
        eject_bandwidth: 2,
    }
}

/// The figure-suite matrix: every Table II scheme at the figure sizes
/// (4×4 and 8×8), FastPass VC variants included, protocol model on.
pub fn figure_suite() -> Vec<ProveConfig> {
    let mut v = Vec::new();
    for size in [4usize, 8] {
        let tag = |s: &str| format!("fig-{s}-{size}x{size}");
        v.push(cfg(
            tag("escape-vc"),
            sim(size, 6, 2),
            SchemeKind::EscapeVc,
            true,
        ));
        v.push(cfg(tag("spin"), sim(size, 6, 2), SchemeKind::Spin, true));
        v.push(cfg(tag("swap"), sim(size, 6, 2), SchemeKind::Swap, true));
        v.push(cfg(tag("drain"), sim(size, 6, 2), SchemeKind::Drain, true));
        v.push(cfg(
            tag("pitstop"),
            sim(size, 0, 2),
            pitstop_default(),
            true,
        ));
        v.push(cfg(tag("minbd"), sim(size, 0, 1), minbd_default(), true));
        v.push(cfg(tag("tfc"), sim(size, 6, 2), SchemeKind::Tfc, true));
        for vcs in [1usize, 2, 4] {
            v.push(cfg(
                format!("fig-fastpass-vc{vcs}-{size}x{size}"),
                sim(size, 0, vcs),
                SchemeKind::FastPass { slot_cycles: None },
                true,
            ));
        }
        v.push(cfg(
            tag("vct-xy6"),
            sim(size, 6, 2),
            SchemeKind::Vct(PolicyKind::Xy),
            true,
        ));
    }
    v
}

/// Name-for-name mirrors of `noc-check`'s per-PR 2×2 tier (same VC
/// structure, same protocol-model switch as each config's
/// `backlog_limit`). Static verdicts here must agree with the model
/// checker's exhaustive dynamic verdicts.
pub fn mirror_2x2() -> Vec<ProveConfig> {
    vec![
        cfg(
            "fastpass-2x2",
            sim(2, 0, 1),
            SchemeKind::FastPass { slot_cycles: None },
            true,
        ),
        cfg(
            "vct-xy0-2x2",
            sim(2, 0, 1),
            SchemeKind::Vct(PolicyKind::Xy),
            false,
        ),
        cfg(
            "vct-xy6-2x2",
            sim(2, 6, 1),
            SchemeKind::Vct(PolicyKind::Xy),
            true,
        ),
        cfg(
            "pitstop-2x2",
            sim(2, 0, 1),
            SchemeKind::Pitstop {
                class_period: 8,
                pit_capacity: 2,
            },
            true,
        ),
        cfg("spin-2x2", sim(2, 6, 1), SchemeKind::Spin, false),
        cfg("escape-vc-2x2", sim(2, 6, 2), SchemeKind::EscapeVc, false),
        cfg(
            "minbd-min-2x2",
            sim(2, 0, 1),
            SchemeKind::MinBd {
                side_capacity: 1,
                eject_bandwidth: 1,
            },
            false,
        ),
    ]
}

/// Beyond the model checker's reach: 16×16 and 32×32 FastPass and
/// EscapeVC points from the big-mesh tier.
pub fn big_points() -> Vec<ProveConfig> {
    let mut v = Vec::new();
    for size in [16usize, 32] {
        v.push(cfg(
            format!("big-fastpass-{size}x{size}"),
            sim(size, 0, 2),
            SchemeKind::FastPass { slot_cycles: None },
            true,
        ));
        v.push(cfg(
            format!("big-escape-vc-{size}x{size}"),
            sim(size, 6, 2),
            SchemeKind::EscapeVc,
            true,
        ));
    }
    v
}

/// `count` seeded fault configurations on an 8×8 mesh, 4 disabled
/// channels each: FastPass holistic certification of the degraded
/// topologies that ROADMAP item 4(a)'s fault sweeps will simulate.
///
/// # Panics
///
/// Panics if the deterministic generator cannot satisfy a draw (cannot
/// happen for 4 faults on 8×8).
pub fn fault_suite(count: usize) -> Vec<ProveConfig> {
    (0..count as u64)
        .map(|seed| {
            let fault = fault::generate(Mesh::new(8, 8), seed, 4)
                .expect("4 faults on 8x8 leave ample connectivity");
            ProveConfig {
                name: fault.name(),
                sim: sim(8, 0, 2),
                scheme: SchemeKind::FastPass { slot_cycles: None },
                coupling: false,
                fault: Some(fault),
                expect_cycle: false,
            }
        })
        .collect()
}

/// The certified irregular smoke point shared with `noc-check` and the
/// figure suite: a 4×4 mesh minus the `R5 ↔ R6` channel.
pub fn irregular_smoke() -> ProveConfig {
    let fault = FaultConfig {
        mesh: Mesh::new(4, 4),
        seed: 0,
        disabled: vec![(5, 6)],
    };
    ProveConfig {
        name: "irregular-4x4-no56".into(),
        sim: sim(4, 0, 2),
        scheme: SchemeKind::FastPass { slot_cycles: None },
        coupling: false,
        fault: Some(fault),
        expect_cycle: false,
    }
}

/// The planted cyclic configuration: zero VNs, one shared VC, XY VCT,
/// protocol coupling — its CDG must contain a concrete cycle (the static
/// twin of `noc-check`'s `planted-vct0-protocol-2x2` wedge).
pub fn planted() -> ProveConfig {
    ProveConfig {
        name: "planted-vct0-protocol-2x2".into(),
        sim: sim(2, 0, 1),
        scheme: SchemeKind::Vct(PolicyKind::Xy),
        coupling: true,
        fault: None,
        expect_cycle: true,
    }
}

/// Everything certified per PR, in gate order.
pub fn full_suite() -> Vec<ProveConfig> {
    let mut v = figure_suite();
    v.extend(mirror_2x2());
    v.extend(big_points());
    v.extend(fault_suite(8));
    v.push(irregular_smoke());
    v.push(planted());
    v
}

/// Looks up a configuration by name across the whole suite.
pub fn by_name(name: &str) -> Option<ProveConfig> {
    full_suite().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let suite = full_suite();
        let mut names: Vec<&str> = suite.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate config names");
    }

    #[test]
    fn mirror_names_match_noc_check_matrix() {
        // Kept in lockstep with `noc_check::configs::matrix_2x2` by the
        // cross-validation integration test; this is the cheap local
        // invariant (the planted names must also coincide).
        assert!(by_name("fastpass-2x2").is_some());
        assert_eq!(planted().name, "planted-vct0-protocol-2x2");
    }

    #[test]
    fn fault_suite_is_deterministic() {
        let a: Vec<String> = fault_suite(4).into_iter().map(|c| c.name).collect();
        let b: Vec<String> = fault_suite(4).into_iter().map(|c| c.name).collect();
        assert_eq!(a, b);
    }
}
