//! Static deadlock-freedom certification for the FastPass NoC suite.
//!
//! `noc-check` (the bounded model checker) proves deadlock freedom
//! *dynamically* but is honestly limited to 2×2/3×3 meshes. This crate
//! proves it *statically* — Dally/Duato-style channel-dependency-graph
//! analysis over the exact route sets the simulator executes
//! ([`noc_sim::routing::introspect`]) — at any mesh size and for
//! arbitrary fault-degraded topologies, emitting machine-readable JSON
//! [certificates](certificate::Certificate) that CI archives and the
//! sweep infrastructure consults before simulating a configuration.
//!
//! The two proof engines:
//!
//! * [`cdg`] — generic digraph cycle detection (with concrete cycle
//!   extraction, the payload of a failure certificate);
//! * [`model`] — CDG construction: `(link, VC)` channels, route
//!   continuation edges from the introspected routing functions, and
//!   consumer-backlog protocol-coupling edges.
//!
//! [`prove::certify`] dispatches the scheme-specific obligations (see
//! that module's proof taxonomy), and [`configs`] defines the certified
//! suite: the figure matrix, the `noc-check` 2×2 mirrors, 16×16/32×32
//! big points, seeded fault configs and the planted soundness gate.
//!
//! # Example
//!
//! ```
//! use noc_prove::{configs, prove};
//!
//! let cert = prove::certify(&configs::planted());
//! assert_eq!(cert.verdict, "cycle-found");
//! assert!(!cert.cycle.is_empty(), "failure certificates carry the path");
//!
//! let cert = prove::certify(&configs::by_name("vct-xy6-2x2").unwrap());
//! assert!(cert.certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod certificate;
pub mod configs;
pub mod model;
pub mod prove;

pub use certificate::Certificate;
pub use configs::ProveConfig;
pub use prove::certify;
