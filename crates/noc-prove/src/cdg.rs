//! Directed-graph substrate: dependency edges and cycle detection.
//!
//! A channel dependency graph is just a digraph whose vertices are
//! channels; everything scheme-specific lives in [`crate::model`]. This
//! module keeps the graph machinery generic so the property tests can
//! exercise cycle detection on arbitrary random digraphs against a
//! brute-force oracle, independent of any NoC semantics.

/// A dense-vertex digraph with `u32` vertex ids.
///
/// Vertices are `0..n`; unused ids are legal (they simply have no
/// edges), which lets channel spaces address `(link, vc)` pairs directly
/// without compacting around mesh-edge links that do not exist.
#[derive(Debug, Clone)]
pub struct Digraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Digraph {
    /// An edgeless digraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices (including unused ids).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges after [`Self::dedup`] (counts duplicates before).
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Adds the edge `a → b`. Duplicates are tolerated until
    /// [`Self::dedup`] collapses them.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        self.adj[a as usize].push(b);
        self.edges += 1;
    }

    /// Successors of `v`.
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Sorts adjacency lists and removes duplicate edges, keeping edge
    /// iteration (and therefore cycle reports) deterministic.
    pub fn dedup(&mut self) {
        self.edges = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            self.edges += list.len();
        }
    }

    /// Finds a directed cycle, returned as the vertex sequence
    /// `v0 → v1 → … → vk → v0` (without repeating `v0` at the end), or
    /// `None` if the graph is acyclic.
    ///
    /// Iterative three-color DFS: a back edge to a gray vertex closes a
    /// cycle, and the gray stack *is* the concrete path — which is what
    /// turns a failed proof into an actionable certificate. The cycle is
    /// simple by construction (gray vertices are pairwise distinct).
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.adj.len();
        let mut color = vec![WHITE; n];
        // (vertex, next successor index) — an explicit DFS stack keeps
        // 32×32×12-VC graphs (≈50k vertices) off the call stack.
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if color[root as usize] != WHITE {
                continue;
            }
            color[root as usize] = GRAY;
            stack.push((root, 0));
            while let Some(frame) = stack.last_mut() {
                let v = frame.0;
                let succ = &self.adj[v as usize];
                if frame.1 < succ.len() {
                    let w = succ[frame.1];
                    frame.1 += 1;
                    match color[w as usize] {
                        WHITE => {
                            color[w as usize] = GRAY;
                            stack.push((w, 0));
                        }
                        GRAY => {
                            // Back edge: the cycle is the gray path from
                            // `w` up to `v`.
                            let start = stack
                                .iter()
                                .position(|&(u, _)| u == w)
                                .expect("gray vertex is on the DFS stack");
                            return Some(stack[start..].iter().map(|&(u, _)| u).collect());
                        }
                        _ => {}
                    }
                } else {
                    color[v as usize] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

/// Validates that `cycle` (as returned by [`Digraph::find_cycle`]) is a
/// genuine simple cycle of `g`: non-empty, pairwise-distinct vertices,
/// every consecutive edge present, and the closing edge present.
pub fn is_valid_cycle(g: &Digraph, cycle: &[u32]) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let mut sorted = cycle.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    let mut ok = true;
    for i in 0..cycle.len() {
        let a = cycle[i];
        let b = cycle[(i + 1) % cycle.len()];
        ok &= g.successors(a).contains(&b);
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_vertex_are_acyclic() {
        assert!(Digraph::new(0).is_acyclic());
        assert!(Digraph::new(1).is_acyclic());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = Digraph::new(3);
        g.add_edge(1, 1);
        let c = g.find_cycle().unwrap();
        assert_eq!(c, vec![1]);
        assert!(is_valid_cycle(&g, &c));
    }

    #[test]
    fn two_cycle_found_with_path() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let c = g.find_cycle().unwrap();
        assert!(is_valid_cycle(&g, &c));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dag_is_acyclic() {
        let mut g = Digraph::new(6);
        for a in 0..5u32 {
            for b in (a + 1)..6 {
                g.add_edge(a, b);
            }
        }
        g.dedup();
        assert!(g.is_acyclic());
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 2);
        g.dedup();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn long_chain_cycle_reports_full_path() {
        let mut g = Digraph::new(100);
        for i in 0..99u32 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(99, 50);
        let c = g.find_cycle().unwrap();
        assert!(is_valid_cycle(&g, &c));
        assert_eq!(c.len(), 50, "cycle is 50 → … → 99 → 50");
        assert_eq!(c[0], 50);
    }
}
