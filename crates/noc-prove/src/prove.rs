//! The certifier: scheme-specific proof obligations over the CDG model.
//!
//! Proof taxonomy (one slug per [`Certificate::proof`]):
//!
//! * `cdg-acyclic` — plain VCT and turn-model schemes (XY/YX VCT, TFC's
//!   west-first): the full extended CDG, protocol coupling included,
//!   must be acyclic (Dally's condition).
//! * `duato-escape` — EscapeVC: the escape subnetwork (VC `range.start`
//!   per VN, XY-routed) is acyclic and requestable at every hop; the
//!   adaptive inner VCs may be cyclic (Duato's condition).
//! * `tdm-escape` — FastPass: the TDM lane network is an
//!   ejection-independent escape. The obligations are the paper's
//!   static lemmas — lane disjointness within each slot and across the
//!   rotation, and every router prime once per rotation (Lemma 2).
//! * `class-rotation-escape` — Pitstop: pit lanes rotate through all
//!   six classes, so every blocked packet is pit-eligible once per
//!   rotation, independent of ejection.
//! * `deflection` — MinBD: a deflecting router never waits on a
//!   downstream credit, so the CDG has no buffer-dependency edges at
//!   all; the obligations are structural (eject bandwidth and side
//!   buffer present).
//! * `dynamic-recovery` — SPIN/SWAP/DRAIN: their fully-adaptive CDG is
//!   *statically cyclic by design*; the certifier records a concrete
//!   cycle as evidence and certifies routability only. Deadlock freedom
//!   rests on the runtime recovery mechanism, which `noc-check`
//!   witnesses dynamically on small meshes.
//! * `holistic-lanes` — FastPass on an irregular (fault-degraded)
//!   topology: a holistic path (Eulerian circuit) exists and segments
//!   into disjoint lanes covering every surviving directed link
//!   (§III-F's construction).

use crate::certificate::{Certificate, VERDICT_CERTIFIED, VERDICT_CYCLE, VERDICT_REFUTED};
use crate::configs::{ProveConfig, SchemeKind};
use crate::model::{build_cdg, ChannelSpace};
use fastpass::irregular::{holistic_path, segment, IrregularTopo};
use fastpass::lane::{verify_rotation_disjoint, verify_slot_disjoint};
use fastpass::TdmSchedule;
use noc_sim::routing::introspect::PolicyKind;

/// Certifies one configuration, never panicking on refutable inputs:
/// failed obligations become `refuted`/`cycle-found` certificates.
pub fn certify(cfg: &ProveConfig) -> Certificate {
    match cfg.scheme {
        SchemeKind::Vct(kind) => certify_cdg(cfg, kind, "cdg-acyclic"),
        SchemeKind::Tfc => certify_cdg(cfg, PolicyKind::WestFirst, "cdg-acyclic"),
        SchemeKind::EscapeVc => certify_escape_vc(cfg),
        SchemeKind::Spin | SchemeKind::Swap | SchemeKind::Drain => certify_recovery(cfg),
        SchemeKind::Pitstop {
            class_period,
            pit_capacity,
        } => certify_pitstop(cfg, class_period, pit_capacity),
        SchemeKind::MinBd {
            side_capacity,
            eject_bandwidth,
        } => certify_minbd(cfg, side_capacity, eject_bandwidth),
        SchemeKind::FastPass { slot_cycles } => match &cfg.fault {
            Some(fault) => certify_holistic(cfg, fault),
            None => certify_fastpass(cfg, slot_cycles),
        },
    }
}

fn base(cfg: &ProveConfig, policy: &str) -> Certificate {
    Certificate {
        config: cfg.name.clone(),
        scheme: cfg.scheme.name().to_string(),
        mesh: format!("{}x{}", cfg.sim.mesh.width(), cfg.sim.mesh.height()),
        policy: policy.to_string(),
        vns: cfg.sim.vns,
        vcs_per_vn: cfg.sim.vcs_per_vn,
        protocol_coupling: cfg.coupling,
        disabled_channels: cfg
            .fault
            .as_ref()
            .map(|f| {
                f.disabled
                    .iter()
                    .map(|&(a, b)| format!("R{a}-R{b}"))
                    .collect()
            })
            .unwrap_or_default(),
        vertices: 0,
        edges: 0,
        routable: true,
        verdict: VERDICT_CERTIFIED.to_string(),
        proof: String::new(),
        witness: Vec::new(),
        cycle: Vec::new(),
        failures: Vec::new(),
    }
}

fn cycle_labels(space: ChannelSpace, cycle: &[u32]) -> Vec<String> {
    let mut labels: Vec<String> = cycle.iter().map(|&v| space.label(v)).collect();
    if let Some(first) = labels.first().cloned() {
        labels.push(first); // close the path for readability
    }
    labels
}

/// Dally-style proof: the full extended CDG must be acyclic.
fn certify_cdg(cfg: &ProveConfig, kind: PolicyKind, proof: &str) -> Certificate {
    let mut cert = base(cfg, kind.name());
    cert.proof = proof.to_string();
    let (g, space, rg) = build_cdg(&cfg.sim, kind, cfg.coupling, false);
    cert.vertices = g.num_vertices();
    cert.edges = g.num_edges();
    cert.routable = rg.routable();
    if !rg.routable() {
        cert.verdict = VERDICT_REFUTED.to_string();
        cert.failures = rg.dead_ends;
        return cert;
    }
    match g.find_cycle() {
        None => {
            cert.witness.push(format!(
                "restricted CDG acyclic over {} route continuations{}",
                rg.continuations.len(),
                if cfg.coupling {
                    " + protocol-coupling edges"
                } else {
                    ""
                }
            ));
        }
        Some(c) => {
            cert.verdict = VERDICT_CYCLE.to_string();
            cert.cycle = cycle_labels(space, &c);
        }
    }
    cert
}

/// Duato's condition for EscapeVC: the escape subnetwork (first VC of
/// every VN, XY-routed) is acyclic and reachable from every hop.
fn certify_escape_vc(cfg: &ProveConfig) -> Certificate {
    let mut cert = base(cfg, "adaptive+escape-xy");
    cert.proof = "duato-escape".to_string();
    let (esc, space, rg) = build_cdg(&cfg.sim, PolicyKind::EscapeXy, cfg.coupling, true);
    cert.vertices = esc.num_vertices();
    cert.edges = esc.num_edges();
    cert.routable = rg.routable();
    if !rg.routable() {
        cert.verdict = VERDICT_REFUTED.to_string();
        cert.failures = rg.dead_ends;
        return cert;
    }
    match esc.find_cycle() {
        None => {
            cert.witness.push(format!(
                "escape subnetwork (VC range.start per VN, xy-routed) acyclic: {} edges",
                esc.num_edges()
            ));
            cert.witness.push(
                "transfer condition: the escape VC of the XY next hop is requestable \
                 from every channel (xy has no dead ends)"
                    .to_string(),
            );
        }
        Some(c) => {
            cert.verdict = VERDICT_CYCLE.to_string();
            cert.cycle = cycle_labels(space, &c);
        }
    }
    cert
}

/// SPIN/SWAP/DRAIN: statically cyclic by design — certify routability
/// and record the cycle the recovery mechanism exists to break.
fn certify_recovery(cfg: &ProveConfig) -> Certificate {
    let mut cert = base(cfg, PolicyKind::FullyAdaptive.name());
    cert.proof = "dynamic-recovery".to_string();
    let (g, space, rg) = build_cdg(&cfg.sim, PolicyKind::FullyAdaptive, cfg.coupling, false);
    cert.vertices = g.num_vertices();
    cert.edges = g.num_edges();
    cert.routable = rg.routable();
    if !rg.routable() {
        cert.verdict = VERDICT_REFUTED.to_string();
        cert.failures = rg.dead_ends;
        return cert;
    }
    match g.find_cycle() {
        Some(c) => {
            cert.witness.push(format!(
                "fully-adaptive CDG is statically cyclic (length-{} cycle recorded); \
                 deadlock freedom relies on runtime detection and recovery, \
                 witnessed dynamically by noc-check",
                c.len()
            ));
            cert.witness.push(format!(
                "evidence cycle: {}",
                cycle_labels(space, &c).join(" -> ")
            ));
        }
        None => {
            cert.witness
                .push("fully-adaptive CDG acyclic on this mesh (degenerate size)".to_string());
        }
    }
    cert
}

/// Pitstop: class-rotation pit lanes are an ejection-independent escape.
fn certify_pitstop(cfg: &ProveConfig, class_period: u64, pit_capacity: usize) -> Certificate {
    let mut cert = base(cfg, PolicyKind::FullyAdaptive.name());
    cert.proof = "class-rotation-escape".to_string();
    cert.vertices = cfg.sim.mesh.num_links() * cfg.sim.vcs_per_port();
    let rg = crate::model::route_graph(PolicyKind::FullyAdaptive, cfg.sim.mesh);
    cert.routable = rg.routable();
    if class_period == 0 {
        cert.failures
            .push("class_period must be positive for the rotation to advance".into());
    }
    if pit_capacity == 0 {
        cert.failures
            .push("pit_capacity must be positive for pit pulls to succeed".into());
    }
    if !rg.routable() {
        cert.failures.extend(rg.dead_ends);
    }
    if cert.failures.is_empty() {
        cert.witness.push(format!(
            "pit lanes rotate through all {} classes every {} cycles; every blocked \
             packet is pit-eligible once per rotation, independent of ejection",
            noc_core::packet::NUM_CLASSES,
            class_period * noc_core::packet::NUM_CLASSES as u64
        ));
    } else {
        cert.verdict = VERDICT_REFUTED.to_string();
    }
    cert
}

/// MinBD: deflection routers never block on credits, so the CDG is
/// edgeless; the obligations are structural.
fn certify_minbd(cfg: &ProveConfig, side_capacity: usize, eject_bandwidth: usize) -> Certificate {
    let mut cert = base(cfg, "deflection");
    cert.proof = "deflection".to_string();
    cert.vertices = cfg.sim.mesh.num_links() * cfg.sim.vcs_per_port();
    if eject_bandwidth == 0 {
        cert.failures
            .push("eject_bandwidth must be positive: flits could never leave".into());
    }
    if side_capacity == 0 {
        cert.failures
            .push("side_capacity must be positive for buffered redirection".into());
    }
    if cert.failures.is_empty() {
        cert.witness.push(format!(
            "deflection never waits on downstream credits: zero buffer-dependency \
             edges; side buffer {side_capacity} flits, eject bandwidth \
             {eject_bandwidth}/cycle"
        ));
    } else {
        cert.verdict = VERDICT_REFUTED.to_string();
    }
    cert
}

/// FastPass on a regular mesh: the paper's static lane lemmas.
fn certify_fastpass(cfg: &ProveConfig, slot_cycles: Option<u64>) -> Certificate {
    let mut cert = base(cfg, "tdm-lanes+fully-adaptive");
    cert.proof = "tdm-escape".to_string();
    cert.vertices = cfg.sim.mesh.num_links() * cfg.sim.vcs_per_port();
    let mesh = cfg.sim.mesh;
    let schedule = match slot_cycles {
        Some(k) => TdmSchedule::with_slot_cycles(mesh, k),
        None => TdmSchedule::new(mesh, cfg.sim.vcs_per_port()),
    };
    // Lane disjointness: every slot of a full rotation, plus mid-slot
    // probes (the footprint is slot-position dependent only through the
    // covered partition, but probing guards against regressions).
    if let Err(c) = verify_rotation_disjoint(mesh, schedule) {
        cert.failures.push(format!("rotation lanes overlap: {c}"));
    }
    for probe in [0, schedule.slot_cycles() / 2, schedule.slot_cycles() - 1] {
        if let Err(c) = verify_slot_disjoint(mesh, schedule, probe) {
            cert.failures.push(format!("mid-slot lanes overlap: {c}"));
        }
    }
    // Lemma 2: every router is prime exactly once per rotation.
    let mut prime_count = vec![0usize; mesh.num_nodes()];
    for phase in 0..mesh.height() as u64 {
        for p in 0..schedule.partitions() {
            prime_count[schedule.prime(p, phase).index()] += 1;
        }
    }
    if let Some(missing) = prime_count.iter().position(|&c| c == 0) {
        cert.failures.push(format!(
            "Lemma 2 violated: R{missing} is never prime in a full rotation"
        ));
    }
    // The regular network routes fully adaptively; its deadlock freedom
    // comes from the lane escape, but it must at least be routable.
    let rg = crate::model::route_graph(PolicyKind::FullyAdaptive, mesh);
    cert.routable = rg.routable();
    if !rg.routable() {
        cert.failures.extend(rg.dead_ends);
    }
    if cert.failures.is_empty() {
        cert.witness.push(format!(
            "TDM lanes pairwise disjoint in all {} slots of the {}-cycle rotation \
             (slot K = {})",
            schedule.partitions() as u64 * mesh.height() as u64,
            schedule.rotation_cycles(),
            schedule.slot_cycles()
        ));
        cert.witness.push(format!(
            "every router prime once per rotation ({} routers × {} phases): the lane \
             network drains any blocked packet independent of ejection state",
            mesh.num_nodes(),
            mesh.height()
        ));
    } else {
        cert.verdict = VERDICT_REFUTED.to_string();
    }
    cert
}

/// FastPass on a fault-degraded topology: §III-F's holistic-path lane
/// construction must survive the disabled channels.
fn certify_holistic(cfg: &ProveConfig, fault: &noc_core::FaultConfig) -> Certificate {
    let mut cert = base(cfg, "holistic-lanes");
    cert.proof = "holistic-lanes".to_string();
    let topo = IrregularTopo::from_fault_config(fault);
    let links = topo.directed_links().len();
    cert.vertices = links;
    if !topo.is_connected() {
        cert.routable = false;
        cert.failures
            .push("degraded topology is disconnected".to_string());
        cert.verdict = VERDICT_REFUTED.to_string();
        return cert;
    }
    let path = match holistic_path(&topo) {
        Ok(p) => p,
        Err(e) => {
            cert.failures.push(format!("holistic path failed: {e}"));
            cert.verdict = VERDICT_REFUTED.to_string();
            return cert;
        }
    };
    if path.len() != links {
        cert.failures.push(format!(
            "holistic path covers {} of {links} surviving directed links",
            path.len()
        ));
    }
    let mut partitions_checked = Vec::new();
    for p in [2usize, 4, 8] {
        if p > path.len() {
            continue;
        }
        let segs = segment(&path, p);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        if segs.len() != p || total != path.len() {
            cert.failures
                .push(format!("segmentation into {p} lanes lost links"));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &segs {
            for &e in s {
                if !seen.insert(e) {
                    cert.failures
                        .push(format!("lane overlap on directed link {e:?} at p={p}"));
                }
            }
        }
        partitions_checked.push(p);
    }
    if cert.failures.is_empty() {
        cert.witness.push(format!(
            "holistic path (Eulerian circuit) covers all {links} surviving directed \
             links; disjoint lane segmentation verified for p ∈ {partitions_checked:?}"
        ));
    } else {
        cert.verdict = VERDICT_REFUTED.to_string();
    }
    cert
}
