//! The `noc-prove` CLI.
//!
//! ```text
//! noc-prove [--suite figure|mirror|big|fault|full] [--config NAME]...
//!           [--faults N] [--planted] [--expect-clean] [--out DIR]
//! ```
//!
//! Certifies the selected configurations, writes one
//! `<config>.cert.json` per config plus `summary.json` under `--out`
//! (default `target/noc-prove`), prints one line per certificate, and
//! exits nonzero if any certificate differs from its expectation.
//!
//! `--expect-clean` overrides per-config expectations and demands a
//! `certified` verdict from everything selected — CI uses it to
//! demonstrate that the planted cyclic config fails the gate.

use noc_prove::certificate::Certificate;
use noc_prove::{certify, configs, ProveConfig};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    suites: Vec<String>,
    configs: Vec<String>,
    faults: Option<usize>,
    planted: bool,
    expect_clean: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        suites: Vec::new(),
        configs: Vec::new(),
        faults: None,
        planted: false,
        expect_clean: false,
        out: PathBuf::from("target/noc-prove"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => {
                let s = it.next().ok_or("--suite needs a value")?;
                match s.as_str() {
                    "figure" | "mirror" | "big" | "fault" | "full" => args.suites.push(s),
                    other => return Err(format!("unknown suite {other:?}")),
                }
            }
            "--config" => args
                .configs
                .push(it.next().ok_or("--config needs a value")?),
            "--faults" => {
                let n = it.next().ok_or("--faults needs a value")?;
                args.faults = Some(n.parse().map_err(|_| format!("bad fault count {n:?}"))?);
            }
            "--planted" => args.planted = true,
            "--expect-clean" => args.expect_clean = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                println!(
                    "usage: noc-prove [--suite figure|mirror|big|fault|full] \
                     [--config NAME]... [--faults N] [--planted] [--expect-clean] \
                     [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.suites.is_empty() && args.configs.is_empty() && args.faults.is_none() && !args.planted {
        args.suites.push("full".into());
    }
    Ok(args)
}

fn selected(args: &Args) -> Result<Vec<ProveConfig>, String> {
    let mut v: Vec<ProveConfig> = Vec::new();
    for s in &args.suites {
        match s.as_str() {
            "figure" => v.extend(configs::figure_suite()),
            "mirror" => v.extend(configs::mirror_2x2()),
            "big" => v.extend(configs::big_points()),
            "fault" => {
                v.extend(configs::fault_suite(8));
                v.push(configs::irregular_smoke());
            }
            "full" => v.extend(configs::full_suite()),
            other => return Err(format!("unknown suite {other:?}")),
        }
    }
    if let Some(n) = args.faults {
        v.extend(configs::fault_suite(n));
    }
    for name in &args.configs {
        v.push(configs::by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?);
    }
    if args.planted {
        v.push(configs::planted());
    }
    // Suite combinations may select a config twice; certify each once.
    let mut seen = std::collections::BTreeSet::new();
    v.retain(|c| seen.insert(c.name.clone()));
    Ok(v)
}

#[derive(Serialize)]
struct Summary {
    total: usize,
    certified: usize,
    cycles: usize,
    refuted: usize,
    unexpected: Vec<String>,
    elapsed_ms: u64,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("noc-prove: {e}");
            std::process::exit(2);
        }
    };
    let cfgs = match selected(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("noc-prove: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("noc-prove: creating {}: {e}", args.out.display());
        std::process::exit(2);
    }

    let start = Instant::now();
    let mut certs: Vec<Certificate> = Vec::new();
    let mut unexpected: Vec<String> = Vec::new();
    for cfg in &cfgs {
        let t = Instant::now();
        let cert = certify(cfg);
        let ok = if args.expect_clean {
            cert.certified()
        } else {
            cert.as_expected(cfg.expect_cycle)
        };
        println!(
            "[{}] {} ({} ms)",
            if ok { "ok" } else { "UNEXPECTED" },
            cert.summary(),
            t.elapsed().as_millis()
        );
        if !ok {
            unexpected.push(cert.config.clone());
        }
        let path = args.out.join(format!("{}.cert.json", cert.config));
        let json = serde_json::to_string_pretty(&cert).expect("certificate serializes");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("noc-prove: writing {}: {e}", path.display());
            std::process::exit(2);
        }
        certs.push(cert);
    }

    let summary = Summary {
        total: certs.len(),
        certified: certs.iter().filter(|c| c.certified()).count(),
        cycles: certs.iter().filter(|c| c.verdict == "cycle-found").count(),
        refuted: certs.iter().filter(|c| c.verdict == "refuted").count(),
        unexpected: unexpected.clone(),
        elapsed_ms: start.elapsed().as_millis() as u64,
    };
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    if let Err(e) = std::fs::write(args.out.join("summary.json"), json) {
        eprintln!("noc-prove: writing summary: {e}");
        std::process::exit(2);
    }
    println!(
        "noc-prove: {} configs, {} certified, {} cycle(s), {} refuted in {} ms",
        summary.total, summary.certified, summary.cycles, summary.refuted, summary.elapsed_ms
    );
    if !unexpected.is_empty() {
        eprintln!("noc-prove: unexpected verdicts: {}", unexpected.join(", "));
        std::process::exit(1);
    }
}
