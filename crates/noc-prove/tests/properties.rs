//! Property tests of the certifier's graph machinery: cycle detection
//! against a brute-force DFS oracle on random digraphs (mirroring the
//! waitgraph oracle tests of `tests/properties.rs`), and structural
//! invariants of the CDG model on random mesh shapes.

use noc_core::config::SimConfig;
use noc_core::topology::Mesh;
use noc_prove::cdg::{is_valid_cycle, Digraph};
use noc_prove::model::{build_cdg, route_graph};
use noc_sim::routing::introspect::PolicyKind;
use proptest::prelude::*;

/// Brute-force oracle: a digraph has a cycle iff some vertex reaches
/// itself along at least one edge (plain DFS from every vertex).
fn has_cycle_oracle(n: usize, edges: &[(u32, u32)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
    }
    for start in 0..n as u32 {
        let mut seen = vec![false; n];
        let mut stack: Vec<u32> = adj[start as usize].clone();
        while let Some(v) = stack.pop() {
            if v == start {
                return true;
            }
            if !seen[v as usize] {
                seen[v as usize] = true;
                stack.extend(adj[v as usize].iter().copied());
            }
        }
    }
    false
}

fn graph_from(n: usize, edges: &[(u32, u32)]) -> Digraph {
    let mut g = Digraph::new(n);
    for &(a, b) in edges {
        g.add_edge(a, b);
    }
    g.dedup();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `find_cycle` agrees with the brute-force oracle on arbitrary
    /// random digraphs, and any cycle it returns is genuine.
    /// (The proptest shim has no tuple strategies, so each edge is one
    /// integer decomposed as `(raw / n, raw % n)`.)
    #[test]
    fn cycle_detection_matches_oracle(
        n in 1usize..24,
        raw_edges in proptest::collection::vec(0u32..(24 * 24), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|raw| ((raw / n as u32) % n as u32, raw % n as u32))
            .collect();
        let g = graph_from(n, &edges);
        match g.find_cycle() {
            Some(c) => {
                prop_assert!(has_cycle_oracle(n, &edges), "false positive: {c:?}");
                prop_assert!(is_valid_cycle(&g, &c), "bogus cycle path {c:?}");
            }
            None => prop_assert!(!has_cycle_oracle(n, &edges), "missed a cycle"),
        }
    }

    /// Random DAGs (edges only from lower to higher ids) are always
    /// reported acyclic.
    #[test]
    fn dags_certify_acyclic(
        n in 2usize..24,
        raw_edges in proptest::collection::vec(0u32..(24 * 24), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|raw| {
                let a = (raw / n as u32) % (n as u32 - 1);
                let b = a + 1 + raw % (n as u32 - 1 - a).max(1);
                (a, b.min(n as u32 - 1))
            })
            .filter(|&(a, b)| a < b)
            .collect();
        prop_assert!(graph_from(n, &edges).find_cycle().is_none());
    }

    /// Adding any single back edge that closes a directed chain is
    /// detected, and the reported path walks the chain.
    #[test]
    fn chain_with_back_edge_found(len in 2usize..40, back_to in 0usize..40) {
        let back_to = back_to % (len - 1);
        let mut g = Digraph::new(len);
        for i in 0..len as u32 - 1 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(len as u32 - 1, back_to as u32);
        let c = g.find_cycle().expect("closed chain must cycle");
        prop_assert!(is_valid_cycle(&g, &c));
        prop_assert_eq!(c.len(), len - back_to);
    }

    /// XY and YX CDGs are acyclic and dead-end free on every mesh shape,
    /// with or without 6-VN protocol coupling.
    #[test]
    fn dor_cdgs_acyclic_any_mesh(w in 2usize..6, h in 2usize..6, vn_bit in 0u8..2) {
        let vns = if vn_bit == 1 { 6usize } else { 0 };
        for kind in [PolicyKind::Xy, PolicyKind::Yx] {
            let sim = SimConfig::builder().mesh(w, h).vns(vns).vcs_per_vn(1).build();
            // Coupling only stays acyclic with class-separated VNs.
            let coupling = vns == 6;
            let (g, _, rg) = build_cdg(&sim, kind, coupling, false);
            prop_assert!(rg.routable(), "{} {w}x{h}", kind.name());
            prop_assert!(g.is_acyclic(), "{} {w}x{h} vns={vns}", kind.name());
        }
    }

    /// The route graph of every policy is dead-end free on every mesh
    /// shape (minimal policies always deliver).
    #[test]
    fn all_policies_dead_end_free(w in 2usize..6, h in 2usize..6) {
        for kind in [
            PolicyKind::Xy,
            PolicyKind::Yx,
            PolicyKind::FullyAdaptive,
            PolicyKind::WestFirst,
            PolicyKind::NorthLast,
            PolicyKind::OddEven,
            PolicyKind::EscapeXy,
        ] {
            let rg = route_graph(kind, Mesh::new(w, h));
            prop_assert!(rg.routable(), "{} {w}x{h}: {:?}", kind.name(), rg.dead_ends);
        }
    }
}
