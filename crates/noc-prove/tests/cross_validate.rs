//! Static ↔ dynamic cross-validation against `noc-check`.
//!
//! The certifier's verdicts must agree with the bounded model checker's
//! exhaustive 2×2 results in the one direction that is sound: a static
//! certificate implies no dynamic counterexample exists, and the planted
//! cyclic config must fail statically exactly where `noc-check`
//! witnesses its wedge dynamically.
//!
//! Configs whose exhaustive exploration is cheap enough for debug-mode
//! tests are explored live here; the two expensive ones (`fastpass-2x2`
//! at a 2.5M-node budget, `pitstop-2x2` at 600k) are validated against
//! their `expect_wedge` declarations, which the CI `modelcheck` job
//! re-establishes dynamically in release mode on every PR.

use noc_check::explore::check;
use noc_prove::{certify, configs};

/// Configs cheap enough (≲200 ms debug) to explore exhaustively inside
/// this test.
const EXPLORE_LIVE: [&str; 6] = [
    "vct-xy0-2x2",
    "vct-xy6-2x2",
    "spin-2x2",
    "escape-vc-2x2",
    "minbd-min-2x2",
    "planted-vct0-protocol-2x2",
];

/// Every `noc-check` 2×2 config has a same-name static mirror with the
/// same mesh/VC structure and protocol-model switch, and the static
/// verdict agrees with the dynamic expectation.
#[test]
fn static_verdicts_agree_with_dynamic_expectations() {
    let dynamic: Vec<_> = noc_check::configs::matrix_2x2()
        .into_iter()
        .chain(std::iter::once(noc_check::configs::planted()))
        .collect();
    for cc in &dynamic {
        let pc = configs::by_name(&cc.name)
            .unwrap_or_else(|| panic!("no static mirror for noc-check config {}", cc.name));
        // Structural lockstep: same mesh, same VC layout, coupling
        // mirrors the backlog protocol model.
        assert_eq!(pc.sim.mesh, cc.sim.mesh, "{}", cc.name);
        assert_eq!(pc.sim.vns, cc.sim.vns, "{}", cc.name);
        assert_eq!(pc.sim.vcs_per_vn, cc.sim.vcs_per_vn, "{}", cc.name);
        assert_eq!(
            pc.coupling,
            cc.backlog_limit.is_some(),
            "{}: coupling must mirror the backlog protocol model",
            cc.name
        );
        // Verdict agreement: certified ⇔ no wedge expected; the planted
        // cycle ⇔ the planted wedge.
        let cert = certify(&pc);
        assert!(
            cert.as_expected(pc.expect_cycle),
            "{}: {}",
            cc.name,
            cert.summary()
        );
        assert_eq!(
            pc.expect_cycle, cc.expect_wedge,
            "{}: static and dynamic expectations diverge",
            cc.name
        );
    }
}

/// Live exhaustive exploration of the cheap tier: wherever the static
/// proof certifies, the model checker must find no counterexample, and
/// the planted config must fail on both sides — statically with a
/// concrete CDG cycle, dynamically with a wedge.
#[test]
fn exhaustive_exploration_confirms_static_verdicts() {
    for name in EXPLORE_LIVE {
        let cc = noc_check::configs::by_name(name).expect("known config");
        let pc = configs::by_name(name).expect("static mirror");
        let cert = certify(&pc);
        let report = check(&cc);
        let dynamic_clean = report.as_expected(&cc) && !cc.expect_wedge;
        let dynamic_wedged = report.as_expected(&cc) && cc.expect_wedge;
        assert!(
            report.as_expected(&cc),
            "{name}: dynamic exploration disagreed with its own expectation"
        );
        if cert.certified() {
            assert!(
                dynamic_clean,
                "{name}: statically certified but dynamically wedged — unsound"
            );
        }
        if cert.verdict == "cycle-found" {
            assert!(
                dynamic_wedged,
                "{name}: static cycle without a dynamic witness"
            );
            assert!(
                !cert.cycle.is_empty(),
                "{name}: failure certificate must carry the channel path"
            );
        }
    }
}

/// The planted pair in detail: the static certificate names a concrete
/// two-channel protocol cycle, and the dynamic wedge exists on the same
/// 2×2 miniature.
#[test]
fn planted_cycle_is_concrete_and_witnessed() {
    let cert = certify(&configs::planted());
    assert_eq!(cert.verdict, "cycle-found");
    // Closed path: first channel repeated at the end.
    assert!(cert.cycle.len() >= 3);
    assert_eq!(cert.cycle.first(), cert.cycle.last());
    for ch in &cert.cycle {
        assert!(
            ch.starts_with('R') && ch.contains("->") && ch.contains(".vc"),
            "channel label {ch:?} malformed"
        );
    }
    let report = check(&noc_check::configs::planted());
    assert!(
        matches!(report.verdict, noc_check::explore::Verdict::Wedged(_)),
        "noc-check must witness the planted wedge dynamically"
    );
}
