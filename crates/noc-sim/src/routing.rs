//! Routing policies: XY, YX, west-first, fully adaptive, escape-VC.
//!
//! A policy performs route computation *and* downstream VC selection for
//! a head packet (RC + VA of the 1-cycle router). Table II assigns:
//! fully-adaptive routing to SWAP, SPIN, DRAIN, Pitstop and FastPass's
//! regular pass; west-first to TFC; and a Duato escape-VC arrangement to
//! EscapeVC (deterministic escape VC + fully-adaptive elsewhere).

use crate::network::NetworkCore;
use noc_core::packet::{MessageClass, PacketId};
use noc_core::rng::DetRng;
use noc_core::topology::{Direction, NodeId, Port};

/// A head packet asking for a route at a router.
///
/// Carries by value the only packet fields route computation reads
/// (destination and message class) plus the packet id, so building a
/// request costs one store lookup and no `Packet` clone — this runs once
/// per routed head in the hot cycle loop.
#[derive(Debug, Clone, Copy)]
pub struct RouteReq {
    /// Router the packet is buffered at.
    pub at: NodeId,
    /// Input port it occupies.
    pub in_port: Port,
    /// VC it occupies.
    pub vc: usize,
    /// The packet's id (for policies that need more than `dst`/`class`).
    pub pkt: PacketId,
    /// The packet's destination.
    pub dst: NodeId,
    /// The packet's message class.
    pub class: MessageClass,
}

impl RouteReq {
    /// Builds a request for the packet `pkt` buffered at
    /// `(at, in_port, vc)`, reading `dst`/`class` from the store.
    pub fn new(core: &NetworkCore, at: NodeId, in_port: Port, vc: usize, pkt: PacketId) -> Self {
        let p = core.store.get(pkt);
        RouteReq {
            at,
            in_port,
            vc,
            pkt,
            dst: p.dst,
            class: p.class,
        }
    }
}

/// A granted route: output port plus the downstream VC that was selected
/// (`out_vc` is meaningless for `Port::Local`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output port to traverse.
    pub out_port: Port,
    /// Downstream VC index (already verified free by the policy).
    pub out_vc: usize,
}

/// Route computation + VC selection.
///
/// Implementations must only return decisions whose downstream VC is
/// currently free; the regular pipeline reserves it immediately.
///
/// Policies must be [`Send`]: schemes own their policies (often boxed),
/// and every scheme crosses a thread boundary when the bench harness
/// parallelizes sweeps.
pub trait RoutingPolicy: Send {
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Computes a route for `req`, or `None` if no admissible output/VC
    /// is available this cycle (the packet stays blocked).
    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision>;

    /// Output ports the packet *could* legally use (for wait-for-graph
    /// construction). The default is all minimal productive directions.
    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            return vec![Port::Local];
        }
        core.productive_dirs(req.at, req.dst)
            .iter()
            .map(Port::Dir)
            .collect()
    }
}

/// Returns the first free VC for `class` at the input port of the
/// neighbour reached via `d` from `at`, if any.
pub fn free_downstream_vc(
    core: &NetworkCore,
    at: NodeId,
    d: Direction,
    class_index: usize,
) -> Option<usize> {
    let nbr = core.neighbor(at, d)?;
    let range = core.cfg().vc_range_for_class(class_index);
    core.input(nbr, Port::Dir(d.opposite()).index())
        .free_vc_in(range)
}

/// Counts free VCs for `class` at the downstream input port via `d`
/// (the congestion/credit signal used by adaptive selection and TFC
/// tokens).
pub fn downstream_credits(
    core: &NetworkCore,
    at: NodeId,
    d: Direction,
    class_index: usize,
) -> usize {
    match core.neighbor(at, d) {
        Some(nbr) => {
            let range = core.cfg().vc_range_for_class(class_index);
            core.input(nbr, Port::Dir(d.opposite()).index())
                .free_vcs_in(range)
        }
        None => 0,
    }
}

fn local_if_arrived(req: &RouteReq) -> Option<RouteDecision> {
    (req.dst == req.at).then_some(RouteDecision {
        out_port: Port::Local,
        out_vc: 0,
    })
}

/// Pure route-set introspection for static analysis (`noc-prove`).
///
/// Every routing policy's *admissible direction set* is a pure function
/// of `(mesh, at, in_port, dst)` — the credit/occupancy state only picks
/// *among* admissible directions, never adds to them. This module is the
/// single source of truth for those sets: the policies below delegate to
/// it (so the simulator and the static certifier cannot drift), and
/// `noc-prove` builds channel-dependency graphs from exactly these
/// functions rather than re-deriving the routing algebra.
pub mod introspect {
    use noc_core::topology::{Direction, Mesh, NodeId, Port};

    /// Which routing discipline's route set to enumerate.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PolicyKind {
        /// Dimension-ordered X-then-Y ([`super::DorXy`]).
        Xy,
        /// Dimension-ordered Y-then-X ([`super::DorYx`]).
        Yx,
        /// Minimal fully adaptive ([`super::FullyAdaptive`]).
        FullyAdaptive,
        /// West-first turn model ([`super::WestFirst`], TFC's substrate).
        WestFirst,
        /// North-last turn model ([`super::NorthLast`]).
        NorthLast,
        /// Odd-even turn model ([`super::OddEven`]).
        OddEven,
        /// The deterministic escape discipline of
        /// [`super::EscapeVcRouting`] (XY into the escape VC).
        EscapeXy,
    }

    impl PolicyKind {
        /// Short name used in certificates.
        pub fn name(self) -> &'static str {
            match self {
                PolicyKind::Xy => "xy",
                PolicyKind::Yx => "yx",
                PolicyKind::FullyAdaptive => "fully-adaptive",
                PolicyKind::WestFirst => "west-first",
                PolicyKind::NorthLast => "north-last",
                PolicyKind::OddEven => "odd-even",
                PolicyKind::EscapeXy => "escape-xy",
            }
        }

        /// Whether the route set depends on the input port (turn history).
        pub fn history_sensitive(self) -> bool {
            matches!(self, PolicyKind::OddEven)
        }
    }

    /// Directions admissible under west-first: all westward correction
    /// first, then adaptive among the rest.
    pub fn west_first(mesh: Mesh, at: NodeId, dst: NodeId) -> Vec<Direction> {
        let prod = mesh.productive_dirs(at, dst);
        if prod.contains(Direction::West) {
            vec![Direction::West]
        } else {
            prod.iter().collect()
        }
    }

    /// Directions admissible under north-last: North only once nothing
    /// else is productive.
    pub fn north_last(mesh: Mesh, at: NodeId, dst: NodeId) -> Vec<Direction> {
        let prod: Vec<Direction> = mesh.productive_dirs(at, dst).iter().collect();
        let non_north: Vec<Direction> = prod
            .iter()
            .copied()
            .filter(|&d| d != Direction::North)
            .collect();
        if non_north.is_empty() {
            prod
        } else {
            non_north
        }
    }

    /// The direction a packet travelled to arrive on `in_port` (`None`
    /// for freshly injected packets).
    pub fn travel_dir(in_port: Port) -> Option<Direction> {
        match in_port {
            Port::Dir(d) => Some(d.opposite()),
            Port::Local => None,
        }
    }

    /// Directions admissible under the odd-even turn model (see
    /// [`super::OddEven`] for the rule derivation).
    pub fn odd_even(mesh: Mesh, at: NodeId, dst: NodeId, in_port: Port) -> Vec<Direction> {
        let x = mesh.x(at);
        let even = x.is_multiple_of(2);
        let (tx, ty) = (mesh.x(dst), mesh.y(dst));
        let dy = ty as isize - mesh.y(at) as isize;
        let dx = tx as isize - x as isize;
        let prev = travel_dir(in_port);
        mesh.productive_dirs(at, dst)
            .iter()
            .filter(|&d| match d {
                Direction::North | Direction::South => {
                    // EN/ES forbidden at even columns.
                    if prev == Some(Direction::East) && even {
                        return false;
                    }
                    // A packet still heading west must keep its future
                    // N/S->W turn legal (even columns only).
                    dx >= 0 || even
                }
                Direction::West => {
                    // NW/SW forbidden at odd columns.
                    !matches!(prev, Some(Direction::North) | Some(Direction::South)) || even
                }
                Direction::East => {
                    // Never enter an even destination column eastbound
                    // with vertical offset left: no legal turn there.
                    !(dy != 0 && tx % 2 == 0 && tx == x + 1)
                }
            })
            .collect()
    }

    /// The full admissible direction set of `kind` at
    /// `(at, in_port, dst)`. Returns the empty set iff `at == dst`
    /// (route to `Port::Local`).
    pub fn route_set(
        kind: PolicyKind,
        mesh: Mesh,
        at: NodeId,
        in_port: Port,
        dst: NodeId,
    ) -> Vec<Direction> {
        if at == dst {
            return Vec::new();
        }
        match kind {
            PolicyKind::Xy | PolicyKind::EscapeXy => {
                vec![mesh
                    .xy_next(at, dst)
                    .expect("non-local packet always has an XY next hop")]
            }
            PolicyKind::Yx => vec![mesh
                .yx_next(at, dst)
                .expect("non-local packet always has a YX next hop")],
            PolicyKind::FullyAdaptive => mesh.productive_dirs(at, dst).iter().collect(),
            PolicyKind::WestFirst => west_first(mesh, at, dst),
            PolicyKind::NorthLast => north_last(mesh, at, dst),
            PolicyKind::OddEven => odd_even(mesh, at, dst, in_port),
        }
    }
}

/// Dimension-ordered routing, X then Y (deterministic, deadlock-free).
#[derive(Debug, Clone)]
pub struct DorXy;

impl RoutingPolicy for DorXy {
    fn name(&self) -> &'static str {
        "xy"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if let Some(d) = local_if_arrived(req) {
            return Some(d);
        }
        // `Mesh::xy_next` on cached coordinates (no per-call division).
        let (fx, fy) = core.xy(req.at);
        let (tx, ty) = core.xy(req.dst);
        let dir = if tx > fx {
            Direction::East
        } else if tx < fx {
            Direction::West
        } else if ty > fy {
            Direction::South
        } else if ty < fy {
            Direction::North
        } else {
            return None;
        };
        let out_vc = free_downstream_vc(core, req.at, dir, req.class.index())?;
        Some(RouteDecision {
            out_port: Port::Dir(dir),
            out_vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            vec![Port::Dir(
                core.mesh()
                    .xy_next(req.at, req.dst)
                    .expect("non-local packet always has an XY next hop"),
            )]
        }
    }
}

/// Dimension-ordered routing, Y then X.
#[derive(Debug, Clone)]
pub struct DorYx;

impl RoutingPolicy for DorYx {
    fn name(&self) -> &'static str {
        "yx"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if let Some(d) = local_if_arrived(req) {
            return Some(d);
        }
        // `Mesh::yx_next` on cached coordinates (no per-call division).
        let (fx, fy) = core.xy(req.at);
        let (tx, ty) = core.xy(req.dst);
        let dir = if ty > fy {
            Direction::South
        } else if ty < fy {
            Direction::North
        } else if tx > fx {
            Direction::East
        } else if tx < fx {
            Direction::West
        } else {
            return None;
        };
        let out_vc = free_downstream_vc(core, req.at, dir, req.class.index())?;
        Some(RouteDecision {
            out_port: Port::Dir(dir),
            out_vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            vec![Port::Dir(
                core.mesh()
                    .yx_next(req.at, req.dst)
                    .expect("non-local packet always has a YX next hop"),
            )]
        }
    }
}

/// Minimal fully-adaptive routing: any productive direction, preferring
/// the one with the most free downstream VCs (credit-based congestion
/// estimate), random tie-break.
///
/// Fully-adaptive routing admits network-level deadlock; schemes using it
/// must provide a resolution mechanism (SPIN, SWAP, DRAIN, Pitstop,
/// FastPass all do).
#[derive(Debug, Clone)]
pub struct FullyAdaptive {
    rng: DetRng,
}

impl FullyAdaptive {
    /// Creates the policy with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        FullyAdaptive {
            rng: DetRng::new(seed),
        }
    }
}

impl RoutingPolicy for FullyAdaptive {
    fn name(&self) -> &'static str {
        "fully-adaptive"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if let Some(d) = local_if_arrived(req) {
            return Some(d);
        }
        // The class range is direction-independent: resolve it once, and
        // take the free-VC pick and the credit count from one downstream
        // occupancy read per direction (identical values to the
        // `free_downstream_vc` + `downstream_credits` pair).
        let range = core.cfg().vc_range_for_class(req.class.index());
        let mut best: Option<(usize, Direction, usize)> = None;
        let mut ties = 0usize;
        for dir in core.productive_dirs(req.at, req.dst).iter() {
            let Some(nbr) = core.neighbor(req.at, dir) else {
                continue;
            };
            let (vc, credits) = core
                .input(nbr, Port::Dir(dir.opposite()).index())
                .free_vc_and_credits(range.clone());
            if let Some(vc) = vc {
                match best {
                    Some((b, _, _)) if credits < b => {}
                    Some((b, _, _)) if credits == b => {
                        // Reservoir-style uniform tie-break.
                        ties += 1;
                        if self.rng.range(0, ties + 1) == 0 {
                            best = Some((credits, dir, vc));
                        }
                    }
                    _ => {
                        best = Some((credits, dir, vc));
                        ties = 0;
                    }
                }
            }
        }
        best.map(|(_, dir, vc)| RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: vc,
        })
    }
}

/// West-first partially-adaptive routing (used by TFC and as the escape
/// discipline). All westward correction happens first; once the packet no
/// longer needs to go west, it may adaptively pick among the remaining
/// productive directions. West-first forbids every turn into West, which
/// breaks all cycles: deadlock-free.
#[derive(Debug, Clone)]
pub struct WestFirst {
    rng: DetRng,
}

impl WestFirst {
    /// Creates the policy with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        WestFirst {
            rng: DetRng::new(seed),
        }
    }

    /// Directions admissible under west-first from `at` toward `dst`
    /// (delegates to [`introspect::west_first`], the set `noc-prove`
    /// certifies).
    pub fn admissible(core: &NetworkCore, at: NodeId, dst: NodeId) -> Vec<Direction> {
        introspect::west_first(core.mesh(), at, dst)
    }
}

impl RoutingPolicy for WestFirst {
    fn name(&self) -> &'static str {
        "west-first"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if let Some(d) = local_if_arrived(req) {
            return Some(d);
        }
        let class = req.class.index();
        let mut best: Option<(usize, Direction, usize)> = None;
        for dir in Self::admissible(core, req.at, req.dst) {
            if let Some(vc) = free_downstream_vc(core, req.at, dir, class) {
                let credits = downstream_credits(core, req.at, dir, class);
                let better = match best {
                    Some((b, _, _)) => credits > b || (credits == b && self.rng.chance(0.5)),
                    None => true,
                };
                if better {
                    best = Some((credits, dir, vc));
                }
            }
        }
        best.map(|(_, dir, vc)| RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            Self::admissible(core, req.at, req.dst)
                .into_iter()
                .map(Port::Dir)
                .collect()
        }
    }
}

/// Duato escape-VC routing: within each VN, VC 0 is the escape channel
/// routed deterministically (XY, a subset of west-first as configured in
/// the paper); the remaining VCs are fully adaptive. A packet may always
/// fall back into the escape channel, which guarantees network-level
/// deadlock freedom.
#[derive(Debug, Clone)]
pub struct EscapeVcRouting {
    adaptive: FullyAdaptive,
}

impl EscapeVcRouting {
    /// Creates the policy with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        EscapeVcRouting {
            adaptive: FullyAdaptive::new(seed),
        }
    }

    /// The escape VC index for a class at the current configuration.
    pub fn escape_vc(core: &NetworkCore, class_index: usize) -> usize {
        core.cfg().vc_range_for_class(class_index).start
    }
}

impl RoutingPolicy for EscapeVcRouting {
    fn name(&self) -> &'static str {
        "escape-vc"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if let Some(d) = local_if_arrived(req) {
            return Some(d);
        }
        let class = req.class.index();
        let range = core.cfg().vc_range_for_class(class);
        let escape = range.start;
        // Adaptive attempt: any productive direction, non-escape VCs only.
        let mesh = core.mesh();
        let mut best: Option<(usize, Direction, usize)> = None;
        for dir in core.productive_dirs(req.at, req.dst).iter() {
            if let Some(nbr) = core.neighbor(req.at, dir) {
                let iu = core.input(nbr, Port::Dir(dir.opposite()).index());
                let adaptive_range = (escape + 1)..range.end;
                if let Some(vc) = iu.free_vc_in(adaptive_range.clone()) {
                    let credits = iu.free_vcs_in(adaptive_range);
                    if best.map(|(b, _, _)| credits > b).unwrap_or(true) {
                        best = Some((credits, dir, vc));
                    }
                }
            }
        }
        if let Some((_, dir, vc)) = best {
            return Some(RouteDecision {
                out_port: Port::Dir(dir),
                out_vc: vc,
            });
        }
        // Escape fallback: deterministic XY into the escape VC.
        let dir = mesh.xy_next(req.at, req.dst)?;
        let nbr = core.neighbor(req.at, dir)?;
        let iu = core.input(nbr, Port::Dir(dir.opposite()).index());
        iu.is_free(escape).then_some(RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: escape,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        self.adaptive.desired_ports(core, req)
    }
}

/// North-last partially-adaptive routing: a packet may adaptively use
/// East/West/South, but may only head North once no other productive
/// direction remains (with minimal routing: once it is in the
/// destination column). All turns out of North are thereby eliminated,
/// which breaks every cycle: deadlock-free without VCs or detection.
#[derive(Debug, Clone)]
pub struct NorthLast {
    rng: DetRng,
}

impl NorthLast {
    /// Creates the policy with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        NorthLast {
            rng: DetRng::new(seed),
        }
    }

    /// Directions admissible under north-last from `at` toward `dst`
    /// (delegates to [`introspect::north_last`], the set `noc-prove`
    /// certifies).
    pub fn admissible(core: &NetworkCore, at: NodeId, dst: NodeId) -> Vec<Direction> {
        introspect::north_last(core.mesh(), at, dst)
    }
}

impl RoutingPolicy for NorthLast {
    fn name(&self) -> &'static str {
        "north-last"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if req.dst == req.at {
            return Some(RouteDecision {
                out_port: Port::Local,
                out_vc: 0,
            });
        }
        let class = req.class.index();
        let mut best: Option<(usize, Direction, usize)> = None;
        for dir in Self::admissible(core, req.at, req.dst) {
            if let Some(vc) = free_downstream_vc(core, req.at, dir, class) {
                let credits = downstream_credits(core, req.at, dir, class);
                let better = match best {
                    Some((b, _, _)) => credits > b || (credits == b && self.rng.chance(0.5)),
                    None => true,
                };
                if better {
                    best = Some((credits, dir, vc));
                }
            }
        }
        best.map(|(_, dir, vc)| RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            Self::admissible(core, req.at, req.dst)
                .into_iter()
                .map(Port::Dir)
                .collect()
        }
    }
}

/// Odd-even turn-model routing (Chiu): partially adaptive and
/// deadlock-free by restricting *where* turns may occur instead of
/// *which* turns exist —
///
/// * EN and ES turns are forbidden at nodes in even columns;
/// * NW and SW turns are forbidden at nodes in odd columns.
///
/// Minimal-routing corollaries implemented here: an eastbound packet
/// with remaining vertical offset must not enter an even destination
/// column from the west (it could never turn there), and a packet that
/// still needs to travel west may only move vertically in even columns
/// (the later N/S→W turn must be legal).
#[derive(Debug, Clone)]
pub struct OddEven {
    rng: DetRng,
}

impl OddEven {
    /// Creates the policy with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        OddEven {
            rng: DetRng::new(seed),
        }
    }

    /// Directions admissible under the odd-even rules (delegates to
    /// [`introspect::odd_even`], the set `noc-prove` certifies).
    pub fn admissible(
        core: &NetworkCore,
        at: NodeId,
        dst: NodeId,
        in_port: Port,
    ) -> Vec<Direction> {
        introspect::odd_even(core.mesh(), at, dst, in_port)
    }
}

impl RoutingPolicy for OddEven {
    fn name(&self) -> &'static str {
        "odd-even"
    }

    fn route(&mut self, core: &NetworkCore, req: &RouteReq) -> Option<RouteDecision> {
        if req.dst == req.at {
            return Some(RouteDecision {
                out_port: Port::Local,
                out_vc: 0,
            });
        }
        let class = req.class.index();
        let mut best: Option<(usize, Direction, usize)> = None;
        for dir in Self::admissible(core, req.at, req.dst, req.in_port) {
            if let Some(vc) = free_downstream_vc(core, req.at, dir, class) {
                let credits = downstream_credits(core, req.at, dir, class);
                let better = match best {
                    Some((b, _, _)) => credits > b || (credits == b && self.rng.chance(0.5)),
                    None => true,
                };
                if better {
                    best = Some((credits, dir, vc));
                }
            }
        }
        best.map(|(_, dir, vc)| RouteDecision {
            out_port: Port::Dir(dir),
            out_vc: vc,
        })
    }

    fn desired_ports(&self, core: &NetworkCore, req: &RouteReq) -> Vec<Port> {
        if req.dst == req.at {
            vec![Port::Local]
        } else {
            Self::admissible(core, req.at, req.dst, req.in_port)
                .into_iter()
                .map(Port::Dir)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};
    use noc_core::topology::Mesh;

    fn core(vns: usize, vcs: usize) -> NetworkCore {
        NetworkCore::new(
            SimConfig::builder()
                .mesh(4, 4)
                .vns(vns)
                .vcs_per_vn(vcs)
                .build(),
        )
    }

    fn req_between(core: &mut NetworkCore, src: usize, dst: usize) -> noc_core::PacketId {
        core.generate(Packet::new(
            NodeId::new(src),
            NodeId::new(dst),
            MessageClass::Request,
            1,
            0,
        ))
    }

    fn route_of(
        core: &NetworkCore,
        policy: &mut dyn RoutingPolicy,
        pkt: noc_core::PacketId,
        at: usize,
    ) -> Option<RouteDecision> {
        policy.route(
            core,
            &RouteReq::new(core, NodeId::new(at), Port::Local, 0, pkt),
        )
    }

    #[test]
    fn xy_routes_x_first() {
        let mut c = core(0, 2);
        let m = Mesh::new(4, 4);
        let pkt = req_between(&mut c, 0, 15); // (0,0) -> (3,3)
        let dec = route_of(&c, &mut DorXy, pkt, 0).unwrap();
        assert_eq!(dec.out_port, Port::Dir(Direction::East));
        // From a node in the right column, Y correction.
        let at = m.node(3, 0).index();
        let dec = route_of(&c, &mut DorXy, pkt, at).unwrap();
        assert_eq!(dec.out_port, Port::Dir(Direction::South));
    }

    #[test]
    fn yx_routes_y_first() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 0, 15);
        let dec = route_of(&c, &mut DorYx, pkt, 0).unwrap();
        assert_eq!(dec.out_port, Port::Dir(Direction::South));
    }

    #[test]
    fn arrived_packet_routes_local() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 0, 5);
        for policy in [
            &mut DorXy as &mut dyn RoutingPolicy,
            &mut DorYx,
            &mut FullyAdaptive::new(1),
            &mut WestFirst::new(1),
            &mut EscapeVcRouting::new(1),
        ] {
            let dec = route_of(&c, policy, pkt, 5).unwrap();
            assert_eq!(dec.out_port, Port::Local, "{}", policy.name());
        }
    }

    #[test]
    fn adaptive_only_picks_productive() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 5, 10); // (1,1) -> (2,2): E or S
        let mut pol = FullyAdaptive::new(3);
        for _ in 0..20 {
            let dec = route_of(&c, &mut pol, pkt, 5).unwrap();
            assert!(
                dec.out_port == Port::Dir(Direction::East)
                    || dec.out_port == Port::Dir(Direction::South)
            );
        }
    }

    #[test]
    fn adaptive_prefers_more_credits() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 5, 10);
        // Fill every VC at the East neighbour's West input port.
        let east_nbr = NodeId::new(6);
        for vc in 0..2 {
            let filler = req_between(&mut c, 0, 15);
            c.input_mut(east_nbr, Port::Dir(Direction::West).index())
                .install(vc, crate::vc::VcOccupant::reserved(filler, 1, 0));
        }
        let mut pol = FullyAdaptive::new(3);
        let dec = route_of(&c, &mut pol, pkt, 5).unwrap();
        assert_eq!(dec.out_port, Port::Dir(Direction::South));
    }

    #[test]
    fn adaptive_blocks_when_all_full() {
        let mut c = core(0, 1);
        let pkt = req_between(&mut c, 5, 10);
        for (nbr, dir) in [(6usize, Direction::West), (9, Direction::North)] {
            let filler = req_between(&mut c, 0, 15);
            c.input_mut(NodeId::new(nbr), Port::Dir(dir).index())
                .install(0, crate::vc::VcOccupant::reserved(filler, 1, 0));
        }
        let mut pol = FullyAdaptive::new(3);
        assert_eq!(route_of(&c, &mut pol, pkt, 5), None);
    }

    #[test]
    fn west_first_forces_west() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 10, 0); // (2,2) -> (0,0): W and N productive
        let mut pol = WestFirst::new(7);
        for _ in 0..10 {
            let dec = route_of(&c, &mut pol, pkt, 10).unwrap();
            assert_eq!(dec.out_port, Port::Dir(Direction::West), "west first");
        }
        // Eastbound traffic is adaptive between E and S.
        let pkt2 = req_between(&mut c, 0, 15);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let dec = route_of(&c, &mut pol, pkt2, 0).unwrap();
            seen.insert(dec.out_port);
        }
        assert!(seen.contains(&Port::Dir(Direction::East)));
        assert!(seen.contains(&Port::Dir(Direction::South)));
    }

    #[test]
    fn escape_prefers_adaptive_vcs_then_falls_back() {
        let mut c = core(6, 2);
        let pkt = req_between(&mut c, 0, 15);
        let mut pol = EscapeVcRouting::new(9);
        let dec = route_of(&c, &mut pol, pkt, 0).unwrap();
        let range = c.cfg().vc_range_for_class(MessageClass::Request.index());
        assert_eq!(dec.out_vc, range.start + 1, "adaptive VC chosen first");
        // Fill all adaptive VCs of both productive neighbours.
        for (nbr, dir) in [(1usize, Direction::West), (4, Direction::North)] {
            let filler = req_between(&mut c, 5, 15);
            c.input_mut(NodeId::new(nbr), Port::Dir(dir).index())
                .install(
                    range.start + 1,
                    crate::vc::VcOccupant::reserved(filler, 1, 0),
                );
        }
        let dec = route_of(&c, &mut pol, pkt, 0).unwrap();
        assert_eq!(dec.out_vc, range.start, "falls back to escape VC");
        assert_eq!(
            dec.out_port,
            Port::Dir(Direction::East),
            "escape uses deterministic XY"
        );
    }

    #[test]
    fn vn_isolation_respected() {
        // A Response packet must only be offered Response-VN VCs.
        let mut c = core(6, 2);
        let pkt = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(3),
            MessageClass::Response,
            5,
            0,
        ));
        let dec = route_of(&c, &mut DorXy, pkt, 0).unwrap();
        let range = c.cfg().vc_range_for_class(MessageClass::Response.index());
        assert!(range.contains(&dec.out_vc));
    }

    #[test]
    fn desired_ports_default_is_productive() {
        let mut c = core(0, 2);
        let pkt = req_between(&mut c, 5, 10);
        let pol = FullyAdaptive::new(1);
        let ports = pol.desired_ports(&c, &RouteReq::new(&c, NodeId::new(5), Port::Local, 0, pkt));
        assert_eq!(ports.len(), 2);
    }

    #[test]
    fn north_last_defers_north() {
        let mut c = core(0, 2);
        // (2,2) -> (3,0): productive {E, N}; north-last must pick E.
        let pkt = req_between(&mut c, 10, 3);
        let mut pol = NorthLast::new(3);
        for _ in 0..10 {
            let dec = route_of(&c, &mut pol, pkt, 10).unwrap();
            assert_eq!(dec.out_port, Port::Dir(Direction::East));
        }
        // Column-aligned: North is the only productive and is allowed.
        let pkt2 = req_between(&mut c, 14, 2); // (2,3) -> (2,0)
        let dec = route_of(&c, &mut pol, pkt2, 14).unwrap();
        assert_eq!(dec.out_port, Port::Dir(Direction::North));
    }

    #[test]
    fn odd_even_turn_rules() {
        let c = core(0, 2);
        let mesh = c.mesh();
        // Travelling east (arrived on the West input port) at an even
        // column: EN/ES forbidden.
        let at_even = mesh.node(2, 2);
        let dst = mesh.node(2, 0); // due north of at_even... use dst with vertical offset
        let dirs = OddEven::admissible(&c, at_even, dst, Port::Dir(Direction::West));
        assert!(
            !dirs.contains(&Direction::North),
            "EN turn must be forbidden at even column: {dirs:?}"
        );
        // Same situation at an odd column: EN allowed.
        let at_odd = mesh.node(1, 2);
        let dst2 = mesh.node(1, 0);
        let dirs = OddEven::admissible(&c, at_odd, dst2, Port::Dir(Direction::West));
        assert!(dirs.contains(&Direction::North));
        // Travelling north at an odd column: NW forbidden.
        let dst3 = mesh.node(0, 2);
        let dirs = OddEven::admissible(&c, at_odd, dst3, Port::Dir(Direction::South));
        assert!(
            !dirs.contains(&Direction::West),
            "NW turn must be forbidden at odd column: {dirs:?}"
        );
        // Injected packets are unrestricted by turn history.
        let dirs = OddEven::admissible(&c, at_odd, dst3, Port::Local);
        assert!(dirs.contains(&Direction::West));
    }

    /// The static-analysis hook must report exactly the direction sets
    /// the live policies advertise: for every `(at, in_port, dst)` on
    /// two mesh shapes, `introspect::route_set` equals the policy's
    /// `desired_ports`. This is what lets `noc-prove` build channel
    /// dependency graphs from the introspection module without drifting
    /// from the simulator.
    #[test]
    fn introspection_matches_policies_exhaustively() {
        use super::introspect::{route_set, PolicyKind};
        for (w, h) in [(4usize, 4usize), (3, 5)] {
            let mut c =
                NetworkCore::new(SimConfig::builder().mesh(w, h).vns(0).vcs_per_vn(2).build());
            let mesh = c.mesh();
            let pairs: Vec<(Box<dyn RoutingPolicy>, PolicyKind)> = vec![
                (Box::new(DorXy), PolicyKind::Xy),
                (Box::new(DorYx), PolicyKind::Yx),
                (Box::new(FullyAdaptive::new(1)), PolicyKind::FullyAdaptive),
                (Box::new(WestFirst::new(1)), PolicyKind::WestFirst),
                (Box::new(NorthLast::new(1)), PolicyKind::NorthLast),
                (Box::new(OddEven::new(1)), PolicyKind::OddEven),
            ];
            let pkt = req_between(&mut c, 0, 1);
            for (policy, kind) in &pairs {
                for at in 0..mesh.num_nodes() {
                    for dst in 0..mesh.num_nodes() {
                        // Probe every legal input port (turn history).
                        for in_port in Port::all() {
                            if let Port::Dir(d) = in_port {
                                if mesh.neighbor(NodeId::new(at), d).is_none() {
                                    continue;
                                }
                            }
                            let req = RouteReq {
                                at: NodeId::new(at),
                                in_port,
                                vc: 0,
                                pkt,
                                dst: NodeId::new(dst),
                                class: MessageClass::Request,
                            };
                            if at == dst {
                                assert!(
                                    route_set(*kind, mesh, req.at, in_port, req.dst).is_empty(),
                                    "arrived packets must have an empty route set"
                                );
                                continue;
                            }
                            let want: Vec<Port> = policy.desired_ports(&c, &req);
                            let got: Vec<Port> = route_set(*kind, mesh, req.at, in_port, req.dst)
                                .into_iter()
                                .map(Port::Dir)
                                .collect();
                            assert_eq!(
                                got,
                                want,
                                "{} at R{at} in {in_port} dst R{dst} on {w}x{h}",
                                kind.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Empirical deadlock-freedom soak for the turn-model policies: heavy
    /// adversarial traffic, a single VC, no resolution scheme — if the
    /// turn rules were wrong, the network would wedge.
    #[test]
    fn turn_models_never_wedge() {
        use crate::regular::{advance, AdvanceCtx};
        for which in ["north-last", "odd-even", "west-first"] {
            let mut c = NetworkCore::new(
                noc_core::config::SimConfig::builder()
                    .mesh(4, 4)
                    .vns(0)
                    .vcs_per_vn(1)
                    .seed(7)
                    .build(),
            );
            let mut nl = NorthLast::new(5);
            let mut oe = OddEven::new(5);
            let mut wf = WestFirst::new(5);
            let mut wl_rng = noc_core::rng::DetRng::new(11);
            let mut last_consumed = 0u64;
            let mut consumed = 0u64;
            for cycle in 0..8_000u64 {
                // Saturating random traffic.
                for src in 0..16 {
                    if wl_rng.chance(0.4) {
                        let mut dst = wl_rng.range(0, 15);
                        if dst >= src {
                            dst += 1;
                        }
                        c.generate(Packet::new(
                            NodeId::new(src),
                            NodeId::new(dst),
                            MessageClass::Request,
                            1 + 4 * (wl_rng.chance(0.5) as u8),
                            cycle,
                        ));
                    }
                }
                let pol: &mut dyn RoutingPolicy = match which {
                    "north-last" => &mut nl,
                    "odd-even" => &mut oe,
                    _ => &mut wf,
                };
                advance(&mut c, pol, &AdvanceCtx::default());
                let now = c.cycle();
                for n in c.mesh().nodes() {
                    if c.ni(n).ej_consumable(MessageClass::Request, now).is_some() {
                        let e = c.ni_mut(n).pop_ej(MessageClass::Request).unwrap();
                        c.store.remove(e.pkt);
                        consumed += 1;
                        last_consumed = now;
                    }
                }
                c.advance_cycle();
            }
            assert!(consumed > 1_000, "{which}: too little delivered");
            assert!(
                c.cycle() - last_consumed < 500,
                "{which} wedged: no consumption for {} cycles",
                c.cycle() - last_consumed
            );
        }
    }
}
