//! Network interfaces: injection/ejection queues, sources and MSHRs.
//!
//! Following Fig. 6 of the paper, each NI keeps **one queue per message
//! class** on both the injection and ejection side, even in 0-VN
//! configurations. In front of the finite injection queues sits an
//! unbounded *source queue* (the open-loop traffic source / the core's
//! outstanding-miss machinery); behind the ejection queues sits the
//! consumer (the core / directory), modelled by the engine.
//!
//! The NI also owns the machinery for the paper's *dynamic bubble*
//! (§III-C4): the request injection queue is the only place packets are
//! ever dropped from, and dropped requests are regenerated from MSHR
//! state after a local re-issue delay.

use noc_core::packet::{MessageClass, PacketId, NUM_CLASSES};
use std::collections::VecDeque;

/// An entry waiting in an ejection queue: the packet and the cycle from
/// which the consumer may take it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EjectEntry {
    /// The delivered packet.
    pub pkt: PacketId,
    /// Earliest cycle the NI consumer may pop it.
    pub ready: u64,
}

/// An in-progress injection transfer from the NI into the router's local
/// input port (one flit per cycle over the injection link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjStream {
    /// Packet being streamed.
    pub pkt: PacketId,
    /// Destination VC at the router's local input port.
    pub vc: usize,
    /// Flits already pushed across the injection link.
    pub flits_sent: u8,
    /// Total flits.
    pub len: u8,
}

/// Why an ejection queue refuses a packet right now (the trace
/// subsystem maps these onto stall causes; see
/// [`NiState::ej_refusal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EjRefusal {
    /// No free slot at all (queue + in-flight streams exhaust capacity).
    Full,
    /// Exactly one slot is free but it is reserved for a rejected
    /// FastPass-Packet (§III-C4), and this packet is not the owner.
    Reserved,
}

/// Per-node network interface state.
#[derive(Debug, Clone)]
pub struct NiState {
    /// Unbounded open-loop source queues, one per class. Packets wait
    /// here before there is room in the finite injection queue; source
    /// queueing time counts toward packet latency (standard open-loop
    /// methodology).
    source: [VecDeque<PacketId>; NUM_CLASSES],
    /// Finite per-class injection queues (the buffers a FastPass prime
    /// router scans first, and the only droppable buffers).
    inj: [VecDeque<PacketId>; NUM_CLASSES],
    /// Finite per-class ejection queues.
    ej: [VecDeque<EjectEntry>; NUM_CLASSES],
    /// Ejection-queue slots pro-actively reserved for a rejected
    /// FastPass-Packet (§III-C4): while set, no other packet may take the
    /// last slot of that class's queue.
    ej_reserved: [Option<PacketId>; NUM_CLASSES],
    /// Packets currently streaming into each ejection queue (their slot
    /// is claimed from the first flit, committed at the tail).
    ej_inflight: [u8; NUM_CLASSES],
    /// Active injection transfer, if any.
    pub inj_stream: Option<InjStream>,
    /// Dropped requests awaiting MSHR regeneration: `(pkt, ready_cycle)`.
    regen: Vec<(PacketId, u64)>,
    inj_cap: usize,
    ej_cap: usize,
    /// Packets across all source/injection/regen queues, maintained
    /// incrementally so [`has_work`](Self::has_work) is O(1) — it runs
    /// for every node every cycle in the active-set snapshot.
    inj_items: u32,
    /// Entries across all ejection queues, maintained incrementally so
    /// [`ej_any`](Self::ej_any) is O(1) in the consumption loop.
    ej_items: u32,
    /// Packets across the source queues only, so
    /// [`refill_inj`](Self::refill_inj) — called for every active node
    /// every cycle — can exit in O(1) when the sources are dry (the
    /// common case for nodes that are active only because packets are
    /// transiting their router).
    src_items: u32,
    /// Bit `c` set iff ejection queue `c` is nonempty, so the consumer
    /// loop visits only classes with something to deliver instead of all
    /// [`NUM_CLASSES`] every cycle.
    ej_class_mask: u8,
}

impl NiState {
    /// Creates an NI with the given per-class queue capacities (packets).
    pub fn new(inj_cap: usize, ej_cap: usize) -> Self {
        NiState {
            source: Default::default(),
            inj: Default::default(),
            ej: Default::default(),
            ej_reserved: [None; NUM_CLASSES],
            ej_inflight: [0; NUM_CLASSES],
            inj_stream: None,
            regen: Vec::new(),
            inj_cap,
            ej_cap,
            inj_items: 0,
            ej_items: 0,
            src_items: 0,
            ej_class_mask: 0,
        }
    }

    // ---- source side -------------------------------------------------

    /// Enqueues a freshly generated packet at the source.
    pub fn push_source(&mut self, class: MessageClass, pkt: PacketId) {
        self.source[class.index()].push_back(pkt);
        self.inj_items += 1;
        self.src_items += 1;
    }

    /// Enqueues a regenerated packet at the *front* of its source queue
    /// (it logically predates everything behind it).
    pub fn push_source_front(&mut self, class: MessageClass, pkt: PacketId) {
        self.source[class.index()].push_front(pkt);
        self.inj_items += 1;
        self.src_items += 1;
    }

    /// Total packets waiting in source queues (congestion signal).
    pub fn source_depth(&self) -> usize {
        debug_assert_eq!(
            self.src_items as usize,
            self.source.iter().map(|q| q.len()).sum::<usize>(),
            "src_items counter out of sync with source queues"
        );
        self.src_items as usize
    }

    /// Moves packets from source queues into injection queues while there
    /// is room. Returns how many were moved.
    pub fn refill_inj(&mut self) -> usize {
        if self.src_items == 0 {
            return 0;
        }
        let mut moved = 0;
        for c in 0..NUM_CLASSES {
            while self.inj[c].len() < self.inj_cap {
                match self.source[c].pop_front() {
                    Some(p) => {
                        self.inj[c].push_back(p);
                        moved += 1;
                    }
                    None => break,
                }
            }
        }
        self.src_items -= moved as u32;
        moved
    }

    // ---- injection side ----------------------------------------------

    /// Head packet of a class's injection queue.
    pub fn inj_head(&self, class: MessageClass) -> Option<PacketId> {
        self.inj[class.index()].front().copied()
    }

    /// Pops the head of a class's injection queue.
    pub fn pop_inj(&mut self, class: MessageClass) -> Option<PacketId> {
        let p = self.inj[class.index()].pop_front();
        self.inj_items -= p.is_some() as u32;
        p
    }

    /// Whether a class's injection queue is full.
    pub fn inj_full(&self, class: MessageClass) -> bool {
        self.inj[class.index()].len() >= self.inj_cap
    }

    /// Occupancy of a class's injection queue.
    pub fn inj_len(&self, class: MessageClass) -> usize {
        self.inj[class.index()].len()
    }

    /// Pushes a rejected FastPass-Packet into the *front* of the request
    /// injection queue (it becomes the first packet the prime re-examines,
    /// §Qn2). Callers normally make room first via
    /// [`drop_inj_tail`](Self::drop_inj_tail); if no droppable victim
    /// exists the push still succeeds — the transient extra entry models
    /// the prime router's bypass latch (the green path of Fig. 6, which
    /// lets a rejected packet wait outside the queue proper). The queue
    /// refuses new refills while over capacity, so the overflow drains.
    pub fn park_rejected(&mut self, class: MessageClass, pkt: PacketId) {
        self.inj[class.index()].push_front(pkt);
        self.inj_items += 1;
    }

    /// Drops the newest packet from a class's injection queue to make a
    /// bubble (§III-C4). Returns the victim, to be registered for MSHR
    /// regeneration by the caller.
    pub fn drop_inj_tail(&mut self, class: MessageClass) -> Option<PacketId> {
        let p = self.inj[class.index()].pop_back();
        self.inj_items -= p.is_some() as u32;
        p
    }

    /// Removes and returns the packet at `idx` (0 = front) of a class's
    /// injection queue. Used by the dynamic bubble to drop the newest
    /// *droppable* request (never a previously rejected FastPass-Packet,
    /// §Qn2).
    pub fn remove_inj_at(&mut self, class: MessageClass, idx: usize) -> Option<PacketId> {
        let p = self.inj[class.index()].remove(idx);
        self.inj_items -= p.is_some() as u32;
        p
    }

    /// Iterates a class's injection queue front-to-back.
    pub fn inj_iter(&self, class: MessageClass) -> impl Iterator<Item = PacketId> + '_ {
        self.inj[class.index()].iter().copied()
    }

    /// Iterates a class's source queue front-to-back (state export for
    /// the model checker; the queue is unbounded, order is behavioural).
    pub fn source_iter(&self, class: MessageClass) -> impl Iterator<Item = PacketId> + '_ {
        self.source[class.index()].iter().copied()
    }

    /// Iterates the pending MSHR regenerations as `(packet, ready_cycle)`
    /// in registration order.
    pub fn regen_iter(&self) -> impl Iterator<Item = (PacketId, u64)> + '_ {
        self.regen.iter().copied()
    }

    /// Registers a dropped request for regeneration at `ready_cycle`.
    pub fn schedule_regen(&mut self, pkt: PacketId, ready_cycle: u64) {
        self.regen.push((pkt, ready_cycle));
        self.inj_items += 1;
    }

    /// Takes all regenerated packets whose re-issue delay has elapsed.
    pub fn take_regenerated(&mut self, now: u64) -> Vec<PacketId> {
        let mut out = Vec::new();
        self.regen.retain(|&(p, ready)| {
            if ready <= now {
                out.push(p);
                false
            } else {
                true
            }
        });
        self.inj_items -= out.len() as u32;
        out
    }

    /// Packets currently awaiting regeneration.
    pub fn regen_pending(&self) -> usize {
        self.regen.len()
    }

    // ---- ejection side -----------------------------------------------

    /// Whether a class's ejection queue can accept `pkt` right now,
    /// honouring reservations (a reserved slot is only usable by the
    /// packet it is reserved for) and slots claimed by in-flight ejection
    /// streams.
    pub fn ej_can_accept(&self, class: MessageClass, pkt: PacketId) -> bool {
        let c = class.index();
        let free = self
            .ej_cap
            .saturating_sub(self.ej[c].len() + self.ej_inflight[c] as usize);
        match self.ej_reserved[c] {
            Some(owner) if owner == pkt => free >= 1,
            Some(_) => free >= 2,
            None => free >= 1,
        }
    }

    /// Classifies why [`ej_can_accept`](Self::ej_can_accept) is false
    /// for `(class, pkt)` — `None` means the packet would be accepted.
    /// Pure observation for stall attribution; computes the same
    /// free-slot arithmetic as the admission check.
    pub fn ej_refusal(&self, class: MessageClass, pkt: PacketId) -> Option<EjRefusal> {
        if self.ej_can_accept(class, pkt) {
            return None;
        }
        let c = class.index();
        let free = self
            .ej_cap
            .saturating_sub(self.ej[c].len() + self.ej_inflight[c] as usize);
        match self.ej_reserved[c] {
            // A reservation held by someone else is only the binding
            // refusal when a slot actually exists for the owner.
            Some(owner) if owner != pkt && free >= 1 => Some(EjRefusal::Reserved),
            _ => Some(EjRefusal::Full),
        }
    }

    /// Claims an ejection slot for a packet whose first flit is about to
    /// leave the network (the slot is held until [`ej_commit`] or
    /// [`ej_abort`]).
    ///
    /// [`ej_commit`]: Self::ej_commit
    /// [`ej_abort`]: Self::ej_abort
    ///
    /// # Panics
    ///
    /// Panics if [`ej_can_accept`](Self::ej_can_accept) is false —
    /// admission must be checked before the head flit is granted.
    pub fn ej_begin(&mut self, class: MessageClass, pkt: PacketId) {
        assert!(self.ej_can_accept(class, pkt), "ejection queue overflow");
        self.ej_inflight[class.index()] += 1;
    }

    /// Commits a claimed slot: the tail flit arrived, the packet enters
    /// the queue. Clears the class reservation if this packet held it.
    ///
    /// # Panics
    ///
    /// Panics if no slot was claimed via [`ej_begin`](Self::ej_begin).
    pub fn ej_commit(&mut self, class: MessageClass, entry: EjectEntry) {
        let c = class.index();
        assert!(self.ej_inflight[c] > 0, "ej_commit without ej_begin");
        self.ej_inflight[c] -= 1;
        if self.ej_reserved[c] == Some(entry.pkt) {
            self.ej_reserved[c] = None;
        }
        self.ej[c].push_back(entry);
        self.ej_items += 1;
        self.ej_class_mask |= 1 << c;
    }

    /// Releases a claimed slot without delivering (unused by the regular
    /// pipeline, available to schemes that abandon an ejection).
    ///
    /// # Panics
    ///
    /// Panics if no slot was claimed.
    pub fn ej_abort(&mut self, class: MessageClass) {
        let c = class.index();
        assert!(self.ej_inflight[c] > 0, "ej_abort without ej_begin");
        self.ej_inflight[c] -= 1;
    }

    /// Reserves the next free slot of a class's ejection queue for a
    /// rejected FastPass-Packet (§III-C4). Idempotent for the same owner.
    ///
    /// # Panics
    ///
    /// Panics if a *different* packet already holds the reservation —
    /// the paper guarantees at most one outstanding rejected packet per
    /// (destination, class).
    pub fn reserve_ej(&mut self, class: MessageClass, pkt: PacketId) {
        let c = class.index();
        match self.ej_reserved[c] {
            None => self.ej_reserved[c] = Some(pkt),
            Some(owner) => assert_eq!(owner, pkt, "conflicting ejection reservation"),
        }
    }

    /// Current reservation holder for a class, if any.
    pub fn ej_reservation(&self, class: MessageClass) -> Option<PacketId> {
        self.ej_reserved[class.index()]
    }

    /// Whether any class's ejection queue holds at least one entry — the
    /// consumption loop's fast path for skipping NIs with nothing to
    /// deliver.
    pub fn ej_any(&self) -> bool {
        self.ej_items != 0
    }

    /// Head of a class's ejection queue if its ready time has passed.
    pub fn ej_consumable(&self, class: MessageClass, now: u64) -> Option<PacketId> {
        self.ej[class.index()]
            .front()
            .filter(|e| e.ready <= now)
            .map(|e| e.pkt)
    }

    /// Pops the head of a class's ejection queue (the consumer took it).
    pub fn pop_ej(&mut self, class: MessageClass) -> Option<EjectEntry> {
        let c = class.index();
        let e = self.ej[c].pop_front();
        self.ej_items -= e.is_some() as u32;
        if self.ej[c].is_empty() {
            self.ej_class_mask &= !(1 << c);
        }
        e
    }

    /// Bitmask of classes whose ejection queues are nonempty (bit `c` ↔
    /// class index `c`), for consumers that want to skip empty queues.
    pub fn ej_classes(&self) -> u8 {
        self.ej_class_mask
    }

    /// Occupancy of a class's ejection queue.
    pub fn ej_len(&self, class: MessageClass) -> usize {
        self.ej[class.index()].len()
    }

    /// Iterates a class's ejection queue front-to-back (state export).
    pub fn ej_iter(&self, class: MessageClass) -> impl Iterator<Item = EjectEntry> + '_ {
        self.ej[class.index()].iter().copied()
    }

    /// Slots of a class's ejection queue claimed by in-flight ejection
    /// streams.
    pub fn ej_inflight(&self, class: MessageClass) -> usize {
        self.ej_inflight[class.index()] as usize
    }

    /// Whether this NI has any injection-side work for the regular
    /// pipeline this cycle: an active injection stream, pending MSHR
    /// regenerations, or packets waiting in source/injection queues.
    /// This is the NI half of the active-set predicate used by the cycle
    /// loop to skip idle nodes; ejection queues are deliberately excluded
    /// (draining them is the consumer's job, not the pipeline's).
    pub fn has_work(&self) -> bool {
        debug_assert_eq!(
            self.inj_items as usize,
            self.source.iter().map(|q| q.len()).sum::<usize>()
                + self.inj.iter().map(|q| q.len()).sum::<usize>()
                + self.regen.len(),
            "inj_items counter out of sync with queue contents"
        );
        self.inj_stream.is_some() || self.inj_items != 0
    }

    /// Total packets resident anywhere in this NI (conservation checks).
    ///
    /// A packet mid-injection (`inj_stream`) is *not* counted: it already
    /// occupies the router's local input VC, which the router counts.
    pub fn resident_packets(&self) -> usize {
        self.source.iter().map(|q| q.len()).sum::<usize>()
            + self.inj.iter().map(|q| q.len()).sum::<usize>()
            + self.ej.iter().map(|q| q.len()).sum::<usize>()
            + self.regen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{Packet, PacketStore};
    use noc_core::topology::NodeId;

    fn pkt(store: &mut PacketStore, class: MessageClass) -> PacketId {
        store.insert(Packet::new(NodeId::new(0), NodeId::new(1), class, 1, 0))
    }

    #[test]
    fn source_to_inj_refill_respects_capacity() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 2);
        for _ in 0..5 {
            let p = pkt(&mut store, MessageClass::Request);
            ni.push_source(MessageClass::Request, p);
        }
        assert_eq!(ni.refill_inj(), 2);
        assert!(ni.inj_full(MessageClass::Request));
        assert_eq!(ni.source_depth(), 3);
        // Popping one makes room for exactly one more.
        ni.pop_inj(MessageClass::Request);
        assert_eq!(ni.refill_inj(), 1);
    }

    #[test]
    fn regenerated_packets_jump_the_source_queue() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(4, 4);
        let a = pkt(&mut store, MessageClass::Request);
        let b = pkt(&mut store, MessageClass::Request);
        ni.push_source(MessageClass::Request, a);
        ni.push_source_front(MessageClass::Request, b);
        ni.refill_inj();
        assert_eq!(ni.pop_inj(MessageClass::Request), Some(b));
        assert_eq!(ni.pop_inj(MessageClass::Request), Some(a));
    }

    #[test]
    fn dynamic_bubble_drop_and_park() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 2);
        let a = pkt(&mut store, MessageClass::Request);
        let b = pkt(&mut store, MessageClass::Request);
        ni.push_source(MessageClass::Request, a);
        ni.push_source(MessageClass::Request, b);
        ni.refill_inj();
        assert!(ni.inj_full(MessageClass::Request));
        // The *newest* injection request (b) is the drop victim.
        let victim = ni.drop_inj_tail(MessageClass::Request).unwrap();
        assert_eq!(victim, b);
        let rejected = pkt(&mut store, MessageClass::Request);
        ni.park_rejected(MessageClass::Request, rejected);
        // The rejected packet is at the *front*: first to be re-examined.
        assert_eq!(ni.inj_head(MessageClass::Request), Some(rejected));
        // Regeneration round-trip.
        ni.schedule_regen(victim, 100);
        assert!(ni.take_regenerated(99).is_empty());
        assert_eq!(ni.take_regenerated(100), vec![victim]);
        assert_eq!(ni.regen_pending(), 0);
    }

    #[test]
    fn park_overflow_uses_bypass_latch_and_blocks_refill() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(1, 1);
        let a = pkt(&mut store, MessageClass::Request);
        ni.push_source(MessageClass::Request, a);
        ni.refill_inj();
        let r = pkt(&mut store, MessageClass::Request);
        // No droppable victim scenario: park still succeeds (green path).
        ni.park_rejected(MessageClass::Request, r);
        assert_eq!(ni.inj_head(MessageClass::Request), Some(r));
        assert_eq!(ni.inj_len(MessageClass::Request), 2);
        // Over capacity: refill refuses to add more.
        let b = pkt(&mut store, MessageClass::Request);
        ni.push_source(MessageClass::Request, b);
        assert_eq!(ni.refill_inj(), 0);
    }

    #[test]
    fn remove_inj_at_picks_victims_precisely() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(3, 1);
        let ids: Vec<_> = (0..3)
            .map(|_| {
                let p = pkt(&mut store, MessageClass::Request);
                ni.push_source(MessageClass::Request, p);
                p
            })
            .collect();
        ni.refill_inj();
        let order: Vec<_> = ni.inj_iter(MessageClass::Request).collect();
        assert_eq!(order, ids);
        let victim = ni.remove_inj_at(MessageClass::Request, 1).unwrap();
        assert_eq!(victim, ids[1]);
        let order: Vec<_> = ni.inj_iter(MessageClass::Request).collect();
        assert_eq!(order, vec![ids[0], ids[2]]);
    }

    #[test]
    fn ejection_reservation_blocks_others() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 2);
        let owner = pkt(&mut store, MessageClass::Response);
        let other = pkt(&mut store, MessageClass::Response);
        let third = pkt(&mut store, MessageClass::Response);
        ni.reserve_ej(MessageClass::Response, owner);
        // One slot is held back for the owner; others may use the rest.
        assert!(ni.ej_can_accept(MessageClass::Response, other));
        ni.ej_begin(MessageClass::Response, other);
        ni.ej_commit(
            MessageClass::Response,
            EjectEntry {
                pkt: other,
                ready: 0,
            },
        );
        assert!(!ni.ej_can_accept(MessageClass::Response, third));
        assert!(ni.ej_can_accept(MessageClass::Response, owner));
        ni.ej_begin(MessageClass::Response, owner);
        ni.ej_commit(
            MessageClass::Response,
            EjectEntry {
                pkt: owner,
                ready: 0,
            },
        );
        // Reservation cleared once the owner landed.
        assert_eq!(ni.ej_reservation(MessageClass::Response), None);
    }

    #[test]
    fn inflight_ejections_claim_slots() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 1);
        let a = pkt(&mut store, MessageClass::Response);
        let b = pkt(&mut store, MessageClass::Response);
        ni.ej_begin(MessageClass::Response, a);
        // The single slot is claimed: nobody else may start.
        assert!(!ni.ej_can_accept(MessageClass::Response, b));
        ni.ej_abort(MessageClass::Response);
        assert!(ni.ej_can_accept(MessageClass::Response, b));
    }

    #[test]
    fn ejection_ready_time_gates_consumption() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 2);
        let p = pkt(&mut store, MessageClass::Response);
        ni.ej_begin(MessageClass::Response, p);
        ni.ej_commit(MessageClass::Response, EjectEntry { pkt: p, ready: 10 });
        assert_eq!(ni.ej_consumable(MessageClass::Response, 9), None);
        assert_eq!(ni.ej_consumable(MessageClass::Response, 10), Some(p));
        assert_eq!(ni.pop_ej(MessageClass::Response).unwrap().pkt, p);
        assert_eq!(ni.ej_len(MessageClass::Response), 0);
    }

    #[test]
    fn per_class_queues_are_independent() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(1, 1);
        let req = pkt(&mut store, MessageClass::Request);
        let resp = pkt(&mut store, MessageClass::Response);
        ni.push_source(MessageClass::Request, req);
        ni.push_source(MessageClass::Response, resp);
        ni.refill_inj();
        assert!(ni.inj_full(MessageClass::Request));
        assert!(ni.inj_full(MessageClass::Response));
        assert_eq!(ni.inj_head(MessageClass::Request), Some(req));
        assert_eq!(ni.inj_head(MessageClass::Response), Some(resp));
        assert_eq!(ni.resident_packets(), 2);
    }

    #[test]
    fn ej_refusal_classifies_full_vs_reserved() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(2, 2);
        let owner = pkt(&mut store, MessageClass::Response);
        let other = pkt(&mut store, MessageClass::Response);
        // Empty queue: accepted, no refusal.
        assert_eq!(ni.ej_refusal(MessageClass::Response, other), None);
        // One slot taken, the other reserved for `owner`: a stranger is
        // refused because of the reservation, the owner is accepted.
        ni.ej_begin(MessageClass::Response, other);
        ni.ej_commit(
            MessageClass::Response,
            EjectEntry {
                pkt: other,
                ready: 0,
            },
        );
        ni.reserve_ej(MessageClass::Response, owner);
        let third = pkt(&mut store, MessageClass::Response);
        assert_eq!(
            ni.ej_refusal(MessageClass::Response, third),
            Some(EjRefusal::Reserved)
        );
        assert_eq!(ni.ej_refusal(MessageClass::Response, owner), None);
        // Fill the reserved slot with the owner: now genuinely full.
        ni.ej_begin(MessageClass::Response, owner);
        ni.ej_commit(
            MessageClass::Response,
            EjectEntry {
                pkt: owner,
                ready: 0,
            },
        );
        assert_eq!(
            ni.ej_refusal(MessageClass::Response, third),
            Some(EjRefusal::Full)
        );
    }

    #[test]
    #[should_panic(expected = "conflicting ejection reservation")]
    fn conflicting_reservation_panics() {
        let mut store = PacketStore::new();
        let mut ni = NiState::new(1, 1);
        let a = pkt(&mut store, MessageClass::Response);
        let b = pkt(&mut store, MessageClass::Response);
        ni.reserve_ej(MessageClass::Response, a);
        ni.reserve_ej(MessageClass::Response, b);
    }
}
