//! Round-robin arbitration.

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// Round-robin is the paper's arbitration policy both for switch
/// allocation in regular routers and for the prime router's scan over
/// input buffers (§III-C2).
///
/// # Example
///
/// ```
/// use noc_sim::arbiter::RoundRobin;
/// let mut rr = RoundRobin::new(4);
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(0));
/// // Priority rotates past the winner.
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(1));
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    next: usize,
    n: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requesters with priority starting at 0.
    pub fn new(n: usize) -> Self {
        RoundRobin { next: 0, n }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requesters (degenerate).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants the highest-priority asserted request and rotates priority
    /// just past the winner. Returns `None` when nothing is requested.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        let winner = self.peek(requests)?;
        // `winner < n`, so the rotation wraps exactly when the last
        // requester wins — a compare, not a runtime modulo.
        self.next = if winner + 1 == self.n { 0 } else { winner + 1 };
        Some(winner)
    }

    /// Like [`grant`](Self::grant) but without rotating the priority.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        (0..self.n)
            .map(|k| (self.next + k) % self.n)
            .find(|&i| requests[i])
    }

    /// Word-level [`grant`](Self::grant): the request vector is a bitmask
    /// (`words[i / 64] >> (i % 64) & 1` is requester `i`), as produced by
    /// the arena's occupancy words. Semantically identical to `grant`
    /// over the expanded bool slice — same winner, same rotation, no
    /// rotation when nothing is requested.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `ceil(n / 64)` words. Bits at
    /// positions `>= n` must be clear.
    pub fn grant_words(&mut self, words: &[u64]) -> Option<usize> {
        let winner = self.peek_words(words)?;
        self.next = if winner + 1 == self.n { 0 } else { winner + 1 };
        Some(winner)
    }

    /// Like [`grant_words`](Self::grant_words) but without rotating the
    /// priority.
    pub fn peek_words(&self, words: &[u64]) -> Option<usize> {
        assert_eq!(
            words.len(),
            self.n.div_ceil(64),
            "request vector width mismatch"
        );
        if self.n == 0 {
            return None;
        }
        let (start_w, start_b) = (self.next / 64, self.next % 64);
        // Requesters at or above the priority pointer, lowest first: the
        // tail of the pointer's word, then every later word.
        let hi = words[start_w] & (!0u64 << start_b);
        if hi != 0 {
            return Some(start_w * 64 + hi.trailing_zeros() as usize);
        }
        for (i, &w) in words.iter().enumerate().skip(start_w + 1) {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        // Wrap: words below the pointer's word, then the bits below the
        // pointer within its own word.
        for (i, &w) in words.iter().enumerate().take(start_w) {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        let lo = if start_b == 0 {
            0
        } else {
            words[start_w] & ((1u64 << start_b) - 1)
        };
        if lo != 0 {
            return Some(start_w * 64 + lo.trailing_zeros() as usize);
        }
        None
    }

    /// Current priority position (the requester checked first).
    pub fn priority(&self) -> usize {
        self.next
    }

    /// Forces the priority position (used by schemes that reset scan
    /// order, e.g. the prime router always starting at the request
    /// injection queue, §Qn2).
    pub fn set_priority(&mut self, p: usize) {
        self.next = if self.n == 0 { 0 } else { p % self.n };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_nothing_when_idle() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.grant(&[false, false, false]), None);
        assert_eq!(rr.priority(), 0, "no rotation on idle");
    }

    #[test]
    fn rotates_fairly() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        let seq: Vec<_> = (0..6).map(|_| rr.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(&[false, false, true, false]), Some(2));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(0));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(2));
    }

    #[test]
    fn fairness_under_sustained_load() {
        let mut rr = RoundRobin::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..1000 {
            let w = rr.grant(&[true; 5]).unwrap();
            counts[w] += 1;
        }
        assert!(counts.iter().all(|&c| c == 200), "{counts:?}");
    }

    #[test]
    fn peek_does_not_rotate() {
        let rr = RoundRobin::new(3);
        assert_eq!(rr.peek(&[false, true, true]), Some(1));
        assert_eq!(rr.peek(&[false, true, true]), Some(1));
    }

    #[test]
    fn set_priority_wraps() {
        let mut rr = RoundRobin::new(4);
        rr.set_priority(6);
        assert_eq!(rr.priority(), 2);
        assert_eq!(rr.grant(&[true, true, true, true]), Some(2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut rr = RoundRobin::new(2);
        let _ = rr.grant(&[true]);
    }

    fn pack(bools: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; bools.len().div_ceil(64)];
        for (i, &b) in bools.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    #[test]
    fn grant_words_matches_grant_bitwise() {
        // Exhaustive-ish cross-check at widths straddling word
        // boundaries: both arbiters must agree on every winner and on the
        // priority pointer after every step, including idle steps.
        for n in [1usize, 3, 60, 64, 65, 128, 320] {
            let mut a = RoundRobin::new(n);
            let mut b = RoundRobin::new(n);
            // Deterministic pseudo-request pattern (xorshift, fixed seed).
            let mut s: u64 = 0x9E37_79B9_7F4A_7C15 ^ n as u64;
            for step in 0..200 {
                let reqs: Vec<bool> = (0..n)
                    .map(|i| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        // Mix sparse, dense and empty vectors.
                        (s >> (i % 64)) & 0b11 == (step % 4) as u64
                    })
                    .collect();
                let words = pack(&reqs);
                assert_eq!(
                    a.grant(&reqs),
                    b.grant_words(&words),
                    "winner diverged at n={n} step={step}"
                );
                assert_eq!(a.priority(), b.priority(), "pointer diverged at n={n}");
            }
        }
    }

    #[test]
    fn grant_words_wraps_below_pointer() {
        let mut rr = RoundRobin::new(130);
        rr.set_priority(100);
        // Only requester 3 (below the pointer, in an earlier word).
        let mut words = vec![0u64; 3];
        words[0] = 1 << 3;
        assert_eq!(rr.grant_words(&words), Some(3));
        assert_eq!(rr.priority(), 4);
    }

    #[test]
    fn grant_words_no_rotation_when_idle() {
        let mut rr = RoundRobin::new(70);
        rr.set_priority(5);
        assert_eq!(rr.grant_words(&[0, 0]), None);
        assert_eq!(rr.priority(), 5, "no rotation on idle");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn grant_words_width_mismatch_panics() {
        let mut rr = RoundRobin::new(65);
        let _ = rr.grant_words(&[0]);
    }
}
