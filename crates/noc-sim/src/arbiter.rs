//! Round-robin arbitration.

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// Round-robin is the paper's arbitration policy both for switch
/// allocation in regular routers and for the prime router's scan over
/// input buffers (§III-C2).
///
/// # Example
///
/// ```
/// use noc_sim::arbiter::RoundRobin;
/// let mut rr = RoundRobin::new(4);
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(0));
/// // Priority rotates past the winner.
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(1));
/// assert_eq!(rr.grant(&[true, true, false, false]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    next: usize,
    n: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requesters with priority starting at 0.
    pub fn new(n: usize) -> Self {
        RoundRobin { next: 0, n }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requesters (degenerate).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants the highest-priority asserted request and rotates priority
    /// just past the winner. Returns `None` when nothing is requested.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        let winner = self.peek(requests)?;
        self.next = (winner + 1) % self.n.max(1);
        Some(winner)
    }

    /// Like [`grant`](Self::grant) but without rotating the priority.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        (0..self.n)
            .map(|k| (self.next + k) % self.n)
            .find(|&i| requests[i])
    }

    /// Current priority position (the requester checked first).
    pub fn priority(&self) -> usize {
        self.next
    }

    /// Forces the priority position (used by schemes that reset scan
    /// order, e.g. the prime router always starting at the request
    /// injection queue, §Qn2).
    pub fn set_priority(&mut self, p: usize) {
        self.next = if self.n == 0 { 0 } else { p % self.n };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_nothing_when_idle() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.grant(&[false, false, false]), None);
        assert_eq!(rr.priority(), 0, "no rotation on idle");
    }

    #[test]
    fn rotates_fairly() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        let seq: Vec<_> = (0..6).map(|_| rr.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(&[false, false, true, false]), Some(2));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(0));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(2));
    }

    #[test]
    fn fairness_under_sustained_load() {
        let mut rr = RoundRobin::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..1000 {
            let w = rr.grant(&[true; 5]).unwrap();
            counts[w] += 1;
        }
        assert!(counts.iter().all(|&c| c == 200), "{counts:?}");
    }

    #[test]
    fn peek_does_not_rotate() {
        let rr = RoundRobin::new(3);
        assert_eq!(rr.peek(&[false, true, true]), Some(1));
        assert_eq!(rr.peek(&[false, true, true]), Some(1));
    }

    #[test]
    fn set_priority_wraps() {
        let mut rr = RoundRobin::new(4);
        rr.set_priority(6);
        assert_eq!(rr.priority(), 2);
        assert_eq!(rr.grant(&[true, true, true, true]), Some(2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut rr = RoundRobin::new(2);
        let _ = rr.grant(&[true]);
    }
}
