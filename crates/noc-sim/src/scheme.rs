//! The [`Scheme`] trait: how flow-control schemes plug into the substrate.

use crate::network::NetworkCore;
use noc_core::packet::PacketId;

/// One item of a scheme's exported overlay state (see
/// [`Scheme::export_state`]).
///
/// Packet references are tagged so an external observer can rename ids
/// into a canonical space; plain words are folded in verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportItem {
    /// An opaque state word (counters, pointers, phases, timers).
    Word(u64),
    /// A reference to a live packet.
    Pkt(PacketId),
    /// An explicitly absent packet slot (`Option::None` in scheme state).
    NoPkt,
}

/// Collector for a scheme's overlay-state digest.
///
/// Schemes push their behaviour-relevant private state (flight tables,
/// pit contents, deflection flits, arbitration pointers…) in a fixed,
/// deterministic order. The model checker folds the items into its
/// canonical state so two network states that differ only in hidden
/// scheme state are never wrongly merged. Timestamps should be exported
/// *relative* to the current cycle (and saturated) so that states
/// reached at different absolute cycles can still canonicalize equal.
#[derive(Debug, Default, Clone)]
pub struct StateExport {
    items: Vec<ExportItem>,
}

impl StateExport {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an opaque state word.
    pub fn word(&mut self, w: u64) {
        self.items.push(ExportItem::Word(w));
    }

    /// Appends a packet reference.
    pub fn pkt(&mut self, p: PacketId) {
        self.items.push(ExportItem::Pkt(p));
    }

    /// Appends an optional packet reference.
    pub fn opt_pkt(&mut self, p: Option<PacketId>) {
        self.items.push(match p {
            Some(p) => ExportItem::Pkt(p),
            None => ExportItem::NoPkt,
        });
    }

    /// The collected items, in push order.
    pub fn items(&self) -> &[ExportItem] {
        &self.items
    }

    /// Number of collected items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Qualitative properties of a deadlock-freedom solution, reproducing the
/// columns of Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeProperties {
    /// Needs no deadlock detection circuit.
    pub no_detection: bool,
    /// Free of protocol-level deadlock without relying on VNs.
    pub protocol_deadlock_freedom: bool,
    /// Free of network-level deadlock.
    pub network_deadlock_freedom: bool,
    /// Routing retains full (minimal) path diversity.
    pub full_path_diversity: bool,
    /// Delivers high throughput at saturation.
    pub high_throughput: bool,
    /// Low buffering cost (no VNs / few VCs).
    pub low_power: bool,
    /// Resolution cost does not grow with network size.
    pub scalable: bool,
    /// Never misroutes packets.
    pub no_misrouting: bool,
}

/// A flow-control scheme: FastPass or one of the baselines.
///
/// A scheme owns whatever overlay state it needs (TDM schedules, flights,
/// probes, tokens…) and advances the whole network exactly one cycle per
/// [`step`](Scheme::step) call, typically by doing its own bookkeeping and
/// then delegating to [`regular::advance`](crate::regular::advance).
///
/// Schemes must be [`Send`]: the bench harness fans independent
/// simulations out across worker threads, moving each `Box<dyn Scheme>`
/// onto the thread that runs it. Keep scheme state in owned containers
/// (no `Rc`, no thread-local interior mutability) — see DESIGN.md's
/// scheme-author checklist.
pub trait Scheme: Send {
    /// Display name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Table I row for this scheme.
    fn properties(&self) -> SchemeProperties;

    /// Number of virtual networks the scheme requires for protocol-level
    /// deadlock freedom (0 for FastPass and Pitstop, 6 for the rest).
    fn required_vns(&self) -> usize;

    /// Advances the network by one cycle.
    fn step(&mut self, core: &mut NetworkCore);

    /// Packets currently held *outside* the core's buffers (e.g. FastPass
    /// flights in the air, Pitstop pit lanes). Used by conservation
    /// checks.
    fn overlay_packets(&self) -> usize {
        0
    }

    /// Exports the scheme's behaviour-relevant private state (used by the
    /// `noc-check` bounded model checker to canonicalize full system
    /// states). The default exports nothing, which is correct for
    /// stateless schemes; schemes with overlay state (TDM phases, flight
    /// tables, pits, in-air flits) should export it here — cycle-valued
    /// fields as *now-relative* saturated deltas via `core.cycle()`.
    fn export_state(&self, core: &NetworkCore, out: &mut StateExport) {
        let _ = (core, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::DorXy;

    /// A trivially correct scheme: plain credit-based VCT with XY routing
    /// (deadlock-free by routing restriction, needs VNs for protocol
    /// freedom).
    struct PlainXy;

    impl Scheme for PlainXy {
        fn name(&self) -> &'static str {
            "plain-xy"
        }
        fn properties(&self) -> SchemeProperties {
            SchemeProperties {
                no_detection: true,
                protocol_deadlock_freedom: false,
                network_deadlock_freedom: true,
                full_path_diversity: false,
                high_throughput: false,
                low_power: false,
                scalable: true,
                no_misrouting: true,
            }
        }
        fn required_vns(&self) -> usize {
            6
        }
        fn step(&mut self, core: &mut NetworkCore) {
            advance(core, &mut DorXy, &AdvanceCtx::default());
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut s: Box<dyn Scheme> = Box::new(PlainXy);
        assert_eq!(s.name(), "plain-xy");
        assert_eq!(s.overlay_packets(), 0);
        let mut core = NetworkCore::new(
            noc_core::config::SimConfig::builder()
                .mesh(2, 2)
                .vns(6)
                .vcs_per_vn(2)
                .build(),
        );
        s.step(&mut core);
        core.advance_cycle();
        assert_eq!(core.cycle(), 1);
    }
}
