//! Windowed telemetry: time-resolved deltas of [`NetStats`] plus
//! live-state gauges, sampled every `sample_every` cycles.
//!
//! End-of-run [`NetStats`] are steady-state aggregates; FastPass is a
//! dynamic mechanism, so congestion onset, lane utilization ramps and
//! queue growth near saturation are invisible in them. The [`Sampler`]
//! closes that gap: every `sample_every` cycles it appends one
//! [`WindowSample`] — the window's exact contribution to every additive
//! counter (via [`StatsSnapshot`]/[`NetworkTotals`] deltas) plus
//! instantaneous gauges of live state — into a pre-allocated
//! fixed-capacity series.
//!
//! Contract (mirrors the tracer's, enforced by `tests/sampler_gate.rs`
//! and `noc-lint`):
//!
//! - **Observation only.** The sampler reads the core; it never mutates
//!   it. A sampled run produces bitwise identical `NetStats` to an
//!   unsampled one.
//! - **No allocation after arm.** The series is allocated once at
//!   install; the per-window path ([`Sampler::record_window`], under the
//!   `hot-loop-alloc` lint) only reads, subtracts and pushes into
//!   reserved capacity. When the series fills, further windows are
//!   counted in [`Sampler::dropped_windows`] and discarded — saturate,
//!   never grow.
//! - **Outside the cache key.** [`SamplerConfig`] lives beside
//!   `TraceConfig`, *not* in `SimConfig`: enabling sampling must not
//!   change sweep-cache keys, because it does not change results.
//!
//! Stall-cause counts, link utilization and the VC-occupancy integral
//! are reused from `noc-trace`'s per-router counters ([`NetworkTotals`])
//! rather than recounted: they are live (non-zero) only when tracing is
//! at counters level or above. The occupancy *gauge*
//! ([`WindowSample::occupied_vcs`]) is sampled directly and works with
//! tracing off.

use crate::network::NetworkCore;
use noc_core::packet::{CLASSES, NUM_CLASSES};
use noc_core::stats::StatsSnapshot;
use noc_trace::{NetworkTotals, StallCause};

/// Sampling configuration. Deliberately *not* part of
/// [`SimConfig`](noc_core::config::SimConfig) — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Window length in cycles. Each recorded window covers exactly this
    /// many cycles (the final, flushed window may be shorter).
    pub sample_every: u64,
    /// Series capacity in windows, allocated up front. Once full, new
    /// windows are dropped (and counted), never reallocated.
    pub max_windows: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            sample_every: 256,
            max_windows: 4096,
        }
    }
}

/// One sampling window: counter deltas over `(start_cycle, end_cycle]`
/// plus gauges read at `end_cycle`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Cycle the window opened at (exclusive).
    pub start_cycle: u64,
    /// Cycle the window closed at (inclusive).
    pub end_cycle: u64,
    /// Packets delivered in the window (regular + FastPass).
    pub delivered: u64,
    /// FastPass-delivered packets in the window.
    pub delivered_fastpass: u64,
    /// Flits delivered in the window.
    pub flits_delivered: u64,
    /// Packets generated in the window.
    pub generated: u64,
    /// Injection-queue drop events in the window.
    pub dropped: u64,
    /// FastPass ejection rejections in the window.
    pub rejections: u64,
    /// Deflections/misroutes in the window.
    pub deflections: u64,
    /// Latency samples recorded in the window.
    pub latency_count: u64,
    /// Sum of those latency samples, in cycles.
    pub latency_sum: u64,
    /// Gauge: live packets anywhere in the system, per class.
    pub in_flight: [u64; NUM_CLASSES],
    /// Gauge: packets held by the scheme's overlay (FastPass flights).
    pub overlay_packets: u64,
    /// Gauge: occupied router VCs, summed over routers.
    pub occupied_vcs: u64,
    /// Gauge: NI source-queue packets, summed over nodes.
    pub ni_source: u64,
    /// Gauge: NI injection-queue packets, summed over nodes and classes.
    pub ni_inj: u64,
    /// Gauge: NI ejection-queue packets, summed over nodes and classes.
    pub ni_ej: u64,
    /// Gauge: packets awaiting drop-regeneration, summed over nodes.
    pub ni_regen: u64,
    /// Stall cycles by cause in the window (zero unless tracing counters
    /// are on), indexed by [`StallCause::index`].
    pub stalls: [u64; StallCause::COUNT],
    /// Regular-pipeline link flits in the window (tracing counters only).
    pub link_flits_regular: u64,
    /// FastPass-lane flit-cycles in the window (tracing counters only).
    pub link_flits_bypass: u64,
    /// FastPass launches in the window (tracing counters only).
    pub bypass_launches: u64,
    /// VC-occupancy integral accumulated in the window (tracing counters
    /// only); divide by [`len_cycles`](Self::len_cycles) for the window's
    /// mean occupied-VC count.
    pub occupancy_integral: u64,
}

impl WindowSample {
    /// Window length in cycles.
    pub fn len_cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Mean end-to-end latency of packets delivered in this window.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.latency_count as f64)
        }
    }

    /// Delivered throughput over the window, packets/cycle (all nodes).
    pub fn throughput(&self) -> f64 {
        let c = self.len_cycles();
        if c == 0 {
            0.0
        } else {
            self.delivered as f64 / c as f64
        }
    }

    /// Total live packets across classes (gauge).
    pub fn in_flight_total(&self) -> u64 {
        self.in_flight.iter().sum()
    }

    /// Total stall cycles across causes in the window.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// The windowed sampler. Install via
/// [`Simulation::set_sampler`](crate::Simulation::set_sampler); read the
/// series back with [`windows`](Self::windows) after
/// [`Simulation::finish_sampling`](crate::Simulation::finish_sampling).
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    windows: Vec<WindowSample>,
    dropped_windows: u64,
    last_stats: StatsSnapshot,
    last_trace: NetworkTotals,
    window_open_cycle: u64,
}

impl Sampler {
    /// Creates a sampler with its full series pre-allocated.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` or `max_windows` is zero — a zero-length
    /// window would record forever at cycle granularity and a zero-entry
    /// series drops everything silently; both are configuration errors.
    pub fn new(cfg: &SamplerConfig) -> Self {
        assert!(cfg.sample_every > 0, "sample_every must be >= 1");
        assert!(cfg.max_windows > 0, "max_windows must be >= 1");
        Sampler {
            cfg: *cfg,
            windows: Vec::with_capacity(cfg.max_windows),
            dropped_windows: 0,
            last_stats: StatsSnapshot::default(),
            last_trace: NetworkTotals::default(),
            window_open_cycle: 0,
        }
    }

    /// The installed configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Recorded windows, in time order.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Windows discarded because the series was full.
    pub fn dropped_windows(&self) -> u64 {
        self.dropped_windows
    }

    /// Cycle at which the first due window closes.
    pub(crate) fn next_due(&self) -> u64 {
        self.window_open_cycle + self.cfg.sample_every
    }

    /// Re-bases the delta baselines on the core's *current* counters and
    /// clears the series. Called at install and at every statistics
    /// reset, so the series always reconciles with the stats window it
    /// was recorded in (warmup windows never leak into measurement
    /// sums).
    pub(crate) fn resync(&mut self, core: &NetworkCore) {
        self.last_stats = core.stats.snapshot();
        self.last_trace = core.trace.totals();
        self.window_open_cycle = core.cycle();
        self.windows.clear();
        self.dropped_windows = 0;
    }

    /// Closes the current window at the core's current cycle. Hot-scope
    /// discipline (`noc-lint` `hot-loop-alloc`): reads, subtracts, and
    /// pushes into reserved capacity only.
    pub(crate) fn record_window(&mut self, core: &NetworkCore, overlay_packets: u64) {
        let now = core.cycle();
        let stats = core.stats.snapshot();
        let trace = core.trace.totals();
        let sd = stats.delta_since(&self.last_stats);
        let td = trace.delta_since(&self.last_trace);
        let mut w = WindowSample {
            start_cycle: self.window_open_cycle,
            end_cycle: now,
            delivered: sd.delivered(),
            delivered_fastpass: sd.delivered_fastpass,
            flits_delivered: sd.flits_delivered,
            generated: sd.generated,
            dropped: sd.dropped,
            rejections: sd.rejections,
            deflections: sd.deflections,
            latency_count: sd.latency_count,
            latency_sum: u64::try_from(sd.latency_sum).unwrap_or(u64::MAX),
            overlay_packets,
            stalls: td.stalls,
            link_flits_regular: td.link_flits_regular,
            link_flits_bypass: td.link_flits_bypass,
            bypass_launches: td.bypass_launches,
            occupancy_integral: td.occupancy_integral,
            ..WindowSample::default()
        };
        for pkt in core.store.iter() {
            w.in_flight[pkt.class.index()] += 1;
        }
        for n in core.mesh().nodes() {
            w.occupied_vcs += core.occupied_vcs(n) as u64;
            let ni = core.ni(n);
            w.ni_source += ni.source_depth() as u64;
            w.ni_regen += ni.regen_pending() as u64;
            for c in CLASSES {
                w.ni_inj += ni.inj_len(c) as u64;
                w.ni_ej += ni.ej_len(c) as u64;
            }
        }
        self.last_stats = stats;
        self.last_trace = trace;
        self.window_open_cycle = now;
        if self.windows.len() < self.cfg.max_windows {
            self.windows.push(w);
        } else {
            self.dropped_windows += 1;
        }
    }

    /// Flushes the final, possibly short window (no-op if the current
    /// window is empty). Without this, counts accrued since the last
    /// window boundary would be missing from the series and window sums
    /// would not reconcile with end-of-run totals.
    pub(crate) fn flush(&mut self, core: &NetworkCore, overlay_packets: u64) {
        if core.cycle() > self.window_open_cycle {
            self.record_window(core, overlay_packets);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = SamplerConfig::default();
        assert!(cfg.sample_every > 0);
        assert!(cfg.max_windows > 0);
    }

    #[test]
    #[should_panic(expected = "sample_every")]
    fn zero_window_rejected() {
        let _ = Sampler::new(&SamplerConfig {
            sample_every: 0,
            max_windows: 8,
        });
    }

    #[test]
    #[should_panic(expected = "max_windows")]
    fn zero_capacity_rejected() {
        let _ = Sampler::new(&SamplerConfig {
            sample_every: 8,
            max_windows: 0,
        });
    }

    #[test]
    fn window_sample_derived_metrics() {
        let w = WindowSample {
            start_cycle: 100,
            end_cycle: 200,
            delivered: 50,
            latency_count: 4,
            latency_sum: 100,
            in_flight: [1, 0, 2, 0, 0, 0],
            stalls: [1; StallCause::COUNT],
            ..WindowSample::default()
        };
        assert_eq!(w.len_cycles(), 100);
        assert_eq!(w.mean_latency(), Some(25.0));
        assert_eq!(w.throughput(), 0.5);
        assert_eq!(w.in_flight_total(), 3);
        assert_eq!(w.total_stalls(), StallCause::COUNT as u64);
        let empty = WindowSample::default();
        assert_eq!(empty.mean_latency(), None);
        assert_eq!(empty.throughput(), 0.0);
    }
}
