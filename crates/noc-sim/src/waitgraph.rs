//! Wait-for-graph construction and dependency-cycle detection.
//!
//! A vertex is a buffered packet occupying a VC; an edge `v → w` means
//! "the packet at `v` could make its next hop into the buffer currently
//! held by `w`" — i.e. `w`'s VC is at a downstream input port `v` desires
//! and lies in `v`'s packet's VC range. A directed cycle of *quiescent*
//! packets is a (potential) network-level deadlock: rotating every packet
//! one step along the cycle is exactly SPIN's synchronized movement, and
//! detecting such cycles is how the integration tests prove FastPass
//! resolves deadlocks rather than merely avoiding the traffic that causes
//! them.

use crate::network::NetworkCore;
use crate::routing::{RouteReq, RoutingPolicy};
use noc_core::packet::PacketId;
use noc_core::topology::{NodeId, Port, NUM_PORTS};
use std::collections::BTreeMap;

/// A buffered packet's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferPos {
    /// Router holding the packet.
    pub node: NodeId,
    /// Input port index.
    pub port: usize,
    /// VC index.
    pub vc: usize,
}

/// The wait-for graph over currently blocked, quiescent packets.
#[derive(Debug, Clone)]
pub struct WaitGraph {
    verts: Vec<(BufferPos, PacketId)>,
    edges: Vec<Vec<usize>>,
    index: BTreeMap<BufferPos, usize>,
}

impl WaitGraph {
    /// Builds the graph from the network's current state.
    ///
    /// Vertices are quiescent occupants without an allocated route (they
    /// are the packets actually waiting on buffers). `min_blocked` filters
    /// to packets that have made no progress for at least that many
    /// cycles (SPIN's detection threshold; 0 captures everything).
    pub fn build(core: &NetworkCore, policy: &dyn RoutingPolicy, min_blocked: u64) -> Self {
        let now = core.cycle();
        let vcs = core.router(NodeId::new(0)).vcs_per_port();
        let mut verts = Vec::new();
        let mut index = BTreeMap::new();
        for node in core.mesh().nodes() {
            for port in 0..NUM_PORTS {
                for vc in 0..vcs {
                    if let Some(occ) = core.input(node, port).occupant(vc) {
                        if occ.quiescent()
                            && occ.route.is_none()
                            && occ.blocked_for(now) >= min_blocked
                        {
                            let pos = BufferPos { node, port, vc };
                            index.insert(pos, verts.len());
                            verts.push((pos, occ.pkt));
                        }
                    }
                }
            }
        }
        let mut edges = vec![Vec::new(); verts.len()];
        for (vi, &(pos, pkt_id)) in verts.iter().enumerate() {
            let req = RouteReq::new(core, pos.node, Port::from_index(pos.port), pos.vc, pkt_id);
            for port in policy.desired_ports(core, &req) {
                let Port::Dir(d) = port else { continue };
                let Some(nbr) = core.neighbor(pos.node, d) else {
                    continue;
                };
                let in_port = Port::Dir(d.opposite()).index();
                let range = core.cfg().vc_range_for_class(req.class.index());
                for vc in range {
                    let target = BufferPos {
                        node: nbr,
                        port: in_port,
                        vc,
                    };
                    if let Some(&wi) = index.get(&target) {
                        edges[vi].push(wi);
                    }
                }
            }
        }
        WaitGraph {
            verts,
            edges,
            index,
        }
    }

    /// Number of vertices (blocked quiescent packets).
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Position and packet of vertex `i`.
    pub fn vertex(&self, i: usize) -> (BufferPos, PacketId) {
        self.verts[i]
    }

    /// Vertex index of the packet buffered at `pos`, if it is in the
    /// graph.
    pub fn vertex_at(&self, pos: BufferPos) -> Option<usize> {
        self.index.get(&pos).copied()
    }

    /// Finds a dependency cycle reachable from vertex `start`, returned
    /// as vertex indices in order (`cycle[i]` waits on `cycle[i+1]`,
    /// wrapping). Returns `None` if no cycle is reachable.
    pub fn find_cycle_from(&self, start: usize) -> Option<Vec<usize>> {
        // Iterative DFS with an explicit path stack.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut mark = vec![Mark::White; self.verts.len()];
        let mut path: Vec<usize> = Vec::new();
        let mut iters: Vec<usize> = Vec::new();
        mark[start] = Mark::Gray;
        path.push(start);
        iters.push(0);
        while let Some(&v) = path.last() {
            let i = *iters
                .last()
                .expect("iters parallels the non-empty path stack");
            if i < self.edges[v].len() {
                *iters
                    .last_mut()
                    .expect("iters parallels the non-empty path stack") += 1;
                let w = self.edges[v][i];
                match mark[w] {
                    Mark::Gray => {
                        // Cycle: the path suffix from w's position.
                        let at = path
                            .iter()
                            .position(|&x| x == w)
                            .expect("gray vertex is on the current DFS path");
                        return Some(path[at..].to_vec());
                    }
                    Mark::White => {
                        mark[w] = Mark::Gray;
                        path.push(w);
                        iters.push(0);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[v] = Mark::Black;
                path.pop();
                iters.pop();
            }
        }
        None
    }

    /// Whether any dependency cycle exists in the graph.
    pub fn has_cycle(&self) -> bool {
        (0..self.verts.len()).any(|v| self.find_cycle_from(v).is_some())
    }

    /// Builds a synthetic graph from an adjacency list, for testing the
    /// cycle-detection algorithms against independent oracles. Vertex `i`
    /// is given the placeholder position `node i, port 0, vc 0` and a
    /// placeholder packet; only the edge structure is meaningful.
    ///
    /// # Panics
    ///
    /// Panics if any edge target is out of range.
    pub fn from_edges(num_verts: usize, edges: Vec<Vec<usize>>) -> Self {
        assert_eq!(edges.len(), num_verts, "one adjacency row per vertex");
        for row in &edges {
            for &w in row {
                assert!(w < num_verts, "edge target {w} out of range");
            }
        }
        let mut verts = Vec::with_capacity(num_verts);
        let mut index = BTreeMap::new();
        for i in 0..num_verts {
            let pos = BufferPos {
                node: NodeId::new(i),
                port: 0,
                vc: 0,
            };
            index.insert(pos, i);
            verts.push((pos, PacketId::PLACEHOLDER));
        }
        WaitGraph {
            verts,
            edges,
            index,
        }
    }

    /// Outgoing edges of vertex `i` (oracle cross-checks in tests).
    pub fn edges_of(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }
}

/// Rotates every packet one step along `cycle` (SPIN's synchronized
/// movement): each packet moves into the buffer of the next vertex, which
/// is simultaneously vacated. All moves are legal by construction of the
/// graph's edges.
///
/// Returns the packets that moved.
///
/// # Panics
///
/// Panics if any occupant vanished or became non-quiescent since the
/// graph was built (callers must use a freshly built graph).
pub fn rotate_cycle(core: &mut NetworkCore, graph: &WaitGraph, cycle: &[usize]) -> Vec<PacketId> {
    use crate::vc::VcOccupant;
    let now = core.cycle();
    // Take every packet out first (simultaneous), then reinstall shifted.
    let mut taken = Vec::with_capacity(cycle.len());
    for &vi in cycle {
        let (pos, expect) = graph.vertex(vi);
        let pkt = core.take_vc_packet(pos.node, Port::from_index(pos.port), pos.vc);
        assert_eq!(pkt, expect, "wait graph went stale");
        taken.push(pkt);
    }
    let mut moved = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        let next = cycle[(k + 1) % cycle.len()];
        let (npos, _) = graph.vertex(next);
        let pkt = taken[k];
        let len = core.store.get(pkt).len_flits;
        let mut occ = VcOccupant::reserved(pkt, len, now);
        occ.arrived = len; // Atomic relocation: fully buffered at the target.
        core.input_mut(npos.node, npos.port).install(npos.vc, occ);
        core.store.get_mut(pkt).hops += 1;
        moved.push(pkt);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::FullyAdaptive;
    use crate::vc::VcOccupant;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};
    use noc_core::topology::Direction;

    fn core() -> NetworkCore {
        NetworkCore::new(SimConfig::builder().mesh(2, 2).vns(0).vcs_per_vn(1).build())
    }

    /// Places a quiescent packet into a specific buffer.
    fn place(core: &mut NetworkCore, node: usize, port: Port, src: usize, dst: usize) {
        let id = core.generate(Packet::new(
            NodeId::new(src),
            NodeId::new(dst),
            MessageClass::Request,
            1,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        core.input_mut(NodeId::new(node), port.index())
            .install(0, occ);
    }

    /// Builds the canonical 4-packet clockwise deadlock on a 2×2 mesh:
    /// every packet wants to turn through the buffer the next one holds.
    /// Node layout: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).
    fn build_deadlocked_core() -> NetworkCore {
        let mut c = core();
        // Four packets, one per mesh corner, each buffered on the input
        // port the previous one wants to move into:
        //   at 0 (South input), dst 3 → wants E into 1's West buffer,
        //   at 1 (West input),  dst 2 → wants S into 3's North buffer,
        //   at 3 (North input), dst 2 → wants W into 2's East buffer,
        //   at 2 (East input),  dst 0 → wants N into 0's South buffer.
        place(&mut c, 0, Port::Dir(Direction::South), 2, 3);
        place(&mut c, 1, Port::Dir(Direction::West), 0, 2);
        place(&mut c, 3, Port::Dir(Direction::North), 1, 2);
        place(&mut c, 2, Port::Dir(Direction::East), 3, 0);
        c
    }

    #[test]
    fn detects_constructed_cycle() {
        let c = build_deadlocked_core();
        let policy = FullyAdaptive::new(1);
        let g = WaitGraph::build(&c, &policy, 0);
        assert_eq!(g.len(), 4);
        assert!(g.has_cycle(), "the 4-packet ring must be detected");
    }

    #[test]
    fn no_cycle_when_buffers_free() {
        let mut c = core();
        place(&mut c, 0, Port::Local, 2, 3);
        let policy = FullyAdaptive::new(1);
        let g = WaitGraph::build(&c, &policy, 0);
        assert_eq!(g.len(), 1);
        assert!(!g.has_cycle());
        assert!(g.find_cycle_from(0).is_none());
    }

    #[test]
    fn min_blocked_filters_fresh_packets() {
        let c = build_deadlocked_core();
        let policy = FullyAdaptive::new(1);
        let g = WaitGraph::build(&c, &policy, 100);
        assert!(g.is_empty(), "nothing has been blocked 100 cycles yet");
    }

    #[test]
    fn rotation_breaks_the_cycle() {
        let mut c = build_deadlocked_core();
        let policy = FullyAdaptive::new(1);
        let g = WaitGraph::build(&c, &policy, 0);
        let cycle = (0..g.len())
            .find_map(|v| g.find_cycle_from(v))
            .expect("cycle exists");
        let before = c.resident_packets();
        let moved = rotate_cycle(&mut c, &g, &cycle);
        assert_eq!(moved.len(), cycle.len());
        assert_eq!(c.resident_packets(), before, "rotation conserves packets");
        // Every moved packet gained a hop.
        for pkt in moved {
            assert_eq!(c.store.get(pkt).hops, 1);
        }
        // After one rotation each packet sits one hop closer (or at least
        // relocated): the same graph positions now hold different packets.
        let g2 = WaitGraph::build(&c, &policy, 0);
        // Rotation may or may not fully dissolve the cycle (SPIN may spin
        // several times), but the graph must still be buildable and the
        // packets quiescent.
        assert_eq!(g2.len(), 4);
    }
}
