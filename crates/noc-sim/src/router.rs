//! Per-router state: input units, arbitration pointers, ejection lock.

use crate::arbiter::RoundRobin;
use crate::vc::InputUnit;
use noc_core::packet::NUM_CLASSES;
use noc_core::topology::NUM_PORTS;

/// State of one router.
///
/// The paper's router (Fig. 6) has five input ports (N/S/E/W + injection)
/// and five output ports (N/S/E/W + ejection), each input port carrying
/// the configured VCs. Switch allocation is per-output-port round-robin
/// over `(input port, VC)` requesters.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Input units indexed by [`Port::index`](noc_core::topology::Port::index).
    pub inputs: Vec<InputUnit>,
    /// Per-output-port switch-allocation arbiters over
    /// `NUM_PORTS × vcs_per_port` requesters.
    pub sa_rr: Vec<RoundRobin>,
    /// Round-robin over classes for starting NI injection transfers.
    pub inj_class_rr: RoundRobin,
    /// While a packet is being ejected, the `(input port, vc)` it streams
    /// from. The ejection port is held until the tail flit leaves
    /// (FastPass flights may stall, but never steal, the stream — Qn3).
    pub eject_lock: Option<(usize, usize)>,
}

impl RouterState {
    /// Creates a router whose input ports each have `vcs_per_port` VCs.
    pub fn new(vcs_per_port: usize) -> Self {
        RouterState {
            inputs: (0..NUM_PORTS)
                .map(|_| InputUnit::new(vcs_per_port))
                .collect(),
            sa_rr: (0..NUM_PORTS)
                .map(|_| RoundRobin::new(NUM_PORTS * vcs_per_port))
                .collect(),
            inj_class_rr: RoundRobin::new(NUM_CLASSES),
            eject_lock: None,
        }
    }

    /// VCs per input port.
    pub fn vcs_per_port(&self) -> usize {
        self.inputs[0].num_vcs()
    }

    /// Total occupied VCs in this router's input units — O(ports), using
    /// the per-input occupancy counters rather than scanning every VC.
    /// This is the router half of the active-set predicate: a router with
    /// zero occupied VCs has no route/switch/eject work this cycle. Note
    /// that a packet mid-transfer occupies buffers at several routers;
    /// use [`NetworkCore::resident_packets`] for an exactly-once packet
    /// count.
    ///
    /// [`NetworkCore::resident_packets`]: crate::network::NetworkCore::resident_packets
    pub fn occupied_vcs(&self) -> usize {
        self.inputs.iter().map(|iu| iu.occupied_count()).sum()
    }

    /// Encodes an `(input port, vc)` pair as a switch-allocation
    /// requester index.
    pub fn sa_index(&self, in_port: usize, vc: usize) -> usize {
        in_port * self.vcs_per_port() + vc
    }

    /// Decodes a switch-allocation requester index back to
    /// `(input port, vc)`.
    pub fn sa_decode(&self, idx: usize) -> (usize, usize) {
        (idx / self.vcs_per_port(), idx % self.vcs_per_port())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::VcOccupant;
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::NodeId;

    #[test]
    fn construction_shapes() {
        let r = RouterState::new(12);
        assert_eq!(r.inputs.len(), NUM_PORTS);
        assert_eq!(r.sa_rr.len(), NUM_PORTS);
        assert_eq!(r.vcs_per_port(), 12);
        assert_eq!(r.sa_rr[0].len(), NUM_PORTS * 12);
        assert_eq!(r.occupied_vcs(), 0);
    }

    #[test]
    fn sa_index_roundtrip() {
        let r = RouterState::new(4);
        for port in 0..NUM_PORTS {
            for vc in 0..4 {
                let idx = r.sa_index(port, vc);
                assert_eq!(r.sa_decode(idx), (port, vc));
            }
        }
    }

    #[test]
    fn resident_packet_count() {
        let mut store = PacketStore::new();
        let mut r = RouterState::new(2);
        let p = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            1,
            0,
        ));
        r.inputs[0].install(1, VcOccupant::reserved(p, 1, 0));
        assert_eq!(r.occupied_vcs(), 1);
    }
}
