//! Per-router state: arbitration pointers and the ejection lock.
//!
//! VC buffer contents live in the network-wide flat
//! [`VcArena`](crate::arena::VcArena), not here; what remains per router
//! is the control state that is genuinely router-local.

use crate::arbiter::RoundRobin;
use noc_core::packet::NUM_CLASSES;
use noc_core::topology::NUM_PORTS;

/// State of one router.
///
/// The paper's router (Fig. 6) has five input ports (N/S/E/W + injection)
/// and five output ports (N/S/E/W + ejection), each input port carrying
/// the configured VCs. Switch allocation is per-output-port round-robin
/// over `(input port, VC)` requesters.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Per-output-port switch-allocation arbiters over
    /// `NUM_PORTS × vcs_per_port` requesters.
    pub sa_rr: Vec<RoundRobin>,
    /// Round-robin over classes for starting NI injection transfers.
    pub inj_class_rr: RoundRobin,
    /// While a packet is being ejected, the `(input port, vc)` it streams
    /// from. The ejection port is held until the tail flit leaves
    /// (FastPass flights may stall, but never steal, the stream — Qn3).
    pub eject_lock: Option<(usize, usize)>,
    vcs_per_port: usize,
    /// Precomputed `(input port, vc)` per requester index, so the hot
    /// [`sa_decode`](Self::sa_decode) is one table load instead of a
    /// runtime division pair.
    decode: Vec<(u8, u8)>,
}

impl RouterState {
    /// Creates a router whose input ports each have `vcs_per_port` VCs.
    pub fn new(vcs_per_port: usize) -> Self {
        RouterState {
            sa_rr: (0..NUM_PORTS)
                .map(|_| RoundRobin::new(NUM_PORTS * vcs_per_port))
                .collect(),
            inj_class_rr: RoundRobin::new(NUM_CLASSES),
            eject_lock: None,
            vcs_per_port,
            decode: (0..NUM_PORTS * vcs_per_port)
                .map(|i| ((i / vcs_per_port) as u8, (i % vcs_per_port) as u8))
                .collect(),
        }
    }

    /// VCs per input port.
    pub fn vcs_per_port(&self) -> usize {
        self.vcs_per_port
    }

    /// Encodes an `(input port, vc)` pair as a switch-allocation
    /// requester index.
    pub fn sa_index(&self, in_port: usize, vc: usize) -> usize {
        in_port * self.vcs_per_port + vc
    }

    /// Decodes a switch-allocation requester index back to
    /// `(input port, vc)`.
    pub fn sa_decode(&self, idx: usize) -> (usize, usize) {
        let (p, vc) = self.decode[idx];
        (p as usize, vc as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let r = RouterState::new(12);
        assert_eq!(r.sa_rr.len(), NUM_PORTS);
        assert_eq!(r.vcs_per_port(), 12);
        assert_eq!(r.sa_rr[0].len(), NUM_PORTS * 12);
        assert!(r.eject_lock.is_none());
    }

    #[test]
    fn sa_index_roundtrip() {
        let r = RouterState::new(4);
        for port in 0..NUM_PORTS {
            for vc in 0..4 {
                let idx = r.sa_index(port, vc);
                assert_eq!(r.sa_decode(idx), (port, vc));
            }
        }
    }
}
