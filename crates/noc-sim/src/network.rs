//! The network core: routers, NIs, packet store and staged flit movement.
//!
//! [`NetworkCore`] is the shared substrate every scheme operates on. It
//! enforces the physical constraints that keep the simulation honest:
//! flits move at most one hop per cycle (arrivals are *staged* during a
//! cycle and applied at its end), a VC is never double-booked, and
//! buffers are freed only when the tail flit has left.

use crate::arena::{m_arrived, m_len, InputMut, InputRef, VcArena, M_ARRIVED};
use crate::ni::NiState;
use crate::probe::{Phase, PhaseProbe};
use crate::router::RouterState;
use noc_core::config::SimConfig;
use noc_core::packet::{PacketId, PacketSeed, PacketStore};
use noc_core::rng::DetRng;
use noc_core::stats::NetStats;
use noc_core::topology::{Direction, LinkId, Mesh, NodeId, Port, ProductiveDirs, DIRECTIONS};
use noc_trace::{TraceConfig, Tracer};

/// Sentinel in the flat neighbor table: no neighbor (mesh edge).
const NO_NBR: u32 = u32::MAX;

/// A set of directed links, used for FastPass lane suppression and for
/// collision assertions.
#[derive(Debug, Clone)]
pub struct LinkSet {
    words: Vec<u64>,
    len: usize,
}

impl LinkSet {
    /// Creates an empty set sized for `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        let len = mesh.num_links();
        LinkSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Inserts a link. Returns whether it was newly inserted (`false`
    /// means the link was already present — a collision).
    pub fn insert(&mut self, l: LinkId) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Whether the set contains `l`.
    pub fn contains(&self, l: LinkId) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all links.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of links in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Capacity (number of addressable links).
    pub fn capacity(&self) -> usize {
        self.len
    }
}

/// A flit arrival to apply at the end of the current cycle.
#[derive(Debug, Clone, Copy)]
struct StagedArrival {
    node: usize,
    port: usize,
    vc: usize,
}

/// The installed phase probe, if any. Newtype so [`NetworkCore`] keeps
/// its `#[derive(Debug)]` despite `dyn PhaseProbe` not being `Debug`.
#[derive(Default)]
struct ProbeSlot(Option<Box<dyn PhaseProbe>>);

impl std::fmt::Debug for ProbeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProbeSlot")
            .field(&self.0.as_ref().map(|_| "installed"))
            .finish()
    }
}

/// The simulated network: all routers, NIs, links and packets.
#[derive(Debug)]
pub struct NetworkCore {
    cfg: SimConfig,
    mesh: Mesh,
    routers: Vec<RouterState>,
    /// Flat struct-of-arrays storage for every VC buffer; the regular
    /// pipeline reads its occupancy/routed words directly.
    pub(crate) arena: VcArena,
    nis: Vec<NiState>,
    /// Central packet storage. Public: schemes and workloads read and
    /// annotate packets directly.
    pub store: PacketStore,
    /// Aggregate statistics. Public: the engine and schemes update
    /// counters as events occur.
    pub stats: NetStats,
    /// Event tracer. Public: pipeline stages and schemes record through
    /// the `noc_trace::trace!` macro and the tracer's `count_*` hooks.
    /// Disabled (and storage-free) unless
    /// [`enable_trace`](Self::enable_trace) is called; recording never
    /// influences simulation behavior.
    pub trace: Tracer,
    cycle: u64,
    staged: Vec<StagedArrival>,
    drained: Vec<StagedArrival>,
    /// Double buffers for `apply_staged`: swapped with `staged`/`drained`
    /// each cycle so neither side ever re-allocates in steady state.
    staged_back: Vec<StagedArrival>,
    drained_back: Vec<StagedArrival>,
    /// Reusable per-cycle scratch owned here so the regular pipeline
    /// allocates nothing in steady state: the active-node worklist.
    scratch_nodes: Vec<NodeId>,
    rng: DetRng,
    link_flits: Vec<u64>,
    probe: ProbeSlot,
    /// Flat neighbor table (`node * 4 + direction` → neighbor index or
    /// [`NO_NBR`]): the hot pipeline asks for neighbors several times per
    /// active node per cycle, and the mesh's arithmetic answer costs an
    /// integer division each call.
    topo_nbr: Vec<u32>,
    /// Cached `(x, y)` per node, for division-free productive-direction
    /// computation.
    topo_xy: Vec<(u16, u16)>,
}

impl NetworkCore {
    /// Builds an idle network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid configuration");
        let mesh = cfg.mesh;
        let n = mesh.num_nodes();
        let vcs = cfg.vcs_per_port();
        NetworkCore {
            routers: (0..n).map(|_| RouterState::new(vcs)).collect(),
            arena: VcArena::new(n, vcs),
            nis: (0..n)
                .map(|_| NiState::new(cfg.inj_queue_packets, cfg.ej_queue_packets))
                .collect(),
            store: PacketStore::new(),
            stats: NetStats::new(n),
            trace: Tracer::disabled(),
            cycle: 0,
            staged: Vec::new(),
            drained: Vec::new(),
            staged_back: Vec::new(),
            drained_back: Vec::new(),
            scratch_nodes: Vec::new(),
            rng: DetRng::new(cfg.seed),
            link_flits: vec![0; mesh.num_links()],
            probe: ProbeSlot(None),
            topo_nbr: (0..n)
                .flat_map(|i| {
                    DIRECTIONS.map(|d| {
                        mesh.neighbor(NodeId::new(i), d)
                            .map_or(NO_NBR, |nb| nb.index() as u32)
                    })
                })
                .collect(),
            topo_xy: (0..n)
                .map(|i| {
                    let node = NodeId::new(i);
                    (mesh.x(node) as u16, mesh.y(node) as u16)
                })
                .collect(),
            mesh,
            cfg,
        }
    }

    // ---- accessors -----------------------------------------------------

    /// The simulation configuration.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// The topology.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The neighbor of `n` in direction `d` — table lookup, no division.
    /// Identical to [`Mesh::neighbor`]; preferred in per-cycle code.
    #[inline]
    pub fn neighbor(&self, n: NodeId, d: Direction) -> Option<NodeId> {
        let v = self.topo_nbr[n.index() * 4 + d.index()];
        (v != NO_NBR).then(|| NodeId::new(v as usize))
    }

    /// The directed link leaving `n` via `d` — identical to
    /// [`Mesh::link`], division-free.
    #[inline]
    pub fn link(&self, n: NodeId, d: Direction) -> Option<LinkId> {
        let i = n.index() * 4 + d.index();
        (self.topo_nbr[i] != NO_NBR).then(|| LinkId::new(i))
    }

    /// Cached mesh coordinates of `n` — no division, unlike
    /// [`Mesh::x`]/[`Mesh::y`].
    #[inline]
    pub fn xy(&self, n: NodeId) -> (u16, u16) {
        self.topo_xy[n.index()]
    }

    /// Minimal productive directions from `from` toward `to` — identical
    /// to [`Mesh::productive_dirs`], using cached coordinates.
    #[inline]
    pub fn productive_dirs(&self, from: NodeId, to: NodeId) -> ProductiveDirs {
        let (fx, fy) = self.xy(from);
        let (tx, ty) = self.xy(to);
        ProductiveDirs::from_deltas(tx as isize - fx as isize, ty as isize - fy as isize)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the clock by one cycle (called by the engine once per
    /// simulated cycle, after the scheme has stepped).
    pub fn advance_cycle(&mut self) {
        assert!(
            self.staged.is_empty() && self.drained.is_empty(),
            "advance_cycle called with staged moves pending; call apply_staged first"
        );
        if self.trace.counters_on() {
            self.sample_occupancy_all();
        }
        self.cycle += 1;
        self.trace.set_now(self.cycle);
    }

    /// End-of-cycle occupancy sample: one add per router into the
    /// buffer-occupancy integral (read-only w.r.t. the network). Cold:
    /// reached only with tracing counters enabled.
    #[cold]
    #[inline(never)]
    fn sample_occupancy_all(&mut self) {
        for i in 0..self.mesh.num_nodes() {
            self.trace
                .sample_occupancy(i, self.arena.node_occupied(i) as u64);
        }
    }

    /// Enables tracing for the rest of the simulation. All trace storage
    /// (event rings, counters) is allocated here, once; afterwards the
    /// hot path never allocates regardless of level. Any previously
    /// recorded trace data is discarded.
    pub fn enable_trace(&mut self, cfg: &TraceConfig) {
        self.trace = Tracer::new(cfg, self.mesh.num_nodes());
        self.trace.set_now(self.cycle);
    }

    /// Installs a phase probe; subsequent pipeline stages bracket
    /// themselves with its begin/end hooks. Probes observe only — a
    /// probed run is bitwise identical to an unprobed one.
    pub fn set_probe(&mut self, probe: Box<dyn PhaseProbe>) {
        self.probe = ProbeSlot(Some(probe));
    }

    /// Uninstalls and returns the current probe, if any.
    pub fn take_probe(&mut self) -> Option<Box<dyn PhaseProbe>> {
        self.probe.0.take()
    }

    /// Phase-begin hook. With no probe installed this is one predicted
    /// branch (the same zero-overhead discipline as the trace hooks).
    #[inline]
    pub fn probe_begin(&mut self, phase: Phase) {
        if self.probe.0.is_some() {
            self.probe_begin_cold(phase);
        }
    }

    /// Phase-end hook; see [`probe_begin`](Self::probe_begin).
    #[inline]
    pub fn probe_end(&mut self, phase: Phase) {
        if self.probe.0.is_some() {
            self.probe_end_cold(phase);
        }
    }

    #[cold]
    #[inline(never)]
    fn probe_begin_cold(&mut self, phase: Phase) {
        if let Some(p) = self.probe.0.as_mut() {
            p.begin(phase);
        }
    }

    #[cold]
    #[inline(never)]
    fn probe_end_cold(&mut self, phase: Phase) {
        if let Some(p) = self.probe.0.as_mut() {
            p.end(phase);
        }
    }

    /// Shared access to a router.
    pub fn router(&self, n: NodeId) -> &RouterState {
        &self.routers[n.index()]
    }

    /// Mutable access to a router.
    pub fn router_mut(&mut self, n: NodeId) -> &mut RouterState {
        &mut self.routers[n.index()]
    }

    /// Read-only view of one input port's VCs.
    pub fn input(&self, n: NodeId, port: usize) -> InputRef<'_> {
        InputRef::new(&self.arena, n.index(), port)
    }

    /// Mutating view of one input port (occupant install/take). Call
    /// sites outside the relocation whitelist are rejected by `noc-lint`.
    pub fn input_mut(&mut self, n: NodeId, port: usize) -> InputMut<'_> {
        InputMut::new(&mut self.arena, n.index(), port)
    }

    /// VCs per input port (uniform across the network).
    pub fn vcs_per_port(&self) -> usize {
        self.arena.vcs_per_port()
    }

    /// Total occupied VCs in `n`'s input buffers — O(1), maintained by
    /// the arena's install/take. This is the router half of the
    /// active-set predicate: a router with zero occupied VCs has no
    /// route/switch/eject work this cycle. Note that a packet
    /// mid-transfer occupies buffers at several routers; use
    /// [`resident_packets`](Self::resident_packets) for an exactly-once
    /// packet count.
    pub fn occupied_vcs(&self, n: NodeId) -> usize {
        self.arena.node_occupied(n.index())
    }

    /// Shared access to an NI.
    pub fn ni(&self, n: NodeId) -> &NiState {
        &self.nis[n.index()]
    }

    /// Mutable access to an NI.
    pub fn ni_mut(&mut self, n: NodeId) -> &mut NiState {
        &mut self.nis[n.index()]
    }

    /// Deterministic RNG for tie-breaking.
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Simultaneous mutable access to a router and the packet store
    /// (common pattern in scheme code).
    pub fn router_and_store_mut(&mut self, n: NodeId) -> (&mut RouterState, &mut PacketStore) {
        (&mut self.routers[n.index()], &mut self.store)
    }

    // ---- packet generation ----------------------------------------------

    /// Creates a packet and enqueues it at its source NI. This is the
    /// single entry point for workloads (open- and closed-loop).
    ///
    /// # Panics
    ///
    /// Panics if the seed's source equals its destination or the packet
    /// exceeds the configured maximum length.
    pub fn generate(&mut self, seed: PacketSeed) -> PacketId {
        assert_ne!(seed.src, seed.dst, "self-traffic is not modelled");
        assert!(
            (1..=self.cfg.max_packet_flits as u8).contains(&seed.len_flits),
            "packet length {} outside 1..={}",
            seed.len_flits,
            self.cfg.max_packet_flits
        );
        let class = seed.class;
        let src = seed.src;
        let id = self.store.insert(seed);
        self.nis[src.index()].push_source(class, id);
        self.stats.generated += 1;
        id
    }

    // ---- staged flit movement --------------------------------------------

    /// Stages the arrival of one flit into `(node, port, vc)` at the end
    /// of this cycle. The occupant must already exist there (reserved at
    /// VC allocation).
    pub fn stage_flit(&mut self, node: NodeId, port: Port, vc: usize) {
        self.staged.push(StagedArrival {
            node: node.index(),
            port: port.index(),
            vc,
        });
    }

    /// Marks `(node, port, vc)` as fully drained (tail flit sent); the VC
    /// is freed when staged moves are applied, making the credit visible
    /// next cycle.
    pub fn mark_drained(&mut self, node: NodeId, port: Port, vc: usize) {
        self.drained.push(StagedArrival {
            node: node.index(),
            port: port.index(),
            vc,
        });
    }

    /// Applies all staged arrivals and VC frees. Called exactly once per
    /// cycle by the regular pipeline (after switch allocation).
    ///
    /// The staged/drained vectors are double-buffered: each cycle the
    /// filled buffer is swapped with an empty back buffer and drained, so
    /// both retain their capacity and steady-state operation allocates
    /// nothing.
    pub fn apply_staged(&mut self) {
        let cycle = self.cycle;
        std::mem::swap(&mut self.staged, &mut self.staged_back);
        for s in self.staged_back.drain(..) {
            // Staged entries come from `send_flit`/injection against a
            // reserved slot the sender still holds; debug builds re-check.
            debug_assert!(
                self.arena.is_occupied(s.node, s.port, s.vc),
                "staged arrival into an unreserved VC"
            );
            let slot = self.arena.slot(s.node, s.port, s.vc);
            debug_assert!(
                m_arrived(self.arena.meta[slot]) < m_len(self.arena.meta[slot]),
                "more flits arrived than packet length"
            );
            let m = self.arena.meta[slot] + (1 << M_ARRIVED);
            self.arena.meta[slot] = m;
            if m_arrived(m) == 1 {
                self.arena.head_arrival[slot] = cycle;
                self.arena.last_progress[slot] = cycle;
            }
        }
        std::mem::swap(&mut self.drained, &mut self.drained_back);
        for d in self.drained_back.drain(..) {
            let occ = self
                .arena
                .take(d.node, d.port, d.vc)
                .expect("drained VC already empty");
            debug_assert!(occ.drained(), "VC freed before tail departed");
        }
    }

    // ---- scheme helpers ---------------------------------------------------

    /// Atomically removes a quiescent packet from a VC, freeing the
    /// buffer immediately (the FastPass upgrade path: credit is returned
    /// as soon as the FastPass-Packet departs, §III-C4; also used by
    /// SPIN/SWAP/Pitstop relocations).
    ///
    /// If the packet had already been allocated a downstream VC (route
    /// computed, no flit sent yet), the reservation is released — the
    /// downstream buffer never saw a flit of this packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty or its occupant is not quiescent.
    pub fn take_vc_packet(&mut self, node: NodeId, port: Port, vc: usize) -> PacketId {
        let occ = self
            .arena
            .take(node.index(), port.index(), vc)
            .expect("taking packet from empty VC");
        assert!(
            occ.quiescent(),
            "only quiescent (fully buffered, unsent) packets can be relocated"
        );
        if let Some(out_vc) = occ.out_vc {
            let Some(Port::Dir(d)) = occ.route else {
                panic!("downstream VC allocated without a direction route");
            };
            let nbr = self
                .neighbor(node, d)
                .expect("allocated route leaves the mesh");
            let reserved = self
                .arena
                .take(nbr.index(), Port::Dir(d.opposite()).index(), out_vc)
                .expect("downstream reservation vanished");
            assert_eq!(reserved.pkt, occ.pkt, "reservation held by another packet");
            assert_eq!(reserved.arrived, 0, "reservation already received flits");
        }
        occ.pkt
    }

    /// Total packets resident in routers and NIs (conservation checks;
    /// excludes scheme-held overlay packets such as FastPass flights).
    ///
    /// A packet in cut-through transfer spans a chain of buffers; it is
    /// counted exactly once, at the frontmost buffer that has received
    /// any of its flits (a downstream reservation that has seen no flit
    /// yet does not own the packet).
    pub fn resident_packets(&self) -> usize {
        let mut count = 0;
        for node in self.mesh.nodes() {
            if self.arena.node_occupied(node.index()) == 0 {
                continue; // active-set skip: nothing buffered here
            }
            for p in 0..noc_core::topology::NUM_PORTS {
                for (_, occ) in self.input(node, p).occupied() {
                    if occ.arrived == 0 {
                        continue; // reservation only; owned upstream
                    }
                    let owned = match (occ.route, occ.out_vc) {
                        (Some(Port::Dir(d)), Some(v)) => {
                            let nbr = self.neighbor(node, d).expect("route on-mesh");
                            self.input(nbr, Port::Dir(d.opposite()).index())
                                .occupant(v)
                                .map(|o| o.arrived == 0)
                                .unwrap_or(true)
                        }
                        _ => true,
                    };
                    if owned {
                        count += 1;
                    }
                }
            }
        }
        count
            + self
                .nis
                .iter()
                .map(|ni| ni.resident_packets())
                .sum::<usize>()
    }

    /// Records one flit crossing a directed link (utilization
    /// accounting for [`inspect`](crate::inspect)). The regular pipeline
    /// and FastPass flights both report through this.
    pub fn count_link_flit(&mut self, l: LinkId) {
        self.link_flits[l.index()] += 1;
    }

    /// Flits that have crossed each directed link since construction,
    /// indexed by [`LinkId::index`].
    pub fn link_flits(&self) -> &[u64] {
        &self.link_flits
    }

    /// Iterates node ids in a rotating order that changes every cycle,
    /// removing systematic bias from fixed processing order.
    pub fn nodes_rotating(&self) -> impl Iterator<Item = NodeId> {
        let n = self.mesh.num_nodes();
        let off = (self.cycle as usize) % n.max(1);
        // One modulo per cycle; the two chained ranges yield the same
        // `off, off+1, .., n-1, 0, .., off-1` order without a per-node
        // `% n` in the loop body.
        (off..n).chain(0..off).map(NodeId::new)
    }

    // ---- active set -------------------------------------------------------

    /// Whether `n` has any regular-pass work this cycle: at least one
    /// occupied VC in its router (O(1) via the arena's per-node occupancy
    /// counter) or injection-side NI work. Nodes failing this predicate
    /// are provably no-ops for every pipeline stage — see `DESIGN.md`'s
    /// "active-set invariant" section.
    pub fn node_active(&self, n: NodeId) -> bool {
        self.arena.node_occupied(n.index()) > 0 || self.nis[n.index()].has_work()
    }

    /// Hands the per-cycle active-node worklist scratch to the regular
    /// pipeline. Taking it out of `self` keeps the borrow checker happy
    /// while the pipeline mutates the core;
    /// [`put_advance_scratch`](Self::put_advance_scratch) returns it so
    /// its capacity survives across cycles. (The switch-allocation
    /// request vectors that used to live here are now fixed-size stack
    /// words in the switch stage.)
    pub(crate) fn take_advance_scratch(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.scratch_nodes)
    }

    /// Returns the scratch buffer taken by
    /// [`take_advance_scratch`](Self::take_advance_scratch).
    pub(crate) fn put_advance_scratch(&mut self, nodes: Vec<NodeId>) {
        self.scratch_nodes = nodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::VcOccupant;
    use noc_core::packet::{MessageClass, Packet};

    fn small_core() -> NetworkCore {
        NetworkCore::new(SimConfig::builder().mesh(3, 3).vns(0).vcs_per_vn(2).build())
    }

    #[test]
    fn construction() {
        let core = small_core();
        assert_eq!(core.mesh().num_nodes(), 9);
        assert_eq!(core.router(NodeId::new(0)).vcs_per_port(), 2);
        assert_eq!(core.vcs_per_port(), 2);
        assert_eq!(core.occupied_vcs(NodeId::new(0)), 0);
        assert_eq!(core.resident_packets(), 0);
        assert_eq!(core.cycle(), 0);
    }

    #[test]
    fn generate_places_packet_at_source() {
        let mut core = small_core();
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(8),
            MessageClass::Request,
            5,
            0,
        ));
        assert_eq!(core.stats.generated, 1);
        assert_eq!(core.ni(NodeId::new(0)).source_depth(), 1);
        assert_eq!(core.store.get(id).dst, NodeId::new(8));
        assert_eq!(core.resident_packets(), 1);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let mut core = small_core();
        core.generate(Packet::new(
            NodeId::new(3),
            NodeId::new(3),
            MessageClass::Request,
            1,
            0,
        ));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_packet_rejected() {
        let mut core = small_core();
        core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            6,
            0,
        ));
    }

    #[test]
    fn staged_arrival_lifecycle() {
        let mut core = small_core();
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(8),
            MessageClass::Request,
            2,
            0,
        ));
        let node = NodeId::new(4);
        let port = Port::Dir(noc_core::topology::Direction::North);
        core.input_mut(node, port.index())
            .install(0, VcOccupant::reserved(id, 2, 0));
        core.stage_flit(node, port, 0);
        // Not yet visible.
        assert_eq!(
            core.input(node, port.index()).occupant(0).unwrap().arrived,
            0
        );
        core.apply_staged();
        let occ = core.input(node, port.index()).occupant(0).unwrap();
        assert_eq!(occ.arrived, 1);
        assert!(occ.head_present());
        assert_eq!(core.occupied_vcs(node), 1);
    }

    #[test]
    fn drain_frees_vc_at_apply() {
        let mut core = small_core();
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(8),
            MessageClass::Request,
            1,
            0,
        ));
        let node = NodeId::new(4);
        let port = Port::Local;
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        occ.sent = 1;
        core.input_mut(node, port.index()).install(0, occ);
        core.mark_drained(node, port, 0);
        assert!(!core.input(node, port.index()).is_free(0));
        core.apply_staged();
        assert!(core.input(node, port.index()).is_free(0));
    }

    #[test]
    #[should_panic(expected = "staged moves pending")]
    fn advance_cycle_with_pending_moves_panics() {
        let mut core = small_core();
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(8),
            MessageClass::Request,
            1,
            0,
        ));
        core.input_mut(NodeId::new(0), 0)
            .install(0, VcOccupant::reserved(id, 1, 0));
        core.stage_flit(NodeId::new(0), Port::from_index(0), 0);
        core.advance_cycle();
    }

    #[test]
    fn take_vc_packet_frees_immediately() {
        let mut core = small_core();
        let id = core.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(8),
            MessageClass::Request,
            1,
            0,
        ));
        let node = NodeId::new(2);
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        core.input_mut(node, 0).install(0, occ);
        let got = core.take_vc_packet(node, Port::from_index(0), 0);
        assert_eq!(got, id);
        assert!(core.input(node, 0).is_free(0));
    }

    #[test]
    fn linkset_insert_and_collision() {
        let mesh = Mesh::new(4, 4);
        let mut set = LinkSet::new(mesh);
        let l = mesh
            .link(NodeId::new(0), noc_core::topology::Direction::East)
            .unwrap();
        assert!(set.insert(l), "first insert is new");
        assert!(!set.insert(l), "second insert reports collision");
        assert!(set.contains(l));
        assert_eq!(set.count(), 1);
        set.clear();
        assert_eq!(set.count(), 0);
        assert!(!set.contains(l));
    }

    #[test]
    fn rotating_order_visits_all_nodes() {
        let core = small_core();
        let visited: std::collections::HashSet<_> = core.nodes_rotating().collect();
        assert_eq!(visited.len(), 9);
    }
}
