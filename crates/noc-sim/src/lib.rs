//! Cycle-accurate NoC simulator substrate.
//!
//! This crate is the reproduction's stand-in for gem5's Garnet 2.0: a
//! cycle-driven mesh network with 1-cycle routers, credit-based virtual
//! cut-through flow control, a single packet per VC and 5-flit buffers
//! (Table II of the FastPass paper). Flow-control *schemes* — FastPass
//! itself and the seven baselines — plug in through the [`Scheme`] trait
//! and drive the shared per-cycle machinery in [`regular`].
//!
//! # Architecture
//!
//! * [`vc`] — the virtual-channel occupant record. Because at most one
//!   packet occupies a VC, flit positions are tracked with counters
//!   rather than per-flit objects, while remaining flit-accurate in time.
//! * [`arena`] — flat struct-of-arrays storage for every VC buffer in
//!   the network, with word-level occupancy masks; the hot loops operate
//!   on these words directly.
//! * [`router`] — per-router state: arbitration pointers and the
//!   ejection stream.
//! * [`ni`] — network interfaces: per-class injection/ejection queues,
//!   the open-loop source queue, and MSHR-based regeneration of dropped
//!   requests.
//! * [`network`] — [`NetworkCore`], owning routers, NIs and the packet
//!   store, plus the staged flit-move machinery that keeps movement to
//!   one hop per cycle.
//! * [`routing`] — routing policies: XY, YX, west-first, fully adaptive,
//!   and Duato-style escape-VC routing.
//! * [`regular`] — the shared credit-based pipeline: ejection, switch
//!   allocation, injection, and staged-arrival application.
//! * [`waitgraph`] — wait-for-graph construction and cycle detection
//!   (used by SPIN and by deadlock instrumentation in tests).
//! * [`engine`] — the [`engine::Simulation`] driver,
//!   workloads, warmup/measurement windows and saturation sweeps.
//! * [`inspect`] — link-utilization heatmaps and congestion reports.
//! * [`audit`] — deep structural invariant checks over the whole
//!   network state (used at test checkpoints and when developing new
//!   schemes).
//!
//! Schemes in downstream crates (FastPass, the baselines) are built
//! exclusively on the public API of this crate — they are clients of the
//! substrate exactly as a gem5 scheme is a client of Garnet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod arena;
pub mod audit;
pub mod batch;
pub mod engine;
pub mod inspect;
pub mod network;
pub mod ni;
pub mod probe;
pub mod regular;
pub mod router;
pub mod routing;
pub mod sampler;
pub mod scheme;
pub mod vc;
pub mod waitgraph;

pub use arena::{InputMut, InputRef, VcArena};
pub use batch::run_windows_batched;
pub use engine::{Simulation, Workload};
pub use network::{LinkSet, NetworkCore};
pub use probe::{Phase, PhaseProbe};
pub use sampler::{Sampler, SamplerConfig, WindowSample};
pub use scheme::{ExportItem, Scheme, SchemeProperties, StateExport};
