//! The regular pass: shared credit-based virtual cut-through pipeline.
//!
//! Every scheme's per-cycle step ultimately calls [`advance`], which
//! performs one cycle of the paper's "regular pass" (§III-A): route
//! computation + VC allocation for new head flits, switch allocation and
//! traversal (one flit per input and output port per cycle), ejection
//! into per-class NI queues, and injection from NI queues — all under the
//! single-packet-per-VC VCT discipline of Table II.
//!
//! Schemes influence the pipeline through [`AdvanceCtx`]: FastPass
//! suppresses the links its lanes occupy this cycle (the lookahead signal
//! of §III-C5) and preempts ejection ports; DRAIN freezes regular
//! movement during drain epochs.

use crate::arena::{m_arrived, m_len, m_out_vc, m_route, m_sent, M_SENT, NO_OUT_VC};
use crate::network::{LinkSet, NetworkCore};
use crate::ni::{EjRefusal, EjectEntry, InjStream};
use crate::probe::Phase;
use crate::routing::{RouteReq, RoutingPolicy};
use crate::vc::VcOccupant;
use noc_core::packet::{MessageClass, PacketId};
use noc_core::topology::{Direction, LinkId, NodeId, Port, DIRECTIONS, NUM_PORTS};
use noc_trace::{trace, StallCause, TraceEvent};

/// Upper bound on the words of a `NUM_PORTS × vcs_per_port` switch
/// request bitset (`vcs_per_port ≤ 64`, so at most `NUM_PORTS` words).
/// Request vectors live in fixed stack arrays of this size; only the
/// first `ceil(NUM_PORTS * vcs / 64)` words are ever populated or handed
/// to the arbiters.
const SA_WORDS: usize = NUM_PORTS;

/// Sets requester bit `i` in a stacked request bitset.
#[inline]
fn set_bit(words: &mut [u64; SA_WORDS], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

/// Sets the `len` requester bits starting at `start` (used to retire a
/// whole input port from subsequent output-port arbitration once one of
/// its flits has been granted).
#[inline]
fn set_bit_range(words: &mut [u64; SA_WORDS], start: usize, len: usize) {
    let mut i = start;
    let end = start + len;
    while i < end {
        let (w, b) = (i / 64, i % 64);
        let chunk = (64 - b).min(end - i);
        let ones = if chunk == 64 {
            !0u64
        } else {
            ((1u64 << chunk) - 1) << b
        };
        words[w] |= ones;
        i += chunk;
    }
}

/// Per-cycle context handed to [`advance`] by the owning scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvanceCtx<'a> {
    /// Links a FastPass flight (or similar overlay) occupies this cycle;
    /// regular flits are not granted these links.
    pub suppressed: Option<&'a LinkSet>,
    /// Per-node flags: the ejection port is preempted by an overlay
    /// packet this cycle (ongoing regular ejections stall, §Qn3).
    pub eject_blocked: Option<&'a [bool]>,
    /// Freeze all regular movement (used by DRAIN during drain epochs).
    pub freeze: bool,
}

impl AdvanceCtx<'_> {
    fn link_suppressed(
        &self,
        core: &NetworkCore,
        node: NodeId,
        d: noc_core::topology::Direction,
    ) -> bool {
        match (self.suppressed, core.link(node, d)) {
            (Some(set), Some(l)) => set.contains(l),
            _ => false,
        }
    }

    fn eject_blocked_at(&self, node: NodeId) -> bool {
        self.eject_blocked.is_some_and(|v| v[node.index()])
    }
}

/// Advances the regular pass by one cycle.
///
/// Call exactly once per simulated cycle (schemes wrap it); it ends by
/// applying all staged flit arrivals, so the network is in a consistent
/// end-of-cycle state afterwards.
///
/// The loop is activity-proportional: it snapshots the *active set* —
/// nodes with ≥1 occupied router VC or injection-side NI work — in
/// rotating order at cycle start and runs every stage over only that
/// worklist. Skipping an inactive node is behavior-identical to
/// processing it: with no occupants, no stage finds a head to route, a
/// flit to move, or an ejection candidate, every round-robin arbiter sees
/// an all-false request vector (which leaves its pointer untouched — see
/// `arbiter::tests::grants_nothing_when_idle`), and an idle NI injects
/// nothing. Nodes that *become* active mid-cycle (a downstream VC
/// reservation, a staged flit) are no-ops for the rest of this cycle in
/// the unskipped pipeline too — reservations have no arrived flits and
/// staged arrivals apply only at end of cycle — so the snapshot loses
/// nothing. The worklist is a scratch buffer owned by [`NetworkCore`] and
/// the switch-request bitsets are fixed stack words, making the
/// steady-state loop allocation-free.
pub fn advance(core: &mut NetworkCore, policy: &mut dyn RoutingPolicy, ctx: &AdvanceCtx<'_>) {
    if !ctx.freeze {
        let mut nodes = core.take_advance_scratch();
        nodes.clear();
        nodes.extend(core.nodes_rotating().filter(|&n| core.node_active(n)));
        core.probe_begin(Phase::RouteAlloc);
        for &n in &nodes {
            route_and_allocate(core, policy, n);
        }
        core.probe_end(Phase::RouteAlloc);
        core.probe_begin(Phase::SwitchAlloc);
        for &n in &nodes {
            switch_traversal(core, ctx, n);
        }
        core.probe_end(Phase::SwitchAlloc);
        core.probe_begin(Phase::Inject);
        for &n in &nodes {
            injection(core, n);
        }
        core.probe_end(Phase::Inject);
        core.put_advance_scratch(nodes);
    }
    core.probe_begin(Phase::ApplyStaged);
    core.apply_staged();
    core.probe_end(Phase::ApplyStaged);
}

/// Route computation + downstream VC allocation for head packets that do
/// not yet hold a route.
fn route_and_allocate(core: &mut NetworkCore, policy: &mut dyn RoutingPolicy, node: NodeId) {
    let ni = node.index();
    for p in 0..NUM_PORTS {
        // Visit only occupied VCs that do not yet hold a route — the
        // routed word keeps already-allocated packets out of this scan
        // entirely. The mask snapshot stays valid because this loop only
        // mutates the current slot's route fields and installs
        // reservations at *neighbor* routers.
        let w = core.arena.word(ni, p);
        let mut mask = core.arena.occ[w] & !core.arena.routed[w];
        while mask != 0 {
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s = core.arena.slot(ni, p, vc);
            // head_present: the head flit is here and nothing was sent.
            let m = core.arena.meta[s];
            if m_arrived(m) == 0 || m_sent(m) != 0 {
                continue;
            }
            let pkt_id = core.arena.pkt[s];
            // One store lookup for the fields routing reads; no clone.
            let req = RouteReq::new(core, node, Port::from_index(p), vc, pkt_id);
            let Some(dec) = policy.route(core, &req) else {
                if core.trace.counters_on() {
                    trace_route_blocked(core, node, pkt_id);
                }
                continue;
            };
            match dec.out_port {
                Port::Local => {
                    debug_assert_eq!(req.dst, node, "local route for a non-arrived packet");
                    core.arena.set_route(ni, p, vc, Port::Local);
                    if core.trace.events_on() {
                        trace_vc_alloc(core, node, pkt_id, Port::Local.index() as u8, 0);
                    }
                }
                Port::Dir(d) => {
                    let nbr = core
                        .neighbor(node, d)
                        .expect("policy routed off the mesh edge");
                    let in_port = Port::Dir(d.opposite()).index();
                    let cycle = core.cycle();
                    let len = core.store.get(pkt_id).len_flits;
                    // Reserve the downstream VC immediately so no other
                    // head can double-book it this cycle.
                    core.arena.install(
                        nbr.index(),
                        in_port,
                        dec.out_vc,
                        VcOccupant::reserved(pkt_id, len, cycle),
                    );
                    core.arena
                        .set_route_vc(ni, p, vc, Port::Dir(d), dec.out_vc as u8);
                    if core.trace.events_on() {
                        trace_vc_alloc(
                            core,
                            node,
                            pkt_id,
                            Port::Dir(d).index() as u8,
                            dec.out_vc as u8,
                        );
                    }
                }
            }
        }
    }
}

/// Switch allocation + traversal for one router: ejection first (Local
/// output), then the four direction outputs, at most one flit per input
/// and per output port. A single word-at-a-time prepass over the router's
/// `occ & routed` occupancy words builds the request bitsets of all five
/// output ports at once; the per-output loops then work purely on stack
/// words, so the hot loop touches each occupied slot once and never
/// allocates.
fn switch_traversal(core: &mut NetworkCore, ctx: &AdvanceCtx<'_>, node: NodeId) {
    let ni = node.index();
    // A router with no buffered packets has nothing to eject or forward
    // (injection streams its own staged flits separately).
    if core.arena.node_occupied(ni) == 0 {
        return;
    }
    let vcs = core.arena.vcs_per_port();
    let nw = (NUM_PORTS * vcs).div_ceil(64);
    if nw == 1 {
        // Every shipped configuration (vcs ≤ 12) fits a router's whole
        // requester space in one word; the specialized path drops the
        // multi-word bitset arrays and their zeroing entirely.
        switch_traversal_w1(core, ctx, node, vcs);
        return;
    }

    // Requester bitsets per output port, indexed by the slot's route.
    // Only routed occupants appear in `occ & routed`, and route stores a
    // valid output-port index for every such slot.
    let mut out_reqs = [[0u64; SA_WORDS]; NUM_PORTS];
    for p in 0..NUM_PORTS {
        let w = core.arena.word(ni, p);
        let mut mask = core.arena.occ[w] & core.arena.routed[w];
        while mask != 0 {
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let m = core.arena.meta[core.arena.slot(ni, p, vc)];
            if m_sent(m) < m_arrived(m) {
                set_bit(&mut out_reqs[m_route(m) as usize], p * vcs + vc);
            }
        }
    }

    // Requesters already consumed: an input port forwards at most one
    // flit per cycle, so a granted port's whole bit range is retired from
    // the remaining output arbitrations.
    let mut used_mask = [0u64; SA_WORDS];

    // With no eject lock and no Local-routed requester the stage is a
    // no-op even under tracing (`trace_eject_preempted` requires a lock;
    // `trace_eject_stalls` scans exactly the prepass candidate set), so
    // it can be skipped without perturbing stats or traces.
    let local_any = out_reqs[Port::Local.index()][..nw]
        .iter()
        .fold(0u64, |a, w| a | w);
    if local_any != 0 || core.router(node).eject_lock.is_some() {
        core.probe_begin(Phase::Eject);
        eject_stage(
            core,
            ctx,
            node,
            &mut used_mask,
            &out_reqs[Port::Local.index()],
            vcs,
            nw,
        );
        core.probe_end(Phase::Eject);
    }

    for d in DIRECTIONS {
        let Some(nbr) = core.neighbor(node, d) else {
            continue;
        };
        if ctx.link_suppressed(core, node, d) {
            if core.trace.counters_on() {
                trace_suppressed_stalls(core, node, d);
            }
            continue;
        }
        let mut reqs = [0u64; SA_WORDS];
        let mut any = 0u64;
        for w in 0..nw {
            reqs[w] = out_reqs[Port::Dir(d).index()][w] & !used_mask[w];
            any |= reqs[w];
        }
        if any == 0 {
            continue;
        }
        let out_idx = Port::Dir(d).index();
        let Some(winner) = core.router_mut(node).sa_rr[out_idx].grant_words(&reqs[..nw]) else {
            continue;
        };
        if core.trace.counters_on() {
            trace_sa_losers(core, node, &reqs[..nw], winner);
        }
        let (p, vc) = core.router(node).sa_decode(winner);
        set_bit_range(&mut used_mask, p * vcs, vcs);
        send_flit(core, node, p, vc, nbr, d);
    }
}

/// Single-word [`switch_traversal`]: identical stage sequence, request
/// bits, arbiter calls and trace hooks, with every bitset a plain `u64`
/// (requester index `p * vcs + vc` is always < 64 here).
fn switch_traversal_w1(core: &mut NetworkCore, ctx: &AdvanceCtx<'_>, node: NodeId, vcs: usize) {
    let ni = node.index();
    let mut out_reqs = [0u64; NUM_PORTS];
    for p in 0..NUM_PORTS {
        let w = core.arena.word(ni, p);
        let mut mask = core.arena.occ[w] & core.arena.routed[w];
        while mask != 0 {
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let m = core.arena.meta[core.arena.slot(ni, p, vc)];
            if m_sent(m) < m_arrived(m) {
                out_reqs[m_route(m) as usize] |= 1 << (p * vcs + vc);
            }
        }
    }

    let mut used_mask = 0u64;
    let local_reqs = out_reqs[Port::Local.index()];
    if local_reqs != 0 || core.router(node).eject_lock.is_some() {
        core.probe_begin(Phase::Eject);
        eject_stage_w1(core, ctx, node, &mut used_mask, local_reqs, vcs);
        core.probe_end(Phase::Eject);
    }

    for d in DIRECTIONS {
        let Some(nbr) = core.neighbor(node, d) else {
            continue;
        };
        if ctx.link_suppressed(core, node, d) {
            if core.trace.counters_on() {
                trace_suppressed_stalls(core, node, d);
            }
            continue;
        }
        let out_idx = Port::Dir(d).index();
        let reqs = out_reqs[out_idx] & !used_mask;
        if reqs == 0 {
            continue;
        }
        let Some(winner) = core.router_mut(node).sa_rr[out_idx].grant_words(&[reqs]) else {
            continue;
        };
        if core.trace.counters_on() {
            trace_sa_losers(core, node, &[reqs], winner);
        }
        let (p, vc) = core.router(node).sa_decode(winner);
        used_mask |= ((1u64 << vcs) - 1) << (p * vcs);
        send_flit(core, node, p, vc, nbr, d);
    }
}

/// Single-word [`eject_stage`]; see [`switch_traversal_w1`].
fn eject_stage_w1(
    core: &mut NetworkCore,
    ctx: &AdvanceCtx<'_>,
    node: NodeId,
    used_mask: &mut u64,
    local_reqs: u64,
    vcs: usize,
) {
    let ni = node.index();
    if ctx.eject_blocked_at(node) {
        if core.trace.counters_on() {
            trace_eject_preempted(core, node);
        }
        return; // Preempted by an overlay packet; the lock (if any) stalls.
    }
    if let Some((p, vc)) = core.router(node).eject_lock {
        debug_assert!(core.arena.is_occupied(ni, p, vc), "eject lock on empty VC");
        let m = core.arena.meta[core.arena.slot(ni, p, vc)];
        if m_sent(m) < m_arrived(m) {
            eject_flit(core, node, p, vc);
            *used_mask |= ((1u64 << vcs) - 1) << (p * vcs);
        }
        return; // Port held until the tail leaves.
    }
    // New grant.
    if core.trace.counters_on() {
        trace_eject_stalls(core, node);
    }
    let mut reqs = 0u64;
    let mut m = local_reqs;
    while m != 0 {
        let b = m.trailing_zeros() as usize;
        m &= m - 1;
        let s = core.arena.slot(ni, b / vcs, b % vcs);
        let pkt = core.arena.pkt[s];
        let class = core.store.get(pkt).class;
        if core.ni(node).ej_can_accept(class, pkt) {
            reqs |= 1 << b;
        }
    }
    if reqs == 0 {
        return;
    }
    let out_idx = Port::Local.index();
    let Some(winner) = core.router_mut(node).sa_rr[out_idx].grant_words(&[reqs]) else {
        return;
    };
    if core.trace.counters_on() {
        trace_sa_losers(core, node, &[reqs], winner);
    }
    let (p, vc) = core.router(node).sa_decode(winner);
    debug_assert!(
        core.arena.is_occupied(ni, p, vc),
        "switch-allocation winner must be occupied"
    );
    let pkt_id = core.arena.pkt[core.arena.slot(ni, p, vc)];
    let class = core.store.get(pkt_id).class;
    core.ni_mut(node).ej_begin(class, pkt_id);
    core.router_mut(node).eject_lock = Some((p, vc));
    if core.trace.events_on() {
        trace_sa_grant(core, node, pkt_id, Port::Local.index() as u8);
    }
    eject_flit(core, node, p, vc);
    *used_mask |= ((1u64 << vcs) - 1) << (p * vcs);
}

/// Moves one flit of `(node, p, vc)`'s occupant across link `d` to `nbr`.
fn send_flit(
    core: &mut NetworkCore,
    node: NodeId,
    p: usize,
    vc: usize,
    nbr: NodeId,
    d: noc_core::topology::Direction,
) {
    let cycle = core.cycle();
    debug_assert!(
        core.arena.is_occupied(node.index(), p, vc),
        "granted flit from empty VC"
    );
    let s = core.arena.slot(node.index(), p, vc);
    let m = core.arena.meta[s] + (1 << M_SENT);
    core.arena.meta[s] = m;
    core.arena.last_progress[s] = cycle;
    let pkt_id = core.arena.pkt[s];
    let out_vc_raw = m_out_vc(m);
    assert!(
        out_vc_raw != NO_OUT_VC,
        "direction route without VC allocation"
    );
    let out_vc = out_vc_raw as usize;
    let first = m_sent(m) == 1;
    let drained = m_sent(m) == m_len(m);
    if first {
        core.store.get_mut(pkt_id).hops += 1;
        if core.trace.events_on() {
            trace_sa_grant(core, node, pkt_id, Port::Dir(d).index() as u8);
        }
    }
    if let Some(l) = core.link(node, d) {
        core.count_link_flit(l);
        if core.trace.counters_on() {
            trace_link_traverse(core, node, pkt_id, l);
        }
    }
    core.stage_flit(nbr, Port::Dir(d.opposite()), out_vc);
    if drained {
        core.mark_drained(node, Port::from_index(p), vc);
    }
}

/// Ejection: continue the locked stream or grant a new one.
/// `local_reqs` is the prepass bitset of Local-routed flit-ready slots;
/// candidates are still filtered by NI admission here, bit by bit.
#[allow(clippy::too_many_arguments)]
fn eject_stage(
    core: &mut NetworkCore,
    ctx: &AdvanceCtx<'_>,
    node: NodeId,
    used_mask: &mut [u64; SA_WORDS],
    local_reqs: &[u64; SA_WORDS],
    vcs: usize,
    nw: usize,
) {
    let ni = node.index();
    if ctx.eject_blocked_at(node) {
        if core.trace.counters_on() {
            trace_eject_preempted(core, node);
        }
        return; // Preempted by an overlay packet; the lock (if any) stalls.
    }
    if let Some((p, vc)) = core.router(node).eject_lock {
        debug_assert!(core.arena.is_occupied(ni, p, vc), "eject lock on empty VC");
        let m = core.arena.meta[core.arena.slot(ni, p, vc)];
        if m_sent(m) < m_arrived(m) {
            eject_flit(core, node, p, vc);
            set_bit_range(used_mask, p * vcs, vcs);
        }
        return; // Port held until the tail leaves.
    }
    // New grant.
    if core.trace.counters_on() {
        trace_eject_stalls(core, node);
    }
    let mut reqs = [0u64; SA_WORDS];
    let mut any = 0u64;
    for (w, reqs_w) in reqs.iter_mut().enumerate().take(nw) {
        let mut m = local_reqs[w];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = w * 64 + b;
            let s = core.arena.slot(ni, idx / vcs, idx % vcs);
            let pkt = core.arena.pkt[s];
            let class = core.store.get(pkt).class;
            if core.ni(node).ej_can_accept(class, pkt) {
                *reqs_w |= 1 << b;
                any = 1;
            }
        }
    }
    if any == 0 {
        return;
    }
    let out_idx = Port::Local.index();
    let Some(winner) = core.router_mut(node).sa_rr[out_idx].grant_words(&reqs[..nw]) else {
        return;
    };
    if core.trace.counters_on() {
        trace_sa_losers(core, node, &reqs[..nw], winner);
    }
    let (p, vc) = core.router(node).sa_decode(winner);
    debug_assert!(
        core.arena.is_occupied(ni, p, vc),
        "switch-allocation winner must be occupied"
    );
    let pkt_id = core.arena.pkt[core.arena.slot(ni, p, vc)];
    let class = core.store.get(pkt_id).class;
    core.ni_mut(node).ej_begin(class, pkt_id);
    core.router_mut(node).eject_lock = Some((p, vc));
    if core.trace.events_on() {
        trace_sa_grant(core, node, pkt_id, Port::Local.index() as u8);
    }
    eject_flit(core, node, p, vc);
    set_bit_range(used_mask, p * vcs, vcs);
}

/// Streams one flit into the NI; finishes the delivery on the tail.
fn eject_flit(core: &mut NetworkCore, node: NodeId, p: usize, vc: usize) {
    let cycle = core.cycle();
    // Grants come from the `occ & routed` prepass masks, so occupancy is
    // structural here (and in `send_flit` below); debug builds re-check.
    debug_assert!(
        core.arena.is_occupied(node.index(), p, vc),
        "ejecting VC must be occupied"
    );
    let s = core.arena.slot(node.index(), p, vc);
    let m = core.arena.meta[s] + (1 << M_SENT);
    core.arena.meta[s] = m;
    core.arena.last_progress[s] = cycle;
    let pkt_id = core.arena.pkt[s];
    let drained = m_sent(m) == m_len(m);
    if drained {
        core.mark_drained(node, Port::from_index(p), vc);
        let ready = cycle + core.cfg().ni_consume_cycles;
        let class = {
            let pkt = core.store.get_mut(pkt_id);
            pkt.eject_cycle = Some(cycle);
            pkt.class
        };
        core.ni_mut(node)
            .ej_commit(class, EjectEntry { pkt: pkt_id, ready });
        core.router_mut(node).eject_lock = None;
        if core.trace.counters_on() {
            trace_ejected(core, node, pkt_id, class.index());
        }
    }
}

/// NI-side injection: regeneration, source→queue refill, and streaming
/// one flit per cycle over the injection link into a Local input VC.
fn injection(core: &mut NetworkCore, node: NodeId) {
    if !core.ni(node).has_work() {
        // Node is active only because packets transit its router: no
        // stream to continue, nothing to regenerate, refill or grant.
        return;
    }
    let cycle = core.cycle();
    // MSHR regeneration of dropped requests.
    let regenerated = core.ni_mut(node).take_regenerated(cycle);
    for pkt in regenerated {
        let class = core.store.get(pkt).class;
        core.ni_mut(node).push_source_front(class, pkt);
    }
    core.ni_mut(node).refill_inj();

    // Continue an active injection stream: one flit per cycle.
    if let Some(stream) = core.ni(node).inj_stream {
        core.stage_flit(node, Port::Local, stream.vc);
        let ni = core.ni_mut(node);
        let s = ni
            .inj_stream
            .as_mut()
            .expect("stream checked Some immediately above");
        s.flits_sent += 1;
        if s.flits_sent == s.len {
            ni.inj_stream = None;
        }
        return;
    }

    // Start a new stream: round-robin over classes with a waiting head
    // packet and a free Local-port VC in the class's range.
    let mut reqs = [false; noc_core::packet::NUM_CLASSES];
    for (c, req) in reqs.iter_mut().enumerate() {
        let class = MessageClass::from_index(c);
        if let Some(head) = core.ni(node).inj_head(class) {
            let range = core.cfg().vc_range_for_class(c);
            *req = core
                .input(node, Port::Local.index())
                .free_vc_in(range)
                .is_some();
            if !*req && core.trace.counters_on() {
                trace_no_free_vc(core, node, head);
            }
        }
    }
    let Some(c) = core.router_mut(node).inj_class_rr.grant(&reqs) else {
        return;
    };
    let class = MessageClass::from_index(c);
    let range = core.cfg().vc_range_for_class(c);
    let vc = core
        .input(node, Port::Local.index())
        .free_vc_in(range)
        .expect("request vector promised a free VC");
    let pkt_id = core
        .ni_mut(node)
        .pop_inj(class)
        .expect("queue head vanished");
    let len = {
        let pkt = core.store.get_mut(pkt_id);
        pkt.inject_cycle = Some(cycle);
        pkt.len_flits
    };
    core.arena.install(
        node.index(),
        Port::Local.index(),
        vc,
        VcOccupant::reserved(pkt_id, len, cycle),
    );
    core.stage_flit(node, Port::Local, vc);
    if core.trace.counters_on() {
        trace_injected(core, node, pkt_id, c, vc as u8);
    }
    core.ni_mut(node).inj_stream = if len > 1 {
        Some(InjStream {
            pkt: pkt_id,
            vc,
            flits_sent: 1,
            len,
        })
    } else {
        None
    };
}

// ---- tracing helpers ------------------------------------------------------
//
// Every hook below is `#[cold] #[inline(never)]` and reached only through
// a `counters_on()` / `events_on()` gate at the call site, so the hot
// functions pay exactly one predicted-not-taken branch per site when
// tracing is off — the event/counter code never bloats their bodies.

/// Records a `RouteBlocked` stall: the routing policy found no grantable
/// output for a parked head this cycle.
#[cold]
#[inline(never)]
fn trace_route_blocked(core: &mut NetworkCore, node: NodeId, pkt: PacketId) {
    core.trace.count_stall(node, StallCause::RouteBlocked);
    trace!(core.trace, node, || TraceEvent::Stall {
        pkt,
        cause: StallCause::RouteBlocked,
    });
}

/// Records a `VcAlloc` event (route computed + downstream VC reserved).
#[cold]
#[inline(never)]
fn trace_vc_alloc(core: &mut NetworkCore, node: NodeId, pkt: PacketId, out_port: u8, out_vc: u8) {
    trace!(core.trace, node, || TraceEvent::VcAlloc {
        pkt,
        out_port,
        out_vc,
    });
}

/// Records an `SaGrant` event (first flit of a packet wins an output).
#[cold]
#[inline(never)]
fn trace_sa_grant(core: &mut NetworkCore, node: NodeId, pkt: PacketId, out_port: u8) {
    trace!(core.trace, node, || TraceEvent::SaGrant { pkt, out_port });
}

/// Counts a regular-pipeline link traversal and records its event.
#[cold]
#[inline(never)]
fn trace_link_traverse(core: &mut NetworkCore, node: NodeId, pkt: PacketId, link: LinkId) {
    core.trace.count_link(node, false);
    trace!(core.trace, node, || TraceEvent::LinkTraverse { pkt, link });
}

/// Counts a completed tail ejection and records its event.
#[cold]
#[inline(never)]
fn trace_ejected(core: &mut NetworkCore, node: NodeId, pkt: PacketId, class: usize) {
    core.trace.count_eject(node, class);
    trace!(core.trace, node, || TraceEvent::Eject { pkt });
}

/// Counts a packet injection and records its event.
#[cold]
#[inline(never)]
fn trace_injected(core: &mut NetworkCore, node: NodeId, pkt: PacketId, class: usize, vc: u8) {
    core.trace.count_inject(node, class);
    trace!(core.trace, node, || TraceEvent::Inject { pkt, vc });
}

/// Records a `NoFreeVc` stall: a class head is waiting on a Local VC.
#[cold]
#[inline(never)]
fn trace_no_free_vc(core: &mut NetworkCore, node: NodeId, pkt: PacketId) {
    core.trace.count_stall(node, StallCause::NoFreeVc);
    trace!(core.trace, node, || TraceEvent::Stall {
        pkt,
        cause: StallCause::NoFreeVc,
    });
}

/// Records a `LinkSuppressed` stall for every flit that was ready to
/// cross the suppressed link `node → d` this cycle. Cold: only reached
/// when tracing counters are enabled, and alloc-free like the rest of
/// the file (each iteration copies occupant fields out so the router
/// borrow ends before the tracer is touched).
#[cold]
#[inline(never)]
fn trace_suppressed_stalls(core: &mut NetworkCore, node: NodeId, d: Direction) {
    let ni = node.index();
    let route_d = Port::Dir(d).index() as u8;
    for p in 0..NUM_PORTS {
        let mut mask = core.arena.occ[core.arena.word(ni, p)];
        while mask != 0 {
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s = core.arena.slot(ni, p, vc);
            let m = core.arena.meta[s];
            if m_route(m) == route_d && m_sent(m) < m_arrived(m) {
                let pkt = core.arena.pkt[s];
                core.trace.count_stall(node, StallCause::LinkSuppressed);
                trace!(core.trace, node, || TraceEvent::Stall {
                    pkt,
                    cause: StallCause::LinkSuppressed,
                });
            }
        }
    }
}

/// Records an `SaLost` stall for every requester that lost this output
/// port's switch arbitration to `winner`. `reqs` is the word-packed
/// request bitset the arbiter saw. Cold: tracing-only.
#[cold]
#[inline(never)]
fn trace_sa_losers(core: &mut NetworkCore, node: NodeId, reqs: &[u64], winner: usize) {
    let ni = node.index();
    for (w, &word) in reqs.iter().enumerate() {
        let mut m = word;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = w * 64 + b;
            if idx == winner {
                continue;
            }
            let (p, vc) = core.router(node).sa_decode(idx);
            // Requests are only raised for occupied slots.
            let pkt = core.arena.pkt[core.arena.slot(ni, p, vc)];
            core.trace.count_stall(node, StallCause::SaLost);
            trace!(core.trace, node, || TraceEvent::Stall {
                pkt,
                cause: StallCause::SaLost,
            });
        }
    }
}

/// Records `EjBackpressure` / `EjReserved` stalls for arrived packets
/// whose ejection the NI refused this cycle. Cold: tracing-only.
#[cold]
#[inline(never)]
fn trace_eject_stalls(core: &mut NetworkCore, node: NodeId) {
    let ni = node.index();
    let route_local = Port::Local.index() as u8;
    for p in 0..NUM_PORTS {
        let mut mask = core.arena.occ[core.arena.word(ni, p)];
        while mask != 0 {
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let s = core.arena.slot(ni, p, vc);
            let m = core.arena.meta[s];
            let candidate = if m_route(m) == route_local && m_sent(m) < m_arrived(m) {
                Some(core.arena.pkt[s])
            } else {
                None
            };
            let Some(pkt) = candidate else { continue };
            let class = core.store.get(pkt).class;
            let Some(refusal) = core.ni(node).ej_refusal(class, pkt) else {
                continue;
            };
            let cause = match refusal {
                EjRefusal::Full => StallCause::EjBackpressure,
                EjRefusal::Reserved => StallCause::EjReserved,
            };
            core.trace.count_stall(node, cause);
            trace!(core.trace, node, || TraceEvent::Stall { pkt, cause });
        }
    }
}

/// Records an `EjPreempted` stall for the locked ejection stream (if
/// any) while the overlay holds the port. Cold: tracing-only.
#[cold]
#[inline(never)]
fn trace_eject_preempted(core: &mut NetworkCore, node: NodeId) {
    let Some((p, vc)) = core.router(node).eject_lock else {
        return;
    };
    let pkt = core.input(node, p).occupant(vc).map(|o| o.pkt);
    if let Some(pkt) = pkt {
        core.trace.count_stall(node, StallCause::EjPreempted);
        trace!(core.trace, node, || TraceEvent::Stall {
            pkt,
            cause: StallCause::EjPreempted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DorXy;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet, PacketId};
    use noc_core::topology::Direction;

    fn core(w: usize, h: usize) -> NetworkCore {
        NetworkCore::new(
            SimConfig::builder()
                .mesh(w, h)
                .vns(0)
                .vcs_per_vn(2)
                .seed(1)
                .build(),
        )
    }

    fn run_until_consumable(
        core: &mut NetworkCore,
        dst: NodeId,
        class: MessageClass,
        max_cycles: u64,
    ) -> Option<(PacketId, u64)> {
        let mut policy = DorXy;
        for _ in 0..max_cycles {
            advance(core, &mut policy, &AdvanceCtx::default());
            core.advance_cycle();
            let now = core.cycle();
            if let Some(p) = core.ni(dst).ej_consumable(class, now) {
                return Some((p, now));
            }
        }
        None
    }

    #[test]
    fn single_packet_end_to_end() {
        let mut c = core(4, 4);
        let src = NodeId::new(0);
        let dst = NodeId::new(15); // 6 hops away
        let id = c.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        let (got, _) = run_until_consumable(&mut c, dst, MessageClass::Request, 100)
            .expect("packet never delivered");
        assert_eq!(got, id);
        let pkt = c.store.get(id);
        assert_eq!(pkt.hops, 6);
        assert!(pkt.inject_cycle.is_some());
        let lat = pkt.latency().unwrap();
        // 1-cycle routers: one cycle per hop plus injection/ejection
        // overhead; single flit.
        assert!((6..=12).contains(&lat), "unexpected latency {lat}");
    }

    #[test]
    fn five_flit_packet_serializes() {
        let mut c1 = core(4, 4);
        let mut c5 = core(4, 4);
        let src = NodeId::new(0);
        let dst = NodeId::new(3);
        let a = c1.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        let b = c5.generate(Packet::new(src, dst, MessageClass::Request, 5, 0));
        run_until_consumable(&mut c1, dst, MessageClass::Request, 100).unwrap();
        run_until_consumable(&mut c5, dst, MessageClass::Request, 100).unwrap();
        let l1 = c1.store.get(a).latency().unwrap();
        let l5 = c5.store.get(b).latency().unwrap();
        assert_eq!(
            l5 - l1,
            4,
            "a 5-flit packet pays exactly 4 extra serialization cycles"
        );
    }

    #[test]
    fn conservation_and_delivery_of_many_packets() {
        let mut c = core(4, 4);
        let mut expected = Vec::new();
        for i in 0..8 {
            let src = NodeId::new(i);
            let dst = NodeId::new(15 - i);
            expected.push(c.generate(Packet::new(
                src,
                dst,
                MessageClass::Request,
                1 + (i as u8 % 5),
                0,
            )));
        }
        let mut policy = DorXy;
        let mut delivered = std::collections::HashSet::new();
        for _ in 0..500 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            let now = c.cycle();
            for n in c.mesh().nodes() {
                if let Some(p) = c.ni(n).ej_consumable(MessageClass::Request, now) {
                    c.ni_mut(n).pop_ej(MessageClass::Request);
                    delivered.insert(p);
                }
            }
            if delivered.len() == expected.len() {
                break;
            }
        }
        assert_eq!(delivered.len(), expected.len(), "all packets delivered");
        for id in expected {
            assert!(delivered.contains(&id));
        }
    }

    #[test]
    fn suppressed_link_blocks_movement() {
        let mut c = core(2, 1);
        let src = NodeId::new(0);
        let dst = NodeId::new(1);
        c.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        let mut suppressed = LinkSet::new(c.mesh());
        suppressed.insert(c.mesh().link(src, Direction::East).unwrap());
        let mut policy = DorXy;
        for _ in 0..50 {
            let ctx = AdvanceCtx {
                suppressed: Some(&suppressed),
                ..Default::default()
            };
            advance(&mut c, &mut policy, &ctx);
            c.advance_cycle();
        }
        assert_eq!(
            c.ni(dst).ej_consumable(MessageClass::Request, c.cycle()),
            None,
            "suppressed link must carry no flits"
        );
        // Unsuppress: delivery completes.
        assert!(run_until_consumable(&mut c, dst, MessageClass::Request, 50).is_some());
    }

    #[test]
    fn freeze_stops_everything() {
        let mut c = core(2, 1);
        let src = NodeId::new(0);
        let dst = NodeId::new(1);
        c.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        let mut policy = DorXy;
        for _ in 0..50 {
            let ctx = AdvanceCtx {
                freeze: true,
                ..Default::default()
            };
            advance(&mut c, &mut policy, &ctx);
            c.advance_cycle();
        }
        assert_eq!(
            c.ni(src).source_depth() + c.ni(src).inj_len(MessageClass::Request),
            1
        );
    }

    #[test]
    fn ejection_queue_backpressure_stalls_packets() {
        let mut c = NetworkCore::new(
            SimConfig::builder()
                .mesh(2, 1)
                .vns(0)
                .vcs_per_vn(2)
                .ej_queue_packets(1)
                .ni_consume_cycles(1)
                .build(),
        );
        let src = NodeId::new(0);
        let dst = NodeId::new(1);
        for _ in 0..3 {
            c.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        }
        let mut policy = DorXy;
        // Never consume: at most one packet can sit in the ejection queue.
        for _ in 0..200 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
        }
        assert_eq!(c.ni(dst).ej_len(MessageClass::Request), 1);
        // The others are stalled in the network / at the source, not lost.
        assert_eq!(c.resident_packets(), 3);
    }

    #[test]
    fn vc_contention_two_senders_one_receiver() {
        let mut c = core(3, 1);
        let a = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(2),
            MessageClass::Request,
            5,
            0,
        ));
        let b = c.generate(Packet::new(
            NodeId::new(1),
            NodeId::new(2),
            MessageClass::Request,
            5,
            0,
        ));
        let mut policy = DorXy;
        let mut got = Vec::new();
        for _ in 0..300 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            let now = c.cycle();
            let dst = NodeId::new(2);
            if let Some(p) = c.ni(dst).ej_consumable(MessageClass::Request, now) {
                c.ni_mut(dst).pop_ej(MessageClass::Request);
                got.push(p);
            }
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got.len(), 2);
        assert!(got.contains(&a) && got.contains(&b));
    }

    #[test]
    fn per_class_injection_round_robins() {
        let mut c = core(2, 1);
        let src = NodeId::new(0);
        let dst = NodeId::new(1);
        c.generate(Packet::new(src, dst, MessageClass::Request, 1, 0));
        c.generate(Packet::new(src, dst, MessageClass::Response, 1, 0));
        let mut policy = DorXy;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            let now = c.cycle();
            for class in [MessageClass::Request, MessageClass::Response] {
                if let Some(p) = c.ni(dst).ej_consumable(class, now) {
                    c.ni_mut(dst).pop_ej(class);
                    seen.insert(p);
                }
            }
        }
        assert_eq!(seen.len(), 2, "both classes make it through");
    }

    #[test]
    fn eject_preemption_stalls_and_resumes() {
        // A 5-flit packet starts ejecting; the overlay preempts the port
        // mid-stream; the stream must stall (not abort) and finish after.
        let mut c = core(2, 1);
        let src = NodeId::new(0);
        let dst = NodeId::new(1);
        let id = c.generate(Packet::new(src, dst, MessageClass::Request, 5, 0));
        let mut policy = DorXy;
        // Run until the ejection lock engages at the destination.
        let mut engaged_at = None;
        for _ in 0..60 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            if c.router(dst).eject_lock.is_some() {
                engaged_at = Some(c.cycle());
                break;
            }
        }
        let engaged_at = engaged_at.expect("ejection must start");
        // Preempt for 10 cycles: no progress, lock persists.
        let blocked = vec![false, true];
        for _ in 0..10 {
            let ctx = AdvanceCtx {
                eject_blocked: Some(&blocked),
                ..Default::default()
            };
            advance(&mut c, &mut policy, &ctx);
            c.advance_cycle();
        }
        assert!(
            c.router(dst).eject_lock.is_some(),
            "lock held through stall"
        );
        assert_eq!(
            c.ni(dst).ej_len(MessageClass::Request),
            0,
            "nothing committed during preemption"
        );
        // Release: the stream completes.
        for _ in 0..20 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
        }
        assert!(c.router(dst).eject_lock.is_none());
        assert_eq!(c.ni(dst).ej_len(MessageClass::Request), 1);
        let done = c.store.get(id).eject_cycle.unwrap();
        assert!(
            done > engaged_at + 10,
            "completion must reflect the stall ({done} vs engaged {engaged_at})"
        );
    }

    #[test]
    fn source_queue_latency_counts() {
        // With a tiny injection queue and a burst, later packets wait at
        // the source; their end-to-end latency must include that wait.
        let mut c = NetworkCore::new(
            SimConfig::builder()
                .mesh(2, 1)
                .vns(0)
                .vcs_per_vn(1)
                .inj_queue_packets(1)
                .build(),
        );
        let ids: Vec<_> = (0..6)
            .map(|_| {
                c.generate(Packet::new(
                    NodeId::new(0),
                    NodeId::new(1),
                    MessageClass::Request,
                    5,
                    0,
                ))
            })
            .collect();
        let mut policy = DorXy;
        let mut lats = Vec::new();
        for _ in 0..400 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            let now = c.cycle();
            let dst = NodeId::new(1);
            if c.ni(dst)
                .ej_consumable(MessageClass::Request, now)
                .is_some()
            {
                let e = c.ni_mut(dst).pop_ej(MessageClass::Request).unwrap();
                lats.push(c.store.get(e.pkt).latency().unwrap());
                c.store.remove(e.pkt);
            }
            if lats.len() == ids.len() {
                break;
            }
        }
        assert_eq!(lats.len(), 6);
        // Serialization: each subsequent packet waits ~5 more cycles.
        assert!(lats.windows(2).all(|w| w[1] > w[0]), "{lats:?}");
        assert!(lats[5] >= lats[0] + 5 * 4, "{lats:?}");
    }
}
