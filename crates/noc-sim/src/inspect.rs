//! Network introspection: link-utilization heatmaps, buffer occupancy
//! and hotspot reports.
//!
//! These are operator tools, not statistics for the paper's figures:
//! they answer "where is the congestion right now / where did the
//! flit-hops go" when debugging a scheme or a workload. All rendering is
//! plain ASCII so it works in test logs and terminals.

use crate::network::NetworkCore;
use noc_core::topology::{LinkId, NodeId, DIRECTIONS, NUM_PORTS};

/// Per-link utilization: flits carried divided by elapsed cycles.
///
/// Returns `(link, flits, utilization)` for every physical link, sorted
/// by flits descending.
pub fn link_utilization(core: &NetworkCore) -> Vec<(LinkId, u64, f64)> {
    let cycles = core.cycle().max(1) as f64;
    let mesh = core.mesh();
    let mut rows = Vec::new();
    for n in mesh.nodes() {
        for d in DIRECTIONS {
            if let Some(l) = mesh.link(n, d) {
                let flits = core.link_flits()[l.index()];
                rows.push((l, flits, flits as f64 / cycles));
            }
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    rows
}

/// The `k` busiest links with endpoints, for congestion reports.
pub fn hottest_links(core: &NetworkCore, k: usize) -> Vec<String> {
    let mesh = core.mesh();
    link_utilization(core)
        .into_iter()
        .take(k)
        .map(|(l, flits, util)| {
            let (from, d) = mesh.link_endpoints(l);
            let to = mesh.neighbor(from, d).expect("valid link");
            format!("{from}->{to} ({d}): {flits} flits, {util:.3} flits/cycle")
        })
        .collect()
}

/// Buffer occupancy per router: `(node, occupied VCs, total VCs)`.
pub fn occupancy(core: &NetworkCore) -> Vec<(NodeId, usize, usize)> {
    let vcs = core.cfg().vcs_per_port() * NUM_PORTS;
    core.mesh()
        .nodes()
        .map(|n| (n, core.occupied_vcs(n), vcs))
        .collect()
}

const SHADES: [char; 5] = ['.', ':', '+', '#', '@'];

fn shade(frac: f64) -> char {
    let idx = (frac * SHADES.len() as f64).floor() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

/// ASCII heatmap of per-node link utilization: each cell shows the mean
/// utilization of the node's outgoing links, `.` (idle) to `@` (hot).
pub fn link_heatmap(core: &NetworkCore) -> String {
    let mesh = core.mesh();
    let cycles = core.cycle().max(1) as f64;
    let mut out = String::new();
    for y in 0..mesh.height() {
        for x in 0..mesh.width() {
            let n = mesh.node(x, y);
            let (mut flits, mut links) = (0u64, 0u64);
            for d in DIRECTIONS {
                if let Some(l) = mesh.link(n, d) {
                    flits += core.link_flits()[l.index()];
                    links += 1;
                }
            }
            let util = flits as f64 / (links.max(1) as f64 * cycles);
            out.push(shade(util));
        }
        out.push('\n');
    }
    out
}

/// ASCII heatmap of buffer occupancy: each cell shows the fraction of
/// the router's VCs currently holding packets.
pub fn occupancy_heatmap(core: &NetworkCore) -> String {
    let mesh = core.mesh();
    let total = (core.cfg().vcs_per_port() * NUM_PORTS).max(1);
    let mut out = String::new();
    for y in 0..mesh.height() {
        for x in 0..mesh.width() {
            let n = mesh.node(x, y);
            let occ = core.occupied_vcs(n);
            out.push(shade(occ as f64 / total as f64));
        }
        out.push('\n');
    }
    out
}

/// One-paragraph congestion report: totals, the hottest links and both
/// heatmaps. Useful from examples and ad-hoc debugging.
pub fn congestion_report(core: &NetworkCore) -> String {
    let total_flits: u64 = core.link_flits().iter().sum();
    let mut s = format!(
        "cycle {}: {} flit-hops total, {} packets resident\n",
        core.cycle(),
        total_flits,
        core.resident_packets()
    );
    s.push_str("hottest links:\n");
    for line in hottest_links(core, 5) {
        s.push_str("  ");
        s.push_str(&line);
        s.push('\n');
    }
    s.push_str("link utilization:\n");
    s.push_str(&link_heatmap(core));
    s.push_str("buffer occupancy:\n");
    s.push_str(&occupancy_heatmap(core));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::DorXy;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};

    fn loaded_core() -> NetworkCore {
        let mut core =
            NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(2).build());
        for i in 0..8 {
            core.generate(Packet::new(
                NodeId::new(i),
                NodeId::new(15 - i),
                MessageClass::Request,
                5,
                0,
            ));
        }
        let mut policy = DorXy;
        for _ in 0..30 {
            advance(&mut core, &mut policy, &AdvanceCtx::default());
            core.advance_cycle();
        }
        core
    }

    #[test]
    fn utilization_counts_flits() {
        let core = loaded_core();
        let rows = link_utilization(&core);
        let total: u64 = rows.iter().map(|r| r.1).sum();
        assert!(total > 0, "traffic must have crossed links");
        // Sorted descending.
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Utilization bounded by 1 flit/cycle.
        for (_, _, util) in rows {
            assert!((0.0..=1.0).contains(&util));
        }
    }

    #[test]
    fn heatmaps_have_mesh_shape() {
        let core = loaded_core();
        let hm = link_heatmap(&core);
        let lines: Vec<&str> = hm.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.chars().count() == 4));
        for c in hm.chars().filter(|c| *c != '\n') {
            assert!(SHADES.contains(&c));
        }
        let om = occupancy_heatmap(&core);
        assert_eq!(om.lines().count(), 4);
    }

    #[test]
    fn idle_network_renders_cold() {
        let core = NetworkCore::new(SimConfig::builder().mesh(3, 3).vns(0).vcs_per_vn(1).build());
        let hm = link_heatmap(&core);
        assert!(hm.chars().filter(|c| *c != '\n').all(|c| c == '.'));
        assert!(hottest_links(&core, 3)[0].contains("0 flits"));
    }

    #[test]
    fn occupancy_tracks_buffers() {
        let core = loaded_core();
        let occ = occupancy(&core);
        assert_eq!(occ.len(), 16);
        for (_, used, total) in &occ {
            assert!(used <= total);
        }
    }

    #[test]
    fn report_is_complete() {
        let core = loaded_core();
        let r = congestion_report(&core);
        assert!(r.contains("flit-hops"));
        assert!(r.contains("hottest links"));
        assert!(r.contains("buffer occupancy"));
    }
}
