//! Phase profiling hooks: *where* does a simulated cycle go?
//!
//! The engine and the regular pipeline bracket their stages with
//! [`PhaseProbe::begin`]/[`PhaseProbe::end`] calls, routed through
//! [`NetworkCore::probe_begin`](crate::NetworkCore::probe_begin) /
//! [`probe_end`](crate::NetworkCore::probe_end). With no probe installed
//! (the default) each hook is a single predicted branch — the same
//! discipline as the trace hooks, so the hot path stays at its
//! benchmarked speed.
//!
//! This crate deliberately contains **no timing implementation**: the
//! determinism contract (enforced by `noc-lint`) bans wall-clock reads
//! in simulation crates, because a time-dependent branch anywhere in the
//! pipeline would make runs irreproducible. The probe *interface* lives
//! here; the `std::time::Instant`-based implementation lives in
//! `crates/bench`, outside the lint's determinism scope, and only ever
//! observes. [`NoopProbe`] is the in-crate reference implementation.
//!
//! Phases may nest: `SchemeStep` brackets the whole scheme step, and the
//! regular pipeline's stage phases (`RouteAlloc`, `SwitchAlloc`, `Eject`,
//! `Inject`, `ApplyStaged`) fire inside it. `Eject` additionally nests
//! inside `SwitchAlloc`, because ejection is the Local-output leg of
//! switch allocation. Implementations that want exclusive per-phase time
//! must therefore attribute *self time* (time spent in a phase minus its
//! nested phases), which a begin/end stack makes straightforward.

/// A bracketed region of the per-cycle pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Workload packet generation (`Workload::tick`).
    WorkloadTick,
    /// The scheme's whole step (contains the pipeline stage phases).
    SchemeStep,
    /// Route computation + downstream VC allocation.
    RouteAlloc,
    /// Switch allocation + link traversal (contains `Eject`).
    SwitchAlloc,
    /// Ejection into the NI (the Local-output leg of switch allocation).
    Eject,
    /// NI injection into router input VCs.
    Inject,
    /// End-of-cycle application of staged flit arrivals.
    ApplyStaged,
    /// Engine-side NI consumption (delivery to the simulated cores).
    NiConsume,
}

impl Phase {
    /// Number of phases (sizes fixed per-phase accumulator arrays).
    pub const COUNT: usize = 8;

    /// All phases, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::WorkloadTick,
        Phase::SchemeStep,
        Phase::RouteAlloc,
        Phase::SwitchAlloc,
        Phase::Eject,
        Phase::Inject,
        Phase::ApplyStaged,
        Phase::NiConsume,
    ];

    /// Dense index in `[0, COUNT)` for accumulator arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label (JSON keys, reports).
    pub fn label(self) -> &'static str {
        match self {
            Phase::WorkloadTick => "workload_tick",
            Phase::SchemeStep => "scheme_step",
            Phase::RouteAlloc => "route_alloc",
            Phase::SwitchAlloc => "switch_alloc",
            Phase::Eject => "eject",
            Phase::Inject => "inject",
            Phase::ApplyStaged => "apply_staged",
            Phase::NiConsume => "ni_consume",
        }
    }
}

/// Observer bracketing pipeline phases.
///
/// Implementations must be pure observers: a probe receives no simulator
/// state and must not influence any, so a probed run produces bitwise
/// identical [`NetStats`](noc_core::stats::NetStats) to an unprobed one.
/// `Send` for the same reason schemes are — simulations move across bench
/// worker threads whole.
///
/// `begin`/`end` calls are properly nested per the phase tree described
/// in the [module docs](self): every `end(p)` matches the most recent
/// unmatched `begin(p)`.
pub trait PhaseProbe: Send {
    /// A phase was entered.
    fn begin(&mut self, phase: Phase);
    /// The most recently entered phase was left.
    fn end(&mut self, phase: Phase);
}

/// The do-nothing probe: documents the interface, and gives tests a
/// cheap installable probe proving the hooks are transparent.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProbe;

impl PhaseProbe for NoopProbe {
    fn begin(&mut self, _phase: Phase) {}
    fn end(&mut self, _phase: Phase) {}
}

/// A probe that records begin/end call counts per phase — used by tests
/// to prove the hooks fire, balance, and nest correctly. Not a timer.
#[derive(Debug, Default)]
pub struct CountingProbe {
    /// `begin` calls per phase, indexed by [`Phase::index`].
    pub begins: [u64; Phase::COUNT],
    /// `end` calls per phase, indexed by [`Phase::index`].
    pub ends: [u64; Phase::COUNT],
    depth: usize,
    /// Maximum observed nesting depth.
    pub max_depth: usize,
}

impl PhaseProbe for CountingProbe {
    fn begin(&mut self, phase: Phase) {
        self.begins[phase.index()] += 1;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    fn end(&mut self, phase: Phase) {
        self.ends[phase.index()] += 1;
        self.depth = self.depth.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_labeled() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL must be in index order");
            assert!(!p.label().is_empty());
        }
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::COUNT, "labels must be unique");
    }

    #[test]
    fn counting_probe_tracks_depth() {
        let mut p = CountingProbe::default();
        p.begin(Phase::SchemeStep);
        p.begin(Phase::SwitchAlloc);
        p.begin(Phase::Eject);
        p.end(Phase::Eject);
        p.end(Phase::SwitchAlloc);
        p.end(Phase::SchemeStep);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.begins, p.ends);
    }
}
