//! Virtual-channel occupant records.
//!
//! Table II: virtual cut-through with a **single packet per VC** and
//! 5-flit buffers. A VC is therefore fully described by its occupant
//! packet plus two flit counters: how many of its flits have arrived into
//! this buffer and how many have been forwarded downstream. Cut-through
//! means a flit may be forwarded the cycle after it arrives, so the
//! counters never violate `sent <= arrived <= len`.
//!
//! Storage-wise the network keeps these fields unbundled, in the flat
//! struct-of-arrays [`VcArena`](crate::arena::VcArena); [`VcOccupant`] is
//! the `Copy` interchange record that installation, removal and the
//! read-only views materialize at the boundary.

use noc_core::packet::PacketId;
use noc_core::topology::Port;

/// The packet currently holding a VC, with its flit progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcOccupant {
    /// The resident packet.
    pub pkt: PacketId,
    /// Packet length in flits (cached to avoid store lookups in hot code).
    pub len: u8,
    /// Flits that have fully arrived into this buffer.
    pub arrived: u8,
    /// Flits forwarded out of this buffer (`sent <= arrived`).
    pub sent: u8,
    /// Output port allocated by route computation, once computed.
    pub route: Option<Port>,
    /// Downstream VC allocated to this packet, once allocated.
    pub out_vc: Option<usize>,
    /// Cycle the head flit arrived here (blocked-time bookkeeping for
    /// SPIN detection, SWAP duty and Pitstop absorption).
    pub head_arrival: u64,
    /// Cycle of the last forward progress (flit sent) from this buffer.
    pub last_progress: u64,
}

impl VcOccupant {
    /// A freshly reserved occupant: the downstream allocation exists but
    /// no flit has arrived yet.
    pub fn reserved(pkt: PacketId, len: u8, cycle: u64) -> Self {
        VcOccupant {
            pkt,
            len,
            arrived: 0,
            sent: 0,
            route: None,
            out_vc: None,
            head_arrival: cycle,
            last_progress: cycle,
        }
    }

    /// Whether at least the head flit is present and unsent (route can be
    /// computed / the packet is "at the head of the input buffer").
    pub fn head_present(&self) -> bool {
        self.arrived >= 1 && self.sent == 0
    }

    /// Whether every flit of the packet has arrived (needed before a
    /// FastPass upgrade or a SWAP/SPIN relocation can move the packet
    /// atomically).
    pub fn complete(&self) -> bool {
        self.arrived == self.len
    }

    /// Whether the packet is quiescent: fully here and none of it sent.
    /// Only quiescent packets can be relocated by SPIN/SWAP/Pitstop or
    /// upgraded by a FastPass prime.
    pub fn quiescent(&self) -> bool {
        self.complete() && self.sent == 0
    }

    /// Whether a flit is available to forward this cycle.
    pub fn flit_ready(&self) -> bool {
        self.sent < self.arrived
    }

    /// Whether the entire packet has been forwarded (VC can be freed).
    pub fn drained(&self) -> bool {
        self.sent == self.len
    }

    /// Cycles since the last forward progress.
    pub fn blocked_for(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::NodeId;

    fn pid(store: &mut PacketStore) -> PacketId {
        store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            5,
            0,
        ))
    }

    #[test]
    fn occupant_lifecycle() {
        let mut store = PacketStore::new();
        let p = pid(&mut store);
        let mut occ = VcOccupant::reserved(p, 5, 10);
        assert!(!occ.head_present());
        assert!(!occ.flit_ready());
        occ.arrived = 1;
        assert!(occ.head_present());
        assert!(occ.flit_ready());
        assert!(!occ.complete());
        occ.arrived = 5;
        assert!(occ.complete());
        assert!(occ.quiescent());
        occ.sent = 1;
        assert!(!occ.quiescent());
        assert!(!occ.head_present());
        occ.sent = 5;
        assert!(occ.drained());
        assert!(!occ.flit_ready());
    }

    #[test]
    fn blocked_time() {
        let mut store = PacketStore::new();
        let occ = VcOccupant::reserved(pid(&mut store), 1, 100);
        assert_eq!(occ.blocked_for(100), 0);
        assert_eq!(occ.blocked_for(150), 50);
        assert_eq!(occ.blocked_for(50), 0, "saturating, never negative");
    }
}
