//! Virtual-channel input units.
//!
//! Table II: virtual cut-through with a **single packet per VC** and
//! 5-flit buffers. A VC is therefore fully described by its occupant
//! packet plus two flit counters: how many of its flits have arrived into
//! this buffer and how many have been forwarded downstream. Cut-through
//! means a flit may be forwarded the cycle after it arrives, so the
//! counters never violate `sent <= arrived <= len`.

use noc_core::packet::PacketId;
use noc_core::topology::Port;

/// The packet currently holding a VC, with its flit progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcOccupant {
    /// The resident packet.
    pub pkt: PacketId,
    /// Packet length in flits (cached to avoid store lookups in hot code).
    pub len: u8,
    /// Flits that have fully arrived into this buffer.
    pub arrived: u8,
    /// Flits forwarded out of this buffer (`sent <= arrived`).
    pub sent: u8,
    /// Output port allocated by route computation, once computed.
    pub route: Option<Port>,
    /// Downstream VC allocated to this packet, once allocated.
    pub out_vc: Option<usize>,
    /// Cycle the head flit arrived here (blocked-time bookkeeping for
    /// SPIN detection, SWAP duty and Pitstop absorption).
    pub head_arrival: u64,
    /// Cycle of the last forward progress (flit sent) from this buffer.
    pub last_progress: u64,
}

impl VcOccupant {
    /// A freshly reserved occupant: the downstream allocation exists but
    /// no flit has arrived yet.
    pub fn reserved(pkt: PacketId, len: u8, cycle: u64) -> Self {
        VcOccupant {
            pkt,
            len,
            arrived: 0,
            sent: 0,
            route: None,
            out_vc: None,
            head_arrival: cycle,
            last_progress: cycle,
        }
    }

    /// Whether at least the head flit is present and unsent (route can be
    /// computed / the packet is "at the head of the input buffer").
    pub fn head_present(&self) -> bool {
        self.arrived >= 1 && self.sent == 0
    }

    /// Whether every flit of the packet has arrived (needed before a
    /// FastPass upgrade or a SWAP/SPIN relocation can move the packet
    /// atomically).
    pub fn complete(&self) -> bool {
        self.arrived == self.len
    }

    /// Whether the packet is quiescent: fully here and none of it sent.
    /// Only quiescent packets can be relocated by SPIN/SWAP/Pitstop or
    /// upgraded by a FastPass prime.
    pub fn quiescent(&self) -> bool {
        self.complete() && self.sent == 0
    }

    /// Whether a flit is available to forward this cycle.
    pub fn flit_ready(&self) -> bool {
        self.sent < self.arrived
    }

    /// Whether the entire packet has been forwarded (VC can be freed).
    pub fn drained(&self) -> bool {
        self.sent == self.len
    }

    /// Cycles since the last forward progress.
    pub fn blocked_for(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_progress)
    }
}

/// One virtual channel.
#[derive(Debug, Clone, Default)]
pub struct Vc {
    occupant: Option<VcOccupant>,
}

impl Vc {
    /// Whether the VC is free for a new packet (VCT admission: the whole
    /// buffer must be available).
    pub fn is_free(&self) -> bool {
        self.occupant.is_none()
    }

    /// Shared view of the occupant.
    pub fn occupant(&self) -> Option<&VcOccupant> {
        self.occupant.as_ref()
    }

    /// Mutable view of the occupant.
    pub fn occupant_mut(&mut self) -> Option<&mut VcOccupant> {
        self.occupant.as_mut()
    }
}

/// The input unit of one router port: its VCs plus an incrementally
/// maintained occupancy bitmask.
///
/// Installing and removing occupants goes through [`install`] and
/// [`take`] *on the input unit* (not on a [`Vc`] directly) so the mask —
/// the active-set signal the cycle loop uses to skip idle routers and
/// empty ports — can never drift from the buffers it summarizes.
///
/// [`install`]: InputUnit::install
/// [`take`]: InputUnit::take
#[derive(Debug, Clone)]
pub struct InputUnit {
    vcs: Vec<Vc>,
    occ_mask: u64,
}

impl InputUnit {
    /// Creates an input unit with `num_vcs` empty VCs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs > 64` (the occupancy mask is a single word).
    pub fn new(num_vcs: usize) -> Self {
        assert!(num_vcs <= 64, "at most 64 VCs per input port");
        InputUnit {
            vcs: vec![Vc::default(); num_vcs],
            occ_mask: 0,
        }
    }

    /// Installs a new occupant into VC `vc`, updating the occupancy
    /// mask.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already occupied — upstream VC allocation must
    /// never double-book a buffer — or if `vc` is out of range.
    pub fn install(&mut self, vc: usize, occ: VcOccupant) {
        assert!(self.vcs[vc].occupant.is_none(), "VC double-booked");
        self.vcs[vc].occupant = Some(occ);
        self.occ_mask |= 1 << vc;
    }

    /// Removes and returns the occupant of VC `vc` (freeing it), updating
    /// the occupancy mask.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn take(&mut self, vc: usize) -> Option<VcOccupant> {
        let occ = self.vcs[vc].occupant.take();
        if occ.is_some() {
            self.occ_mask &= !(1 << vc);
        }
        occ
    }

    /// Bitmask of occupied VC indices — O(1), maintained by
    /// [`install`](Self::install)/[`take`](Self::take). Hot loops iterate
    /// set bits instead of scanning every VC slot.
    pub fn occ_mask(&self) -> u64 {
        self.occ_mask
    }

    /// Number of currently occupied VCs — O(1), maintained by
    /// [`install`](Self::install)/[`take`](Self::take).
    pub fn occupied_count(&self) -> usize {
        self.occ_mask.count_ones() as usize
    }

    /// Number of VCs.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Access one VC.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn vc(&self, vc: usize) -> &Vc {
        &self.vcs[vc]
    }

    /// Mutable access to one VC.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn vc_mut(&mut self, vc: usize) -> &mut Vc {
        &mut self.vcs[vc]
    }

    /// Index of a free VC within `range`, if any.
    pub fn free_vc_in(&self, range: std::ops::Range<usize>) -> Option<usize> {
        range.clone().find(|&i| self.vcs[i].is_free())
    }

    /// Number of free VCs within `range` (the "credit count" congestion
    /// metric used by adaptive routing and TFC tokens).
    pub fn free_vcs_in(&self, range: std::ops::Range<usize>) -> usize {
        range.clone().filter(|&i| self.vcs[i].is_free()).count()
    }

    /// Iterator over `(vc_index, occupant)` pairs for occupied VCs.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, &VcOccupant)> {
        self.vcs
            .iter()
            .enumerate()
            .filter_map(|(i, vc)| vc.occupant().map(|o| (i, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::NodeId;

    fn pid(store: &mut PacketStore) -> PacketId {
        store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            5,
            0,
        ))
    }

    #[test]
    fn occupant_lifecycle() {
        let mut store = PacketStore::new();
        let p = pid(&mut store);
        let mut occ = VcOccupant::reserved(p, 5, 10);
        assert!(!occ.head_present());
        assert!(!occ.flit_ready());
        occ.arrived = 1;
        assert!(occ.head_present());
        assert!(occ.flit_ready());
        assert!(!occ.complete());
        occ.arrived = 5;
        assert!(occ.complete());
        assert!(occ.quiescent());
        occ.sent = 1;
        assert!(!occ.quiescent());
        assert!(!occ.head_present());
        occ.sent = 5;
        assert!(occ.drained());
        assert!(!occ.flit_ready());
    }

    #[test]
    fn blocked_time() {
        let mut store = PacketStore::new();
        let occ = VcOccupant::reserved(pid(&mut store), 1, 100);
        assert_eq!(occ.blocked_for(100), 0);
        assert_eq!(occ.blocked_for(150), 50);
        assert_eq!(occ.blocked_for(50), 0, "saturating, never negative");
    }

    #[test]
    fn install_take_maintains_count() {
        let mut store = PacketStore::new();
        let mut iu = InputUnit::new(2);
        assert!(iu.vc(0).is_free());
        assert_eq!(iu.occupied_count(), 0);
        iu.install(0, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert!(!iu.vc(0).is_free());
        assert!(iu.vc(0).occupant().is_some());
        assert_eq!(iu.occupied_count(), 1);
        let occ = iu.take(0).unwrap();
        assert_eq!(occ.len, 1);
        assert!(iu.vc(0).is_free());
        assert_eq!(iu.occupied_count(), 0);
        assert!(iu.take(0).is_none());
        assert_eq!(iu.occupied_count(), 0, "empty take must not underflow");
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn vc_double_install_panics() {
        let mut store = PacketStore::new();
        let mut iu = InputUnit::new(1);
        iu.install(0, VcOccupant::reserved(pid(&mut store), 1, 0));
        let p2 = pid(&mut store);
        iu.install(0, VcOccupant::reserved(p2, 1, 0));
    }

    #[test]
    fn input_unit_free_vc_search() {
        let mut store = PacketStore::new();
        let mut iu = InputUnit::new(4);
        assert_eq!(iu.free_vc_in(0..4), Some(0));
        assert_eq!(iu.free_vcs_in(0..4), 4);
        iu.install(0, VcOccupant::reserved(pid(&mut store), 1, 0));
        iu.install(1, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert_eq!(iu.free_vc_in(0..2), None);
        assert_eq!(iu.free_vc_in(0..4), Some(2));
        assert_eq!(iu.free_vcs_in(0..4), 2);
        assert_eq!(iu.free_vcs_in(2..4), 2);
        assert_eq!(iu.occupied().count(), 2);
        assert_eq!(iu.occupied_count(), 2);
    }

    #[test]
    fn free_vc_respects_subrange() {
        let mut iu = InputUnit::new(6);
        // VN 1 owns VCs 2..4 — a search there must not return VC 0.
        assert_eq!(iu.free_vc_in(2..4), Some(2));
        let mut store = PacketStore::new();
        iu.install(2, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert_eq!(iu.free_vc_in(2..4), Some(3));
    }
}
