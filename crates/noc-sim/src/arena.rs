//! Struct-of-arrays storage for every VC buffer in the network.
//!
//! The active-set rewrite (PR 2) made the cycle loop proportional to
//! *activity*; this layout makes the remaining work proportional to
//! *cache lines*. All per-VC state lives in flat vectors indexed by a
//! dense slot id — the five byte-sized fields (`len`, `arrived`, `sent`,
//! `route`, `out_vc`) packed into one `meta` word per slot so every
//! hot-path predicate is a single bounds-checked load —
//!
//! ```text
//! slot(node, port, vc) = (node * NUM_PORTS + port) * vcs_per_port + vc
//! ```
//!
//! and occupancy lives in one bitmask word per `(node, port)` (word index
//! `node * NUM_PORTS + port`), so route allocation, switch allocation and
//! the active-set scan operate word-at-a-time instead of chasing
//! `Option<VcOccupant>`s through nested per-router structs.
//!
//! Three word-level invariants are maintained by construction and checked
//! by the conservation audit:
//!
//! * **occupancy** — bit `vc` of `occ[word(n, p)]` is set iff slot
//!   `(n, p, vc)` holds a packet; every field array entry is meaningful
//!   only under a set bit.
//! * **routed** — `routed[w] ⊆ occ[w]`, and bit `vc` of `routed[w]` is
//!   set iff the occupant's route has been computed. Route allocation
//!   scans `occ & !routed`; switch allocation scans `occ & routed`.
//! * **counts** — `node_occupied[n]` equals the population count of node
//!   `n`'s five occupancy words (the router half of the active-set
//!   predicate, now O(1) per node).
//!
//! Mutator locality: occupants enter and leave slots *only* through
//! [`VcArena::install`] / [`VcArena::take`] (wrapped for external crates
//! by [`InputMut`]), so the masks can never drift from the fields they
//! summarize. `noc-lint`'s occupancy rule enforces that call sites stay
//! inside the relocation whitelist.

use crate::vc::VcOccupant;
use noc_core::packet::PacketId;
use noc_core::topology::{Port, NUM_PORTS};

/// `route` field sentinel: no route allocated.
pub(crate) const NO_ROUTE: u8 = u8::MAX;
/// `out_vc` field sentinel: no downstream VC allocated.
pub(crate) const NO_OUT_VC: u8 = u8::MAX;

/// Bit offset of the `len` byte in a packed meta word.
pub(crate) const M_LEN: u32 = 0;
/// Bit offset of the `arrived` byte in a packed meta word.
pub(crate) const M_ARRIVED: u32 = 8;
/// Bit offset of the `sent` byte in a packed meta word.
pub(crate) const M_SENT: u32 = 16;
/// Bit offset of the `route` byte in a packed meta word.
pub(crate) const M_ROUTE: u32 = 24;
/// Bit offset of the `out_vc` byte in a packed meta word.
pub(crate) const M_OUT_VC: u32 = 32;

/// `len` byte of a packed meta word.
#[inline]
pub(crate) fn m_len(m: u64) -> u8 {
    (m >> M_LEN) as u8
}

/// `arrived` byte of a packed meta word.
#[inline]
pub(crate) fn m_arrived(m: u64) -> u8 {
    (m >> M_ARRIVED) as u8
}

/// `sent` byte of a packed meta word.
#[inline]
pub(crate) fn m_sent(m: u64) -> u8 {
    (m >> M_SENT) as u8
}

/// `route` byte of a packed meta word ([`NO_ROUTE`] when unrouted).
#[inline]
pub(crate) fn m_route(m: u64) -> u8 {
    (m >> M_ROUTE) as u8
}

/// `out_vc` byte of a packed meta word ([`NO_OUT_VC`] when unallocated).
#[inline]
pub(crate) fn m_out_vc(m: u64) -> u8 {
    (m >> M_OUT_VC) as u8
}

/// Packs the five per-slot byte fields into one meta word.
#[inline]
pub(crate) fn pack_meta(len: u8, arrived: u8, sent: u8, route: u8, out_vc: u8) -> u64 {
    (len as u64) << M_LEN
        | (arrived as u64) << M_ARRIVED
        | (sent as u64) << M_SENT
        | (route as u64) << M_ROUTE
        | (out_vc as u64) << M_OUT_VC
}

/// Flat struct-of-arrays storage for all `(node, port, vc)` buffers.
///
/// Field vectors are `pub(crate)`: the hot pipeline (`regular`,
/// `network`) reads and advances flit counters in place; everything else
/// goes through [`InputRef`] / [`InputMut`] views obtained from
/// [`NetworkCore`](crate::network::NetworkCore).
#[derive(Debug, Clone)]
pub struct VcArena {
    vcs: usize,
    /// Resident packet per slot (valid only under a set occupancy bit).
    pub(crate) pkt: Vec<PacketId>,
    /// Packed per-slot flit state, one word per slot: `len`, `arrived`,
    /// `sent`, `route` and `out_vc` bytes at the [`M_LEN`]..[`M_OUT_VC`]
    /// offsets. One load serves every hot-path predicate on a slot, and
    /// `arrived`/`sent` advance by adding `1 << M_ARRIVED` /
    /// `1 << M_SENT` (no carry can escape a byte: both are bounded by
    /// `len < 255`).
    pub(crate) meta: Vec<u64>,
    /// Cycle the head flit arrived (blocked-time bookkeeping).
    pub(crate) head_arrival: Vec<u64>,
    /// Cycle of the last forward progress from the slot.
    pub(crate) last_progress: Vec<u64>,
    /// Occupancy bitmask, one word per `(node, port)`.
    pub(crate) occ: Vec<u64>,
    /// Routed-occupant bitmask (`routed ⊆ occ`), one word per
    /// `(node, port)`.
    pub(crate) routed: Vec<u64>,
    /// Occupied-VC count per node (popcount of its five `occ` words).
    node_occupied: Vec<u32>,
}

impl VcArena {
    /// Creates an empty arena for `num_nodes` routers with
    /// `vcs_per_port` VCs on each of their [`NUM_PORTS`] input ports.
    ///
    /// # Panics
    ///
    /// Panics if `vcs_per_port > 64` (occupancy is one word per port).
    pub(crate) fn new(num_nodes: usize, vcs_per_port: usize) -> Self {
        assert!(vcs_per_port <= 64, "at most 64 VCs per input port");
        let slots = num_nodes * NUM_PORTS * vcs_per_port;
        let words = num_nodes * NUM_PORTS;
        VcArena {
            vcs: vcs_per_port,
            pkt: vec![PacketId::PLACEHOLDER; slots],
            meta: vec![pack_meta(0, 0, 0, NO_ROUTE, NO_OUT_VC); slots],
            head_arrival: vec![0; slots],
            last_progress: vec![0; slots],
            occ: vec![0; words],
            routed: vec![0; words],
            node_occupied: vec![0; num_nodes],
        }
    }

    /// VCs per input port.
    #[inline]
    pub fn vcs_per_port(&self) -> usize {
        self.vcs
    }

    /// Occupancy-word index of `(node, port)`.
    #[inline]
    pub(crate) fn word(&self, node: usize, port: usize) -> usize {
        node * NUM_PORTS + port
    }

    /// Dense slot id of `(node, port, vc)`.
    #[inline]
    pub(crate) fn slot(&self, node: usize, port: usize, vc: usize) -> usize {
        (node * NUM_PORTS + port) * self.vcs + vc
    }

    /// Occupied VCs at `node` across all ports — O(1).
    #[inline]
    pub(crate) fn node_occupied(&self, node: usize) -> usize {
        self.node_occupied[node] as usize
    }

    /// Whether slot `(node, port, vc)` holds a packet.
    #[inline]
    pub(crate) fn is_occupied(&self, node: usize, port: usize, vc: usize) -> bool {
        self.occ[self.word(node, port)] & (1 << vc) != 0
    }

    /// Materializes the occupant of an **occupied** slot.
    #[inline]
    pub(crate) fn get(&self, s: usize) -> VcOccupant {
        let m = self.meta[s];
        VcOccupant {
            pkt: self.pkt[s],
            len: m_len(m),
            arrived: m_arrived(m),
            sent: m_sent(m),
            route: match m_route(m) {
                NO_ROUTE => None,
                i => Some(Port::from_index(i as usize)),
            },
            out_vc: match m_out_vc(m) {
                NO_OUT_VC => None,
                v => Some(v as usize),
            },
            head_arrival: self.head_arrival[s],
            last_progress: self.last_progress[s],
        }
    }

    /// Installs a new occupant into `(node, port, vc)`, updating the
    /// occupancy word, the routed word and the node count.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied — upstream VC allocation
    /// must never double-book a buffer — or if `vc` is out of range.
    pub(crate) fn install(&mut self, node: usize, port: usize, vc: usize, occ: VcOccupant) {
        assert!(vc < self.vcs, "VC index out of range");
        let w = self.word(node, port);
        assert!(self.occ[w] & (1 << vc) == 0, "VC double-booked");
        let s = self.slot(node, port, vc);
        self.pkt[s] = occ.pkt;
        self.meta[s] = pack_meta(
            occ.len,
            occ.arrived,
            occ.sent,
            occ.route.map_or(NO_ROUTE, |p| p.index() as u8),
            occ.out_vc.map_or(NO_OUT_VC, |v| v as u8),
        );
        self.head_arrival[s] = occ.head_arrival;
        self.last_progress[s] = occ.last_progress;
        self.occ[w] |= 1 << vc;
        if occ.route.is_some() {
            self.routed[w] |= 1 << vc;
        } else {
            self.routed[w] &= !(1 << vc);
        }
        self.node_occupied[node] += 1;
    }

    /// Removes and returns the occupant of `(node, port, vc)`, freeing
    /// the slot and updating the masks and the node count.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub(crate) fn take(&mut self, node: usize, port: usize, vc: usize) -> Option<VcOccupant> {
        assert!(vc < self.vcs, "VC index out of range");
        let w = self.word(node, port);
        if self.occ[w] & (1 << vc) == 0 {
            return None;
        }
        let occ = self.get(self.slot(node, port, vc));
        self.occ[w] &= !(1 << vc);
        self.routed[w] &= !(1 << vc);
        self.node_occupied[node] -= 1;
        Some(occ)
    }

    /// Records the route decision for an occupied slot, keeping the
    /// routed word in sync (the slot leaves the `occ & !routed` scan and
    /// enters the `occ & routed` switch-request scan).
    #[inline]
    pub(crate) fn set_route(&mut self, node: usize, port: usize, vc: usize, out: Port) {
        let s = self.slot(node, port, vc);
        self.meta[s] = (self.meta[s] & !(0xFFu64 << M_ROUTE)) | ((out.index() as u64) << M_ROUTE);
        let w = self.word(node, port);
        self.routed[w] |= 1 << vc;
    }

    /// [`set_route`](Self::set_route) plus the downstream VC allocation,
    /// in one read-modify-write of the slot's meta word (the direction
    /// branch of route allocation always records both together).
    #[inline]
    pub(crate) fn set_route_vc(
        &mut self,
        node: usize,
        port: usize,
        vc: usize,
        out: Port,
        out_vc: u8,
    ) {
        let s = self.slot(node, port, vc);
        self.meta[s] = (self.meta[s] & !((0xFFu64 << M_ROUTE) | (0xFFu64 << M_OUT_VC)))
            | ((out.index() as u64) << M_ROUTE)
            | ((out_vc as u64) << M_OUT_VC);
        let w = self.word(node, port);
        self.routed[w] |= 1 << vc;
    }
}

/// Read-only view of one input port's VCs, in the shape the pre-arena
/// `InputUnit` API had. Occupants are materialized by value (they are
/// small `Copy` records).
#[derive(Debug, Clone, Copy)]
pub struct InputRef<'a> {
    arena: &'a VcArena,
    node: usize,
    port: usize,
}

impl<'a> InputRef<'a> {
    pub(crate) fn new(arena: &'a VcArena, node: usize, port: usize) -> Self {
        InputRef { arena, node, port }
    }

    /// Bitmask of occupied VC indices — O(1).
    pub fn occ_mask(&self) -> u64 {
        self.arena.occ[self.arena.word(self.node, self.port)]
    }

    /// Number of currently occupied VCs — O(1).
    pub fn occupied_count(&self) -> usize {
        self.occ_mask().count_ones() as usize
    }

    /// Number of VCs.
    pub fn num_vcs(&self) -> usize {
        self.arena.vcs_per_port()
    }

    /// The occupant of VC `vc`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn occupant(&self, vc: usize) -> Option<VcOccupant> {
        assert!(vc < self.num_vcs(), "VC index out of range");
        if self.occ_mask() & (1 << vc) == 0 {
            return None;
        }
        Some(self.arena.get(self.arena.slot(self.node, self.port, vc)))
    }

    /// Whether VC `vc` is free for a new packet (VCT admission: the whole
    /// buffer must be available).
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn is_free(&self, vc: usize) -> bool {
        assert!(vc < self.num_vcs(), "VC index out of range");
        self.occ_mask() & (1 << vc) == 0
    }

    /// Index of a free VC within `range`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `range` extends past the port's VCs.
    pub fn free_vc_in(&self, range: std::ops::Range<usize>) -> Option<usize> {
        let free = !self.occ_mask() & Self::range_mask(range, self.num_vcs());
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    /// Number of free VCs within `range` (the "credit count" congestion
    /// metric used by adaptive routing and TFC tokens).
    ///
    /// # Panics
    ///
    /// Panics if `range` extends past the port's VCs.
    pub fn free_vcs_in(&self, range: std::ops::Range<usize>) -> usize {
        (!self.occ_mask() & Self::range_mask(range, self.num_vcs())).count_ones() as usize
    }

    /// First free VC within `range` and the number of free VCs in it,
    /// from a single occupancy-word read — the adaptive-routing fast path
    /// (one call replaces a [`free_vc_in`](Self::free_vc_in) +
    /// [`free_vcs_in`](Self::free_vcs_in) pair re-reading the same word).
    ///
    /// # Panics
    ///
    /// Panics if `range` extends past the port's VCs.
    pub fn free_vc_and_credits(&self, range: std::ops::Range<usize>) -> (Option<usize>, usize) {
        let free = !self.occ_mask() & Self::range_mask(range, self.num_vcs());
        let vc = (free != 0).then(|| free.trailing_zeros() as usize);
        (vc, free.count_ones() as usize)
    }

    /// Iterator over `(vc_index, occupant)` pairs for occupied VCs, in
    /// ascending VC order.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, VcOccupant)> + 'a {
        let arena = self.arena;
        let base = arena.slot(self.node, self.port, 0);
        let mut mask = self.occ_mask();
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let vc = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some((vc, arena.get(base + vc)))
        })
    }

    fn range_mask(range: std::ops::Range<usize>, vcs: usize) -> u64 {
        assert!(range.end <= vcs, "VC range out of bounds");
        if range.start >= range.end {
            return 0;
        }
        let width = range.end - range.start;
        let ones = if width >= 64 {
            !0u64
        } else {
            (1u64 << width) - 1
        };
        ones << range.start
    }
}

/// Mutating view of one input port: occupant installation and removal.
/// This is the only route into arena mutation from outside `noc-sim`'s
/// pipeline, and call sites are locked to the relocation whitelist by
/// `noc-lint`'s occupancy rule.
#[derive(Debug)]
pub struct InputMut<'a> {
    arena: &'a mut VcArena,
    node: usize,
    port: usize,
}

impl<'a> InputMut<'a> {
    pub(crate) fn new(arena: &'a mut VcArena, node: usize, port: usize) -> Self {
        InputMut { arena, node, port }
    }

    /// Installs a new occupant into VC `vc`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already occupied ("VC double-booked") or out
    /// of range.
    pub fn install(&mut self, vc: usize, occ: VcOccupant) {
        self.arena.install(self.node, self.port, vc, occ);
    }

    /// Removes and returns the occupant of VC `vc` (freeing it).
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn take(&mut self, vc: usize) -> Option<VcOccupant> {
        self.arena.take(self.node, self.port, vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::packet::{MessageClass, Packet, PacketStore};
    use noc_core::topology::{Direction, NodeId};

    fn pid(store: &mut PacketStore) -> PacketId {
        store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            5,
            0,
        ))
    }

    fn view(arena: &VcArena, node: usize, port: usize) -> InputRef<'_> {
        InputRef::new(arena, node, port)
    }

    #[test]
    fn install_take_maintains_count_and_masks() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(4, 2);
        assert!(view(&a, 1, 0).is_free(0));
        assert_eq!(view(&a, 1, 0).occupied_count(), 0);
        a.install(1, 0, 0, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert!(!view(&a, 1, 0).is_free(0));
        assert!(view(&a, 1, 0).occupant(0).is_some());
        assert_eq!(view(&a, 1, 0).occupied_count(), 1);
        assert_eq!(a.node_occupied(1), 1);
        assert_eq!(a.node_occupied(0), 0, "counts are per node");
        let occ = a.take(1, 0, 0).unwrap();
        assert_eq!(occ.len, 1);
        assert!(view(&a, 1, 0).is_free(0));
        assert_eq!(a.node_occupied(1), 0);
        assert!(a.take(1, 0, 0).is_none());
        assert_eq!(a.node_occupied(1), 0, "empty take must not underflow");
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_install_panics() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(1, 1);
        a.install(0, 0, 0, VcOccupant::reserved(pid(&mut store), 1, 0));
        let p2 = pid(&mut store);
        a.install(0, 0, 0, VcOccupant::reserved(p2, 1, 0));
    }

    #[test]
    fn free_vc_search() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(1, 4);
        assert_eq!(view(&a, 0, 2).free_vc_in(0..4), Some(0));
        assert_eq!(view(&a, 0, 2).free_vcs_in(0..4), 4);
        a.install(0, 2, 0, VcOccupant::reserved(pid(&mut store), 1, 0));
        a.install(0, 2, 1, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert_eq!(view(&a, 0, 2).free_vc_in(0..2), None);
        assert_eq!(view(&a, 0, 2).free_vc_in(0..4), Some(2));
        assert_eq!(view(&a, 0, 2).free_vcs_in(0..4), 2);
        assert_eq!(view(&a, 0, 2).free_vcs_in(2..4), 2);
        assert_eq!(view(&a, 0, 2).occupied().count(), 2);
        assert_eq!(view(&a, 0, 2).occupied_count(), 2);
        // Untouched ports are unaffected.
        assert_eq!(view(&a, 0, 1).occupied_count(), 0);
    }

    #[test]
    fn free_vc_respects_subrange() {
        let mut a = VcArena::new(1, 6);
        // VN 1 owns VCs 2..4 — a search there must not return VC 0.
        assert_eq!(view(&a, 0, 0).free_vc_in(2..4), Some(2));
        let mut store = PacketStore::new();
        a.install(0, 0, 2, VcOccupant::reserved(pid(&mut store), 1, 0));
        assert_eq!(view(&a, 0, 0).free_vc_in(2..4), Some(3));
    }

    #[test]
    fn occupant_roundtrips_all_fields() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(2, 4);
        let mut occ = VcOccupant::reserved(pid(&mut store), 5, 17);
        occ.arrived = 3;
        occ.sent = 1;
        occ.route = Some(Port::Dir(Direction::West));
        occ.out_vc = Some(3);
        occ.last_progress = 21;
        a.install(1, 3, 2, occ);
        assert_eq!(view(&a, 1, 3).occupant(2), Some(occ));
        assert_eq!(a.take(1, 3, 2), Some(occ));
    }

    #[test]
    fn routed_mask_tracks_route_state() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(1, 2);
        a.install(0, 0, 1, VcOccupant::reserved(pid(&mut store), 1, 0));
        let w = a.word(0, 0);
        assert_eq!(a.routed[w], 0, "unrouted install leaves routed clear");
        a.set_route(0, 0, 1, Port::Local);
        assert_eq!(a.routed[w], 1 << 1);
        assert_eq!(view(&a, 0, 0).occupant(1).unwrap().route, Some(Port::Local));
        a.take(0, 0, 1);
        assert_eq!(a.routed[w], 0, "take clears the routed bit");
        // Installing a pre-routed occupant (relocation) sets it again.
        let mut routed = VcOccupant::reserved(pid(&mut store), 1, 0);
        routed.route = Some(Port::Dir(Direction::East));
        a.install(0, 0, 0, routed);
        assert_eq!(a.routed[w], 1 << 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn install_out_of_range_vc_panics() {
        let mut store = PacketStore::new();
        let mut a = VcArena::new(1, 2);
        a.install(0, 0, 2, VcOccupant::reserved(pid(&mut store), 1, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn free_vc_range_past_port_panics() {
        let a = VcArena::new(1, 2);
        let _ = view(&a, 0, 0).free_vc_in(0..3);
    }
}
