//! The simulation driver: workloads, measurement windows, sweeps.

use crate::network::NetworkCore;
use crate::probe::{Phase, PhaseProbe};
use crate::sampler::{Sampler, SamplerConfig};
use crate::scheme::Scheme;
use noc_core::config::SimConfig;
use noc_core::packet::{MessageClass, Packet};
use noc_core::stats::NetStats;
use noc_core::topology::NodeId;
use noc_trace::{trace, TraceConfig, TraceEvent, Tracer};

/// A traffic workload driving a simulation.
///
/// Workloads create packets via [`NetworkCore::generate`] in
/// [`tick`](Workload::tick) and may react to deliveries in
/// [`on_consumed`](Workload::on_consumed) (closed-loop protocols inject
/// replies there). [`can_consume`](Workload::can_consume) models
/// processor-side backpressure — a stalled core stops draining its
/// request ejection queue, which is exactly the protocol-deadlock
/// scenario of §II.
///
/// Workloads must be [`Send`] for the same reason schemes are: the bench
/// harness runs each simulation on a worker thread, so the whole
/// `Simulation` (scheme + workload + core) has to move across threads.
pub trait Workload: Send {
    /// Called once per cycle before the scheme steps; generate new
    /// packets here.
    fn tick(&mut self, core: &mut NetworkCore);

    /// Called when the NI consumer takes a delivered packet; closed-loop
    /// workloads inject replies here.
    fn on_consumed(&mut self, core: &mut NetworkCore, pkt: &Packet) {
        let _ = (core, pkt);
    }

    /// Whether the node's consumer is currently willing to take packets
    /// of this class (sink classes should always be consumable —
    /// Lemma 3).
    fn can_consume(&self, node: NodeId, class: MessageClass) -> bool {
        let _ = (node, class);
        true
    }

    /// Closed-loop completion signal; open-loop workloads never finish.
    fn finished(&self, core: &NetworkCore) -> bool {
        let _ = core;
        false
    }
}

/// One simulation: a network, a scheme and a workload.
pub struct Simulation {
    /// The simulated network (public for inspection in tests/benches).
    pub core: NetworkCore,
    scheme: Box<dyn Scheme>,
    workload: Box<dyn Workload>,
    last_consumption: u64,
    consumed: u64,
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("scheme", &self.scheme.name())
            .field("cycle", &self.core.cycle())
            .field("consumed", &self.consumed)
            .finish()
    }
}

impl Simulation {
    /// Assembles a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's VN count does not match the scheme's
    /// requirement (a 6-VN scheme run with 0 VNs would deadlock by
    /// design, and vice versa wastes buffers silently).
    pub fn new(cfg: SimConfig, scheme: Box<dyn Scheme>, workload: Box<dyn Workload>) -> Self {
        assert_eq!(
            cfg.vns,
            scheme.required_vns(),
            "scheme {} requires {} VNs, config has {}",
            scheme.name(),
            scheme.required_vns(),
            cfg.vns
        );
        Simulation {
            core: NetworkCore::new(cfg),
            scheme,
            workload,
            last_consumption: 0,
            consumed: 0,
            sampler: None,
        }
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Shared access to the scheme (overlay inspection, state export for
    /// the model checker).
    pub fn scheme(&self) -> &dyn Scheme {
        self.scheme.as_ref()
    }

    /// Enables (or re-levels) tracing for all subsequent cycles.
    ///
    /// Tracing is observational only: a traced run produces bitwise
    /// identical [`NetStats`] to an untraced one (enforced by the
    /// `trace_gate` integration test).
    pub fn set_trace(&mut self, cfg: &TraceConfig) {
        self.core.enable_trace(cfg);
    }

    /// The tracer (disabled unless [`set_trace`](Self::set_trace) ran).
    pub fn tracer(&self) -> &Tracer {
        &self.core.trace
    }

    /// Installs a windowed sampler for all subsequent cycles.
    ///
    /// Like tracing, sampling is observational only: a sampled run
    /// produces bitwise identical [`NetStats`] to an unsampled one
    /// (enforced by the `sampler_gate` integration test). The sampler's
    /// delta baselines are re-based on the current counters here, and
    /// again at every [`reset_stats`](Self::reset_stats), so the series
    /// always covers exactly the live measurement window.
    pub fn set_sampler(&mut self, cfg: &SamplerConfig) {
        let mut s = Sampler::new(cfg);
        s.resync(&self.core);
        self.sampler = Some(s);
    }

    /// The installed sampler, if any.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Flushes the sampler's final partial window and returns the
    /// sampler. Call after the last [`run`](Self::run) and before
    /// reading [`Sampler::windows`]; otherwise counts accrued since the
    /// last window boundary are missing and window sums will not
    /// reconcile with end-of-run totals.
    pub fn finish_sampling(&mut self) -> Option<&Sampler> {
        let overlay = self.scheme.overlay_packets() as u64;
        if let Some(s) = self.sampler.as_mut() {
            s.flush(&self.core, overlay);
        }
        self.sampler.as_ref()
    }

    /// Installs a phase probe (see [`PhaseProbe`]); stages bracket
    /// themselves with it until [`take_probe`](Self::take_probe).
    pub fn set_probe(&mut self, probe: Box<dyn PhaseProbe>) {
        self.core.set_probe(probe);
    }

    /// Uninstalls and returns the phase probe, if any.
    pub fn take_probe(&mut self) -> Option<Box<dyn PhaseProbe>> {
        self.core.take_probe()
    }

    /// Simulates one cycle: workload tick → scheme step → NI consumption.
    pub fn step(&mut self) {
        self.core.probe_begin(Phase::WorkloadTick);
        self.workload.tick(&mut self.core);
        self.core.probe_end(Phase::WorkloadTick);
        self.core.probe_begin(Phase::SchemeStep);
        self.scheme.step(&mut self.core);
        self.core.probe_end(Phase::SchemeStep);
        self.core.probe_begin(Phase::NiConsume);
        self.consume();
        self.core.probe_end(Phase::NiConsume);
        self.core.stats.cycles += 1;
        self.core.advance_cycle();
        if self.sampler.is_some() {
            self.sample_tick();
        }
    }

    /// Closes a sampling window when one is due. Cold: reached only with
    /// a sampler installed; `step()` pays a single predicted branch.
    #[cold]
    #[inline(never)]
    fn sample_tick(&mut self) {
        let due = self
            .sampler
            .as_ref()
            .is_some_and(|s| self.core.cycle() >= s.next_due());
        if due {
            let overlay = self.scheme.overlay_packets() as u64;
            if let Some(s) = self.sampler.as_mut() {
                s.record_window(&self.core, overlay);
            }
        }
    }

    /// Whether the workload reports itself finished (closed-loop
    /// workloads stop the run early; open-loop ones never finish).
    /// [`run`](Self::run) checks this before every cycle, and the
    /// batched executor ([`crate::batch`]) must observe the identical
    /// predicate to stay cycle-for-cycle equivalent.
    pub fn workload_finished(&self) -> bool {
        self.workload.finished(&self.core)
    }

    /// Runs `cycles` cycles (or until a closed-loop workload finishes).
    /// Returns the cycles actually simulated.
    pub fn run(&mut self, cycles: u64) -> u64 {
        for i in 0..cycles {
            if self.workload.finished(&self.core) {
                return i;
            }
            self.step();
        }
        cycles
    }

    /// Standard open-loop methodology: run a warmup window with
    /// statistics discarded, then a measurement window, and return the
    /// measured statistics.
    pub fn run_windows(&mut self, warmup: u64, measure: u64) -> NetStats {
        self.run(warmup);
        self.reset_stats();
        self.run(measure);
        self.core.stats.clone()
    }

    /// Clears statistics (start of a measurement window). The new window
    /// records the current cycle as its start, so deliveries of packets
    /// generated *before* it (warmup carryover) are counted separately —
    /// see [`NetStats::delivered_carryover`].
    pub fn reset_stats(&mut self) {
        let nodes = self.core.mesh().num_nodes();
        let mut stats = NetStats::new(nodes);
        stats.window_start = self.core.cycle();
        self.core.stats = stats;
        if let Some(s) = self.sampler.as_mut() {
            s.resync(&self.core);
        }
    }

    /// Cycles since an NI last consumed a packet — a large value while
    /// packets are resident indicates a wedged network (deadlock or
    /// livelock); used by tests and the deadlock experiments.
    pub fn starvation_cycles(&self) -> u64 {
        if self.core.resident_packets() + self.scheme.overlay_packets() == 0 {
            0
        } else {
            self.core.cycle().saturating_sub(self.last_consumption)
        }
    }

    /// Total packets consumed by NIs over the simulation's lifetime.
    pub fn total_consumed(&self) -> u64 {
        self.consumed
    }

    /// Packets still anywhere in the system (network + NIs + overlay).
    pub fn in_flight(&self) -> usize {
        self.core.resident_packets() + self.scheme.overlay_packets()
    }

    /// Runs the full structural audit plus the global conservation
    /// checks (packet and credit conservation, occupancy-mask
    /// consistency), panicking with a readable report on any violation.
    ///
    /// Engine-level tests end with this; it is also the first thing to
    /// reach for when a scheme under development misbehaves.
    ///
    /// # Panics
    ///
    /// Panics when any audit check fails.
    pub fn assert_conserved(&self) {
        crate::audit::assert_conserved(&self.core, self.scheme.overlay_packets(), self.consumed);
    }

    fn consume(&mut self) {
        let now = self.core.cycle();
        for node in self.core.mesh().nodes() {
            // Visit only classes with queued deliveries, in ascending
            // class order — the same order the dense CLASSES loop used
            // (`can_consume` is a pure predicate, so skipping classes
            // with empty queues is unobservable).
            let mut classes = self.core.ni(node).ej_classes();
            while classes != 0 {
                let c = classes.trailing_zeros() as usize;
                classes &= classes - 1;
                let class = MessageClass::from_index(c);
                if !self.workload.can_consume(node, class) {
                    continue;
                }
                let Some(_) = self.core.ni(node).ej_consumable(class, now) else {
                    continue;
                };
                let entry = self
                    .core
                    .ni_mut(node)
                    .pop_ej(class)
                    .expect("ej_consumable promised a waiting packet");
                let pkt = self.core.store.remove(entry.pkt);
                trace!(self.core.trace, node, || TraceEvent::Consume {
                    pkt: entry.pkt,
                });
                self.core.stats.record_delivered(&pkt);
                self.workload.on_consumed(&mut self.core, &pkt);
                self.last_consumption = now;
                self.consumed += 1;
            }
        }
    }
}

/// Binary-searches the saturation throughput of a scheme (Fig. 8).
///
/// `make_sim` builds a fresh simulation for an injection rate in
/// packets/node/cycle; `zero_load_latency` is measured at the lowest rate
/// probed. Saturation is the highest rate whose average latency stays
/// below `3 × zero-load`, the standard NoC definition. The returned value
/// is the *accepted* throughput (packets/node/cycle) at that rate.
pub struct SaturationSearch {
    /// Warmup cycles per probe.
    pub warmup: u64,
    /// Measurement cycles per probe.
    pub measure: u64,
    /// Lower bound of the probed rate range.
    pub lo: f64,
    /// Upper bound of the probed rate range.
    pub hi: f64,
    /// Bisection steps (each step is one full simulation).
    pub steps: usize,
}

impl Default for SaturationSearch {
    fn default() -> Self {
        SaturationSearch {
            warmup: 10_000,
            measure: 20_000,
            lo: 0.005,
            hi: 1.0,
            steps: 8,
        }
    }
}

impl SaturationSearch {
    /// Runs the search. Returns `(saturation_rate, accepted_throughput)`.
    ///
    /// # Panics
    ///
    /// Panics if the zero-load probe never delivers a packet even after
    /// retrying with windows up to 8× longer. A silent `(lo, 0.0)` return
    /// here would masquerade as "saturated at the floor" when the scheme
    /// is actually wedged (or the floor rate generates no traffic in the
    /// window) — the NaN zero-load latency would poison every threshold
    /// comparison in the bisection.
    pub fn run(&self, mut make_sim: impl FnMut(f64) -> Simulation) -> (f64, f64) {
        let mut warmup = self.warmup;
        let mut measure = self.measure;
        let zero_load = loop {
            let mut sim = make_sim(self.lo);
            let stats = sim.run_windows(warmup, measure);
            let lat = stats.avg_latency();
            if lat.is_finite() {
                break lat;
            }
            if measure >= self.measure.saturating_mul(8) {
                panic!(
                    "saturation search: zero-load probe at rate {} delivered no packets \
                     after {warmup} warmup + {measure} measurement cycles ({} generated); \
                     the scheme appears wedged or the rate floor is too low",
                    self.lo, stats.generated,
                );
            }
            // Retry with a longer window: at very low rates a short
            // window can legitimately deliver nothing.
            warmup = warmup.saturating_mul(2).max(1);
            measure = measure.saturating_mul(2).max(1);
        };
        let threshold = zero_load * 3.0;
        let (mut lo, mut hi) = (self.lo, self.hi);
        let mut best = (self.lo, 0.0);
        for _ in 0..self.steps {
            let mid = (lo + hi) / 2.0;
            let mut sim = make_sim(mid);
            let stats = sim.run_windows(self.warmup, self.measure);
            let lat = stats.avg_latency();
            if lat.is_finite() && lat <= threshold {
                best = (mid, stats.throughput_packets());
                lo = mid;
            } else {
                hi = mid;
            }
        }
        best
    }
}

/// Minimal scheme + workload pair for in-crate tests (`engine`,
/// `batch`): XY-routed VCT with uniform-random single-class open-loop
/// traffic. Scheme crates proper live above `noc-sim`, so in-crate
/// tests bring their own.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::DorXy;
    use crate::scheme::SchemeProperties;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};
    use noc_core::rng::DetRng;
    use noc_core::topology::NodeId;

    pub(crate) struct PlainXy;
    impl Scheme for PlainXy {
        fn name(&self) -> &'static str {
            "plain-xy"
        }
        fn properties(&self) -> SchemeProperties {
            SchemeProperties {
                no_detection: true,
                protocol_deadlock_freedom: false,
                network_deadlock_freedom: true,
                full_path_diversity: false,
                high_throughput: false,
                low_power: false,
                scalable: true,
                no_misrouting: true,
            }
        }
        fn required_vns(&self) -> usize {
            0
        }
        fn step(&mut self, core: &mut NetworkCore) {
            advance(core, &mut DorXy, &AdvanceCtx::default());
        }
    }

    pub(crate) struct UniformReq {
        pub(crate) rate: f64,
        pub(crate) rng: DetRng,
    }
    impl Workload for UniformReq {
        fn tick(&mut self, core: &mut NetworkCore) {
            let n = core.mesh().num_nodes();
            let cycle = core.cycle();
            for src in 0..n {
                if self.rng.chance(self.rate) {
                    let mut dst = self.rng.range(0, n - 1);
                    if dst >= src {
                        dst += 1;
                    }
                    core.generate(Packet::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        MessageClass::Request,
                        1,
                        cycle,
                    ));
                }
            }
        }
    }

    /// A `side × side` XY/VCT simulation under uniform traffic, fully
    /// determined by `(side, rate, seed)`.
    pub(crate) fn synthetic_sim(side: usize, rate: f64, seed: u64) -> Simulation {
        Simulation::new(
            SimConfig::builder()
                .mesh(side, side)
                .vns(0)
                .vcs_per_vn(2)
                .seed(seed)
                .build(),
            Box::new(PlainXy),
            Box::new(UniformReq {
                rate,
                rng: DetRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::DorXy;
    use crate::scheme::SchemeProperties;
    use noc_core::packet::Packet;
    use noc_core::rng::DetRng;

    struct PlainXy;
    impl Scheme for PlainXy {
        fn name(&self) -> &'static str {
            "plain-xy"
        }
        fn properties(&self) -> SchemeProperties {
            SchemeProperties {
                no_detection: true,
                protocol_deadlock_freedom: false,
                network_deadlock_freedom: true,
                full_path_diversity: false,
                high_throughput: false,
                low_power: false,
                scalable: true,
                no_misrouting: true,
            }
        }
        fn required_vns(&self) -> usize {
            0
        }
        fn step(&mut self, core: &mut NetworkCore) {
            advance(core, &mut DorXy, &AdvanceCtx::default());
        }
    }

    /// Uniform-random single-class open-loop traffic for engine tests.
    struct UniformReq {
        rate: f64,
        rng: DetRng,
    }
    impl Workload for UniformReq {
        fn tick(&mut self, core: &mut NetworkCore) {
            let n = core.mesh().num_nodes();
            let cycle = core.cycle();
            for src in 0..n {
                if self.rng.chance(self.rate) {
                    let mut dst = self.rng.range(0, n - 1);
                    if dst >= src {
                        dst += 1;
                    }
                    core.generate(Packet::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        MessageClass::Request,
                        1,
                        cycle,
                    ));
                }
            }
        }
    }

    fn sim(rate: f64) -> Simulation {
        Simulation::new(
            SimConfig::builder()
                .mesh(4, 4)
                .vns(0)
                .vcs_per_vn(2)
                .seed(3)
                .build(),
            Box::new(PlainXy),
            Box::new(UniformReq {
                rate,
                rng: DetRng::new(11),
            }),
        )
    }

    /// End-of-test conservation gate: every engine-level test that runs
    /// a simulation finishes here, proving no packet or credit leaked
    /// and the occupancy masks never drifted.
    fn finish(s: &Simulation) {
        s.assert_conserved();
    }

    #[test]
    fn low_load_delivers_everything_quickly() {
        let mut s = sim(0.02);
        let stats = s.run_windows(2_000, 5_000);
        assert!(stats.delivered() > 0, "packets flowed");
        let lat = stats.avg_latency();
        assert!(
            lat < 30.0,
            "low-load latency should be near zero-load: {lat}"
        );
        assert!(s.starvation_cycles() < 100);
        finish(&s);
    }

    #[test]
    fn overload_saturates_gracefully() {
        let mut s = sim(0.9);
        let stats = s.run_windows(2_000, 4_000);
        // Accepted throughput far below offered; latency blows up.
        assert!(stats.throughput_packets() < 0.6);
        assert!(stats.avg_latency() > 50.0);
        // But the network keeps moving (XY is deadlock-free).
        assert!(s.starvation_cycles() < 100);
        finish(&s);
    }

    #[test]
    fn measurement_window_resets_stats() {
        let mut s = sim(0.05);
        s.run(1_000);
        let before = s.core.stats.delivered();
        assert!(before > 0);
        s.reset_stats();
        assert_eq!(s.core.stats.delivered(), 0);
        assert_eq!(s.core.stats.cycles, 0);
        finish(&s);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = sim(0.1);
            let st = s.run_windows(1_000, 2_000);
            finish(&s);
            (st.delivered(), st.avg_latency())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn vn_mismatch_rejected() {
        let _ = Simulation::new(
            SimConfig::builder().mesh(4, 4).vns(6).vcs_per_vn(2).build(),
            Box::new(PlainXy),
            Box::new(UniformReq {
                rate: 0.0,
                rng: DetRng::new(0),
            }),
        );
    }

    /// A scheme that never moves anything: the regular pass is frozen
    /// every cycle, so no packet is ever delivered.
    struct Frozen;
    impl Scheme for Frozen {
        fn name(&self) -> &'static str {
            "frozen"
        }
        fn properties(&self) -> SchemeProperties {
            SchemeProperties {
                no_detection: true,
                protocol_deadlock_freedom: false,
                network_deadlock_freedom: false,
                full_path_diversity: false,
                high_throughput: false,
                low_power: false,
                scalable: false,
                no_misrouting: true,
            }
        }
        fn required_vns(&self) -> usize {
            0
        }
        fn step(&mut self, core: &mut NetworkCore) {
            let ctx = AdvanceCtx {
                freeze: true,
                ..Default::default()
            };
            advance(core, &mut DorXy, &ctx);
        }
    }

    /// Regression: a zero-load probe that delivers nothing used to make
    /// `zero_load` NaN, so every `lat <= 3 * zero_load` comparison was
    /// false and the search silently returned `(lo, 0.0)` as if the
    /// scheme saturated at the floor. It must panic with a diagnostic
    /// instead (after retrying with longer windows).
    #[test]
    #[should_panic(expected = "delivered no packets")]
    fn saturation_search_panics_when_zero_load_probe_delivers_nothing() {
        let search = SaturationSearch {
            warmup: 10,
            measure: 20,
            lo: 0.05,
            hi: 0.8,
            steps: 2,
        };
        let _ = search.run(|rate| {
            Simulation::new(
                SimConfig::builder()
                    .mesh(4, 4)
                    .vns(0)
                    .vcs_per_vn(2)
                    .seed(3)
                    .build(),
                Box::new(Frozen),
                Box::new(UniformReq {
                    rate,
                    rng: DetRng::new(11),
                }),
            )
        });
    }

    /// Regression for warmup-boundary load accounting: packets generated
    /// during warmup but delivered during measurement previously inflated
    /// `delivered` against a `generated` counter that had been zeroed,
    /// letting accepted throughput exceed apparent offered load near
    /// saturation. With the carryover split, window-born deliveries can
    /// never exceed window generation.
    #[test]
    fn warmup_carryover_does_not_inflate_accepted_load() {
        // Heavy load on a small mesh: the warmup window ends with many
        // packets still in flight, which then drain during measurement.
        let mut s = sim(0.9);
        let stats = s.run_windows(1_000, 500);
        assert!(
            stats.delivered_carryover > 0,
            "near saturation, some warmup packets must drain in-window"
        );
        assert!(
            stats.delivered_in_window() <= stats.generated,
            "window-born deliveries ({}) exceed window generation ({})",
            stats.delivered_in_window(),
            stats.generated
        );
        assert_eq!(stats.window_start, 1_000);
        finish(&s);
    }

    #[test]
    fn sampler_windows_reconcile_with_run_totals() {
        let mut s = sim(0.1);
        s.run(500);
        s.reset_stats();
        s.set_sampler(&crate::sampler::SamplerConfig {
            sample_every: 64,
            max_windows: 128,
        });
        s.run(1_000);
        s.finish_sampling();
        let stats_delivered = s.core.stats.delivered();
        let stats_flits = s.core.stats.flits_delivered;
        let sampler = s.sampler().expect("sampler installed");
        assert_eq!(sampler.dropped_windows(), 0);
        // 15 full 64-cycle windows plus one 40-cycle flush window.
        assert_eq!(sampler.windows().len(), 16);
        let sum_delivered: u64 = sampler.windows().iter().map(|w| w.delivered).sum();
        let sum_flits: u64 = sampler.windows().iter().map(|w| w.flits_delivered).sum();
        assert_eq!(sum_delivered, stats_delivered, "delivered reconciles");
        assert_eq!(sum_flits, stats_flits, "flits reconcile");
        assert!(stats_delivered > 0, "reconciliation must not be vacuous");
        // Windows tile the measurement span without gaps or overlap.
        let mut expect_start = 500;
        for w in sampler.windows() {
            assert_eq!(w.start_cycle, expect_start);
            assert!(w.end_cycle > w.start_cycle);
            expect_start = w.end_cycle;
        }
        assert_eq!(expect_start, 1_500);
        finish(&s);
    }

    #[test]
    fn sampler_series_saturates_instead_of_growing() {
        let mut s = sim(0.1);
        s.set_sampler(&crate::sampler::SamplerConfig {
            sample_every: 16,
            max_windows: 4,
        });
        s.run(640);
        let sampler = s.sampler().expect("sampler installed");
        assert_eq!(sampler.windows().len(), 4);
        assert_eq!(sampler.dropped_windows(), 40 - 4);
    }

    #[test]
    fn phase_probe_fires_balanced_and_is_transparent() {
        use crate::probe::{CountingProbe, Phase, PhaseProbe};

        // Baseline: unprobed run.
        let mut plain = sim(0.1);
        let baseline = plain.run_windows(500, 1_000);

        // A probe sharing its accumulator with the test (the same
        // pattern the bench wall-clock probe uses: no downcasting).
        use std::sync::{Arc, Mutex};
        struct Recording(Arc<Mutex<CountingProbe>>);
        impl PhaseProbe for Recording {
            fn begin(&mut self, p: Phase) {
                self.0.lock().expect("probe lock").begin(p);
            }
            fn end(&mut self, p: Phase) {
                self.0.lock().expect("probe lock").end(p);
            }
        }
        let counts = Arc::new(Mutex::new(CountingProbe::default()));
        let mut probed = sim(0.1);
        probed.set_probe(Box::new(Recording(Arc::clone(&counts))));
        let stats = probed.run_windows(500, 1_000);
        assert_eq!(
            serde_json::to_string(&stats).expect("serializes"),
            serde_json::to_string(&baseline).expect("serializes"),
            "a probed run must be bitwise identical to an unprobed one"
        );
        assert!(probed.take_probe().is_some(), "probe was installed");
        let guard = counts.lock().expect("probe lock");
        let c = &*guard;
        for p in Phase::ALL {
            assert_eq!(
                c.begins[p.index()],
                c.ends[p.index()],
                "unbalanced begin/end for {:?}",
                p
            );
        }
        // Engine-level phases fire exactly once per cycle.
        assert_eq!(c.begins[Phase::WorkloadTick.index()], 1_500);
        assert_eq!(c.begins[Phase::SchemeStep.index()], 1_500);
        assert_eq!(c.begins[Phase::NiConsume.index()], 1_500);
        assert_eq!(c.begins[Phase::ApplyStaged.index()], 1_500);
        // Eject nests inside SwitchAlloc: at least one per active router.
        assert!(c.begins[Phase::Eject.index()] > 0);
        assert!(c.max_depth >= 3, "Eject must nest under SchemeStep");
        drop(guard);
        finish(&probed);
    }

    #[test]
    fn saturation_search_orders_correctly() {
        let search = SaturationSearch {
            warmup: 1_000,
            measure: 2_000,
            lo: 0.01,
            hi: 0.8,
            steps: 5,
        };
        let (rate, thpt) = search.run(sim);
        assert!(rate > 0.01, "XY on 4×4 saturates above the floor probe");
        assert!(rate < 0.8, "and below the ceiling");
        assert!(thpt > 0.0);
        // The search consumes its probe sims; re-run one at the found
        // saturation rate and prove conservation held there too.
        let mut s = sim(rate);
        let _ = s.run_windows(1_000, 2_000);
        finish(&s);
    }
}
