//! Batched multi-simulation execution: many independent sweep points
//! interleaved through one hot loop in one process.
//!
//! A parameter sweep is embarrassingly independent — each point is its
//! own [`Simulation`] with its own RNG, arena and statistics — but
//! running the points one after another leaves the process executing
//! exactly one simulator at a time. [`run_windows_batched`] instead
//! advances every live simulation by one cycle per outer iteration, so
//! a whole sweep shares one instruction stream, one warmed allocator
//! and one branch-predictor state.
//!
//! **Determinism contract:** a simulation's evolution depends only on
//! its own state — nothing in [`Simulation::step`] reads global mutable
//! state — so cycle-interleaving N simulations produces results
//! *bitwise identical* to running each one serially through
//! [`Simulation::run_windows`]: the same [`NetStats`], and the same
//! sampler window series when samplers are installed. The
//! `batched_equivalence` integration test in `bench` enforces this
//! across seeds and mixed mesh sizes, and the CI `big-mesh` job pins a
//! 16×16 point's batched output to a golden fixture.
//!
//! The per-simulation window state machine replicates
//! [`Simulation::run_windows`] exactly: warmup cycles (stopping early
//! if the workload finishes), one [`Simulation::reset_stats`], then
//! measurement cycles (again stopping early when finished).

use crate::engine::Simulation;
use noc_core::stats::NetStats;

/// Per-simulation position in the warmup → measure window protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowState {
    /// Running warmup cycles; statistics will be discarded.
    Warmup { left: u64 },
    /// Running measured cycles.
    Measure { left: u64 },
    /// Finished its measurement window (or its workload ended).
    Done,
}

/// Runs `warmup` then `measure` cycles on every simulation, advancing
/// the batch one cycle at a time round-robin, and returns each
/// simulation's measured [`NetStats`] in input order.
///
/// Equivalent to calling `sims[i].run_windows(warmup, measure)` in a
/// loop — bitwise, per simulation — but all points move through the
/// process's hot loop together. Simulations whose workloads finish
/// early drop out of the rotation individually, exactly as
/// [`Simulation::run`] stops early for them when run serially.
pub fn run_windows_batched(sims: &mut [Simulation], warmup: u64, measure: u64) -> Vec<NetStats> {
    let mut states: Vec<WindowState> = sims
        .iter()
        .map(|_| WindowState::Warmup { left: warmup })
        .collect();
    let mut live = sims.len();
    while live > 0 {
        for (sim, state) in sims.iter_mut().zip(states.iter_mut()) {
            if step_windowed(sim, state, measure) {
                live -= 1;
            }
        }
    }
    sims.iter().map(|s| s.core.stats.clone()).collect()
}

/// Advances one simulation by one cycle of its window protocol,
/// performing any due window transitions first (transitions consume no
/// cycles, matching the serial `run(warmup); reset_stats(); run(measure)`
/// sequence). Returns `true` when the simulation just became `Done`.
fn step_windowed(sim: &mut Simulation, state: &mut WindowState, measure: u64) -> bool {
    loop {
        match state {
            WindowState::Warmup { left } => {
                if *left == 0 || sim.workload_finished() {
                    sim.reset_stats();
                    *state = WindowState::Measure { left: measure };
                    continue;
                }
                sim.step();
                *left -= 1;
                return false;
            }
            WindowState::Measure { left } => {
                if *left == 0 || sim.workload_finished() {
                    *state = WindowState::Done;
                    return true;
                }
                sim.step();
                *left -= 1;
                return false;
            }
            WindowState::Done => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests_support::synthetic_sim;

    fn stats_digest(s: &NetStats) -> String {
        serde_json::to_string(s).expect("NetStats serializes")
    }

    #[test]
    fn batched_matches_serial_bitwise() {
        let seeds = [1u64, 7, 42];
        let serial: Vec<String> = seeds
            .iter()
            .map(|&seed| {
                let mut sim = synthetic_sim(4, 0.05, seed);
                stats_digest(&sim.run_windows(200, 400))
            })
            .collect();
        let mut sims: Vec<Simulation> = seeds
            .iter()
            .map(|&seed| synthetic_sim(4, 0.05, seed))
            .collect();
        let batched = run_windows_batched(&mut sims, 200, 400);
        for (b, s) in batched.iter().zip(serial.iter()) {
            assert_eq!(&stats_digest(b), s, "batched run diverged from serial");
        }
    }

    #[test]
    fn zero_warmup_and_zero_measure_degenerate_cleanly() {
        let mut sims = vec![synthetic_sim(3, 0.05, 9)];
        let stats = run_windows_batched(&mut sims, 0, 0);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].cycles, 0);

        let mut serial = synthetic_sim(3, 0.05, 9);
        let expect = serial.run_windows(0, 300);
        let mut sims = vec![synthetic_sim(3, 0.05, 9)];
        let got = run_windows_batched(&mut sims, 0, 300);
        assert_eq!(stats_digest(&got[0]), stats_digest(&expect));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        assert!(run_windows_batched(&mut [], 100, 100).is_empty());
    }
}
