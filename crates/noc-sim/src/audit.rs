//! Deep structural audits of network state.
//!
//! [`audit`] walks every buffer, reservation and queue and checks the
//! invariants the simulator's correctness rests on. The engine does not
//! run it per cycle (it is O(network)); tests call it at checkpoints,
//! and it is invaluable when developing a new scheme — a scheme that
//! corrupts buffer state fails an audit long before it produces a wrong
//! figure.

use crate::network::NetworkCore;
use noc_core::packet::PacketId;
use noc_core::topology::{NodeId, Port, NUM_PORTS};
use std::collections::HashMap;

/// A violated invariant found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Where the violation was found.
    pub location: String,
    /// What is wrong.
    pub problem: String,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.problem)
    }
}

/// Audits the network, returning every violation found (empty = clean).
///
/// Checks, for every VC occupant:
/// * flit counters are ordered: `sent <= arrived <= len`;
/// * the packet exists in the store and its cached length matches;
/// * a downstream VC allocation points at a live reservation for the
///   same packet;
/// * no packet occupies more than one buffer *except* as a transfer
///   chain (each extra occupancy must be the downstream reservation of
///   another);
///
/// and for every router/NI:
/// * the ejection lock points at an occupant routed `Local`;
/// * every queued packet id is live in the store.
pub fn audit(core: &NetworkCore) -> Vec<AuditError> {
    let mut errors = Vec::new();
    let mesh = core.mesh();
    let vcs = core.cfg().vcs_per_port();
    // packet -> list of (node, port, vc) occupancies.
    let mut occupancies: HashMap<PacketId, Vec<(NodeId, usize, usize)>> = HashMap::new();

    let mut err = |location: String, problem: String| {
        errors.push(AuditError { location, problem });
    };

    for node in mesh.nodes() {
        let router = core.router(node);
        for p in 0..NUM_PORTS {
            for vc in 0..vcs {
                let Some(occ) = router.inputs[p].vc(vc).occupant() else {
                    continue;
                };
                let loc = format!("{node} port {} vc {vc}", Port::from_index(p));
                if occ.sent > occ.arrived {
                    err(
                        loc.clone(),
                        format!("sent {} > arrived {}", occ.sent, occ.arrived),
                    );
                }
                if occ.arrived > occ.len {
                    err(
                        loc.clone(),
                        format!("arrived {} > len {}", occ.arrived, occ.len),
                    );
                }
                if !core.store.contains(occ.pkt) {
                    err(loc.clone(), format!("occupant {} not in store", occ.pkt));
                    continue;
                }
                let pkt = core.store.get(occ.pkt);
                if pkt.len_flits != occ.len {
                    err(
                        loc.clone(),
                        format!("cached len {} != packet len {}", occ.len, pkt.len_flits),
                    );
                }
                if let (Some(Port::Dir(d)), Some(out_vc)) = (occ.route, occ.out_vc) {
                    match mesh.neighbor(node, d) {
                        None => err(loc.clone(), "route leaves the mesh".into()),
                        Some(nbr) => {
                            let down = core.router(nbr).inputs[Port::Dir(d.opposite()).index()]
                                .vc(out_vc)
                                .occupant();
                            match down {
                                None => err(
                                    loc.clone(),
                                    format!("downstream reservation at {nbr} vc {out_vc} missing"),
                                ),
                                Some(res) if res.pkt != occ.pkt => err(
                                    loc.clone(),
                                    format!(
                                        "downstream reservation held by {} not {}",
                                        res.pkt, occ.pkt
                                    ),
                                ),
                                _ => {}
                            }
                        }
                    }
                }
                occupancies.entry(occ.pkt).or_default().push((node, p, vc));
            }
        }
        if let Some((p, vc)) = router.eject_lock {
            let loc = format!("{node} eject lock");
            match router.inputs[p].vc(vc).occupant() {
                None => err(loc, "locked VC is empty".into()),
                Some(occ) if occ.route != Some(Port::Local) => {
                    err(loc, format!("locked occupant routed {:?}", occ.route))
                }
                _ => {}
            }
        }
        // NI queues reference live packets only.
        let ni = core.ni(node);
        for class in noc_core::packet::CLASSES {
            for pkt in ni.inj_iter(class) {
                if !core.store.contains(pkt) {
                    err(format!("{node} inj {class}"), format!("{pkt} not in store"));
                }
            }
        }
    }

    // Multi-occupancy must form transfer chains: for k occupancies of one
    // packet, exactly k-1 of them are downstream reservations of another.
    for (pkt, locs) in &occupancies {
        if locs.len() <= 1 {
            continue;
        }
        let mut reserved_targets = 0;
        for &(node, p, _vc) in locs {
            let port = Port::from_index(p);
            if let Port::Dir(d) = port {
                // This occupancy is "pointed at" if the upstream neighbour
                // through d holds this packet with a matching allocation.
                let upstream = mesh.neighbor(node, d).expect("input port implies neighbor");
                let any = (0..NUM_PORTS).any(|up| {
                    (0..vcs).any(|uvc| {
                        core.router(upstream).inputs[up]
                            .vc(uvc)
                            .occupant()
                            .is_some_and(|o| o.pkt == *pkt && o.out_vc.is_some())
                    })
                });
                if any {
                    reserved_targets += 1;
                }
            }
        }
        if reserved_targets != locs.len() - 1 {
            errors.push(AuditError {
                location: format!("{pkt}"),
                problem: format!(
                    "occupies {} buffers but only {} are chained reservations",
                    locs.len(),
                    reserved_targets
                ),
            });
        }
    }
    errors
}

/// Panics with a readable report if the network fails the audit.
///
/// # Panics
///
/// Panics when [`audit`] finds any violation.
pub fn assert_clean(core: &NetworkCore) {
    let errors = audit(core);
    assert!(
        errors.is_empty(),
        "network audit failed with {} violations:\n{}",
        errors.len(),
        errors
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::{DorXy, FullyAdaptive};
    use crate::vc::VcOccupant;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};

    fn core() -> NetworkCore {
        NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(2).build())
    }

    #[test]
    fn fresh_network_is_clean() {
        assert!(audit(&core()).is_empty());
    }

    #[test]
    fn running_network_stays_clean() {
        let mut c = core();
        let mut rng = noc_core::rng::DetRng::new(3);
        let mut policy = FullyAdaptive::new(5);
        for cycle in 0..400u64 {
            for src in 0..16 {
                if rng.chance(0.3) {
                    let mut dst = rng.range(0, 15);
                    if dst >= src {
                        dst += 1;
                    }
                    c.generate(Packet::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        MessageClass::Request,
                        1 + (cycle % 5) as u8,
                        cycle,
                    ));
                }
            }
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            if cycle % 50 == 0 {
                assert_clean(&c);
            }
        }
        assert_clean(&c);
    }

    #[test]
    fn detects_counter_corruption() {
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            2,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 2, 0);
        occ.arrived = 1;
        occ.sent = 2; // corrupt: sent > arrived
        c.router_mut(NodeId::new(1)).inputs[0].install(0, occ);
        let errors = audit(&c);
        assert!(errors.iter().any(|e| e.problem.contains("sent")));
    }

    #[test]
    fn detects_dangling_reservation() {
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            1,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        occ.route = Some(Port::Dir(noc_core::topology::Direction::East));
        occ.out_vc = Some(0); // claims a downstream VC that was never reserved
        c.router_mut(NodeId::new(5)).inputs[Port::Local.index()].install(0, occ);
        let errors = audit(&c);
        assert!(
            errors.iter().any(|e| e.problem.contains("reservation")),
            "{errors:?}"
        );
    }

    #[test]
    fn detects_stale_eject_lock() {
        let mut c = core();
        c.router_mut(NodeId::new(2)).eject_lock = Some((0, 0));
        let errors = audit(&c);
        assert!(errors.iter().any(|e| e.problem.contains("empty")));
    }

    #[test]
    fn xy_steady_state_clean_with_consumption() {
        let mut c = core();
        let mut policy = DorXy;
        for i in 0..8 {
            c.generate(Packet::new(
                NodeId::new(i),
                NodeId::new(15 - i),
                MessageClass::Response,
                5,
                0,
            ));
        }
        for _ in 0..200 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            let now = c.cycle();
            for n in c.mesh().nodes() {
                if c.ni(n).ej_consumable(MessageClass::Response, now).is_some() {
                    let e = c.ni_mut(n).pop_ej(MessageClass::Response).unwrap();
                    c.store.remove(e.pkt);
                }
            }
            c.advance_cycle();
        }
        assert_clean(&c);
    }
}
