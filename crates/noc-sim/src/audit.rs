//! Deep structural audits of network state.
//!
//! [`audit`] walks every buffer, reservation and queue and checks the
//! invariants the simulator's correctness rests on. The engine does not
//! run it per cycle (it is O(network)); tests call it at checkpoints,
//! and it is invaluable when developing a new scheme — a scheme that
//! corrupts buffer state fails an audit long before it produces a wrong
//! figure.

use crate::network::NetworkCore;
use noc_core::packet::PacketId;
use noc_core::topology::{NodeId, Port, NUM_PORTS};
use std::collections::{BTreeMap, BTreeSet};

/// A violated invariant found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AuditError {
    /// Where the violation was found.
    pub location: String,
    /// What is wrong.
    pub problem: String,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.problem)
    }
}

/// Audits the network, returning every violation found (empty = clean).
///
/// Checks, for every VC occupant:
/// * flit counters are ordered: `sent <= arrived <= len`;
/// * the packet exists in the store and its cached length matches;
/// * a downstream VC allocation points at a live reservation for the
///   same packet;
/// * no packet occupies more than one buffer *except* as a transfer
///   chain (each extra occupancy must be the downstream reservation of
///   another);
///
/// and for every router/NI:
/// * the ejection lock points at an occupant routed `Local`;
/// * every queued packet id is live in the store.
///
/// The returned list is sorted, so a failing snapshot renders
/// identically run after run (ordered traversal everywhere; no
/// address-seeded iteration).
pub fn audit(core: &NetworkCore) -> Vec<AuditError> {
    let mut errors = Vec::new();
    let mesh = core.mesh();
    let vcs = core.cfg().vcs_per_port();
    // packet -> list of (node, port, vc) occupancies, in packet order.
    let mut occupancies: BTreeMap<PacketId, Vec<(NodeId, usize, usize)>> = BTreeMap::new();

    let mut err = |location: String, problem: String| {
        errors.push(AuditError { location, problem });
    };

    for node in mesh.nodes() {
        for p in 0..NUM_PORTS {
            let iu = core.input(node, p);
            for vc in 0..vcs {
                let Some(occ) = iu.occupant(vc) else {
                    continue;
                };
                let loc = format!("{node} port {} vc {vc}", Port::from_index(p));
                if occ.sent > occ.arrived {
                    err(
                        loc.clone(),
                        format!("sent {} > arrived {}", occ.sent, occ.arrived),
                    );
                }
                if occ.arrived > occ.len {
                    err(
                        loc.clone(),
                        format!("arrived {} > len {}", occ.arrived, occ.len),
                    );
                }
                if !core.store.contains(occ.pkt) {
                    err(loc.clone(), format!("occupant {} not in store", occ.pkt));
                    continue;
                }
                let pkt = core.store.get(occ.pkt);
                if pkt.len_flits != occ.len {
                    err(
                        loc.clone(),
                        format!("cached len {} != packet len {}", occ.len, pkt.len_flits),
                    );
                }
                if let (Some(Port::Dir(d)), Some(out_vc)) = (occ.route, occ.out_vc) {
                    match mesh.neighbor(node, d) {
                        None => err(loc.clone(), "route leaves the mesh".into()),
                        Some(nbr) => {
                            let down = core
                                .input(nbr, Port::Dir(d.opposite()).index())
                                .occupant(out_vc);
                            match down {
                                None => err(
                                    loc.clone(),
                                    format!("downstream reservation at {nbr} vc {out_vc} missing"),
                                ),
                                Some(res) if res.pkt != occ.pkt => err(
                                    loc.clone(),
                                    format!(
                                        "downstream reservation held by {} not {}",
                                        res.pkt, occ.pkt
                                    ),
                                ),
                                _ => {}
                            }
                        }
                    }
                }
                occupancies.entry(occ.pkt).or_default().push((node, p, vc));
            }
        }
        if let Some((p, vc)) = core.router(node).eject_lock {
            let loc = format!("{node} eject lock");
            match core.input(node, p).occupant(vc) {
                None => err(loc, "locked VC is empty".into()),
                Some(occ) if occ.route != Some(Port::Local) => {
                    err(loc, format!("locked occupant routed {:?}", occ.route))
                }
                _ => {}
            }
        }
        // NI queues reference live packets only.
        let ni = core.ni(node);
        for class in noc_core::packet::CLASSES {
            for pkt in ni.inj_iter(class) {
                if !core.store.contains(pkt) {
                    err(format!("{node} inj {class}"), format!("{pkt} not in store"));
                }
            }
        }
    }

    // Multi-occupancy must form transfer chains: for k occupancies of one
    // packet, exactly k-1 of them are downstream reservations of another.
    for (pkt, locs) in &occupancies {
        if locs.len() <= 1 {
            continue;
        }
        let mut reserved_targets = 0;
        for &(node, p, _vc) in locs {
            let port = Port::from_index(p);
            if let Port::Dir(d) = port {
                // This occupancy is "pointed at" if the upstream neighbour
                // through d holds this packet with a matching allocation.
                let upstream = mesh.neighbor(node, d).expect("input port implies neighbor");
                let any = (0..NUM_PORTS).any(|up| {
                    (0..vcs).any(|uvc| {
                        core.input(upstream, up)
                            .occupant(uvc)
                            .is_some_and(|o| o.pkt == *pkt && o.out_vc.is_some())
                    })
                });
                if any {
                    reserved_targets += 1;
                }
            }
        }
        if reserved_targets != locs.len() - 1 {
            errors.push(AuditError {
                location: format!("{pkt}"),
                problem: format!(
                    "occupies {} buffers but only {} are chained reservations",
                    locs.len(),
                    reserved_targets
                ),
            });
        }
    }
    errors.sort();
    errors
}

/// Global conservation audit: packets and downstream-VC credits.
///
/// `overlay` is the scheme's [`overlay_packets`] count (packets held
/// outside the core's buffers — FastPass flights, Pitstop pits);
/// `delivered` is the number of packets consumed out of the system over
/// the simulation's lifetime (the engine's counter).
///
/// Checks:
/// * **packet conservation** — every packet ever injected is delivered,
///   resident, or overlay-held: `created == delivered + live` (nothing
///   leaves the store except through consumption) and
///   `live == resident + overlay` (nothing in the store is orphaned);
/// * **arena-word consistency** — per `(node, port)` the routed word is
///   a subset of the occupancy word, each occupied slot's routed bit
///   matches its stored route, and each node's cached occupied-VC count
///   equals the population count of its occupancy words (the word-level
///   signals the hot loops scan can only be trusted if
///   `install`/`take`/`set_route` really are the only mutators);
/// * **credit conservation** — every allocated downstream VC index is in
///   range and no VC is reserved by two upstream packets, so per-link
///   outstanding credits can never exceed the VC capacity.
///
/// Like [`audit`], the returned list is sorted for stable snapshots.
///
/// [`overlay_packets`]: crate::scheme::Scheme::overlay_packets
pub fn audit_conservation(core: &NetworkCore, overlay: usize, delivered: u64) -> Vec<AuditError> {
    let mut errors = Vec::new();
    let created = core.store.created() as u64;
    let live = core.store.live() as u64;
    if created != delivered + live {
        errors.push(AuditError {
            location: "packet store".into(),
            problem: format!(
                "{created} packets created but {delivered} delivered + {live} live \
                 (a packet left the store without being consumed)"
            ),
        });
    }
    let vcs = core.cfg().vcs_per_port();
    let mut credits_in_range = true;
    // (node, input port, vc) targets of downstream reservations.
    let mut reserved: BTreeSet<(NodeId, usize, usize)> = BTreeSet::new();
    for node in core.mesh().nodes() {
        let mut occ_bits = 0usize;
        for p in 0..NUM_PORTS {
            let iu = core.input(node, p);
            let occ_word = iu.occ_mask(); // noc-lint: allow(occupancy) — the auditor verifies the mask
            let routed_word = core.arena.routed[core.arena.word(node.index(), p)];
            occ_bits += occ_word.count_ones() as usize;
            if routed_word & !occ_word != 0 {
                errors.push(AuditError {
                    location: format!("{node} port {}", Port::from_index(p)),
                    problem: format!(
                        "routed word {routed_word:#b} not a subset of occupancy {occ_word:#b} \
                         (a freed VC kept its routed bit)"
                    ),
                });
            }
            for vc in 0..vcs {
                let Some(occ) = iu.occupant(vc) else {
                    continue;
                };
                let routed_bit = routed_word & (1 << vc) != 0;
                if routed_bit != occ.route.is_some() {
                    errors.push(AuditError {
                        location: format!("{node} port {} vc {vc}", Port::from_index(p)),
                        problem: format!(
                            "routed bit {routed_bit} but route {:?} \
                             (routed word drifted: route changed outside install/set_route)",
                            occ.route
                        ),
                    });
                }
                if let (Some(Port::Dir(d)), Some(out_vc)) = (occ.route, occ.out_vc) {
                    let loc = format!("{node} port {} vc {vc}", Port::from_index(p));
                    if out_vc >= vcs {
                        credits_in_range = false;
                        errors.push(AuditError {
                            location: loc,
                            problem: format!("allocated downstream VC {out_vc} >= capacity {vcs}"),
                        });
                        continue;
                    }
                    if let Some(nbr) = core.mesh().neighbor(node, d) {
                        let target = (nbr, Port::Dir(d.opposite()).index(), out_vc);
                        if !reserved.insert(target) {
                            errors.push(AuditError {
                                location: loc,
                                problem: format!(
                                    "downstream VC {nbr} port {} vc {out_vc} reserved twice \
                                     (credit double-spend)",
                                    Port::Dir(d.opposite())
                                ),
                            });
                        }
                    }
                }
            }
        }
        let counted = core.occupied_vcs(node);
        if occ_bits != counted {
            errors.push(AuditError {
                location: format!("{node}"),
                problem: format!(
                    "occupancy words hold {occ_bits} set bits but the node count is \
                     {counted} (count drifted: occupancy changed outside install/take)"
                ),
            });
        }
    }

    // Residency counting indexes downstream VCs, so it is only
    // well-defined once every allocated credit is in range.
    if credits_in_range {
        let resident = core.resident_packets();
        if live as usize != resident + overlay {
            errors.push(AuditError {
                location: "packet store".into(),
                problem: format!(
                    "{live} live packets but {resident} resident + {overlay} overlay \
                     (a packet is in the store but nowhere in the system)"
                ),
            });
        }
    }
    errors.sort();
    errors
}

fn panic_on(what: &str, errors: &[AuditError]) {
    assert!(
        errors.is_empty(),
        "{what} failed with {} violations:\n{}",
        errors.len(),
        errors
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Panics with a readable report if the network fails the audit.
///
/// # Panics
///
/// Panics when [`audit`] finds any violation.
pub fn assert_clean(core: &NetworkCore) {
    panic_on("network audit", &audit(core));
}

/// Runs both the structural audit and the conservation audit, panicking
/// with a readable report on any violation.
///
/// # Panics
///
/// Panics when [`audit`] or [`audit_conservation`] finds any violation.
pub fn assert_conserved(core: &NetworkCore, overlay: usize, delivered: u64) {
    panic_on("network audit", &audit(core));
    panic_on(
        "conservation audit",
        &audit_conservation(core, overlay, delivered),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{advance, AdvanceCtx};
    use crate::routing::{DorXy, FullyAdaptive};
    use crate::vc::VcOccupant;
    use noc_core::config::SimConfig;
    use noc_core::packet::{MessageClass, Packet};

    fn core() -> NetworkCore {
        NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(2).build())
    }

    #[test]
    fn fresh_network_is_clean() {
        assert!(audit(&core()).is_empty());
    }

    #[test]
    fn running_network_stays_clean() {
        let mut c = core();
        let mut rng = noc_core::rng::DetRng::new(3);
        let mut policy = FullyAdaptive::new(5);
        for cycle in 0..400u64 {
            for src in 0..16 {
                if rng.chance(0.3) {
                    let mut dst = rng.range(0, 15);
                    if dst >= src {
                        dst += 1;
                    }
                    c.generate(Packet::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        MessageClass::Request,
                        1 + (cycle % 5) as u8,
                        cycle,
                    ));
                }
            }
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
            if cycle % 50 == 0 {
                assert_clean(&c);
            }
        }
        assert_clean(&c);
    }

    #[test]
    fn detects_counter_corruption() {
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            2,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 2, 0);
        occ.arrived = 1;
        occ.sent = 2; // corrupt: sent > arrived
        c.input_mut(NodeId::new(1), 0).install(0, occ);
        let errors = audit(&c);
        assert!(errors.iter().any(|e| e.problem.contains("sent")));
    }

    #[test]
    fn detects_dangling_reservation() {
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            1,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        occ.route = Some(Port::Dir(noc_core::topology::Direction::East));
        occ.out_vc = Some(0); // claims a downstream VC that was never reserved
        c.input_mut(NodeId::new(5), Port::Local.index())
            .install(0, occ);
        let errors = audit(&c);
        assert!(
            errors.iter().any(|e| e.problem.contains("reservation")),
            "{errors:?}"
        );
    }

    #[test]
    fn detects_stale_eject_lock() {
        let mut c = core();
        c.router_mut(NodeId::new(2)).eject_lock = Some((0, 0));
        let errors = audit(&c);
        assert!(errors.iter().any(|e| e.problem.contains("empty")));
    }

    #[test]
    fn conservation_holds_without_consumption() {
        let mut c = core();
        let mut policy = FullyAdaptive::new(5);
        for i in 0..6 {
            c.generate(Packet::new(
                NodeId::new(i),
                NodeId::new(15 - i),
                MessageClass::Request,
                2,
                0,
            ));
        }
        for _ in 0..100 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            c.advance_cycle();
        }
        // Nothing consumed, no overlay: every created packet is resident.
        assert_conserved(&c, 0, 0);
    }

    #[test]
    fn conservation_flags_a_leaked_packet() {
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            1,
            0,
        ));
        c.store.remove(id); // vanished without being consumed
        let errors = audit_conservation(&c, 0, 0);
        assert!(
            errors
                .iter()
                .any(|e| e.problem.contains("without being consumed")),
            "{errors:?}"
        );
    }

    #[test]
    fn conservation_flags_credit_double_spend() {
        use noc_core::topology::Direction;
        let mut c = core();
        let ids: Vec<PacketId> = (0..2)
            .map(|i| {
                c.generate(Packet::new(
                    NodeId::new(i),
                    NodeId::new(6),
                    MessageClass::Request,
                    1,
                    0,
                ))
            })
            .collect();
        // Two occupants at node 5 both claim downstream VC 0 east.
        for (vc, id) in ids.into_iter().enumerate() {
            let mut occ = VcOccupant::reserved(id, 1, 0);
            occ.arrived = 1;
            occ.route = Some(Port::Dir(Direction::East));
            occ.out_vc = Some(0);
            c.input_mut(NodeId::new(5), Port::Local.index())
                .install(vc, occ);
        }
        let errors = audit_conservation(&c, 0, 0);
        assert!(
            errors.iter().any(|e| e.problem.contains("reserved twice")),
            "{errors:?}"
        );
    }

    #[test]
    fn conservation_flags_out_of_range_credit() {
        use noc_core::topology::Direction;
        let mut c = core();
        let id = c.generate(Packet::new(
            NodeId::new(0),
            NodeId::new(6),
            MessageClass::Request,
            1,
            0,
        ));
        let mut occ = VcOccupant::reserved(id, 1, 0);
        occ.arrived = 1;
        occ.route = Some(Port::Dir(Direction::East));
        occ.out_vc = Some(63); // far beyond the configured VC capacity
        c.input_mut(NodeId::new(5), Port::Local.index())
            .install(0, occ);
        let errors = audit_conservation(&c, 0, 0);
        assert!(
            errors.iter().any(|e| e.problem.contains("capacity")),
            "{errors:?}"
        );
    }

    #[test]
    fn audit_output_is_sorted() {
        let mut c = core();
        // Two independent stale eject locks at different nodes; the
        // report must come out in node order regardless of traversal.
        c.router_mut(NodeId::new(9)).eject_lock = Some((0, 0));
        c.router_mut(NodeId::new(2)).eject_lock = Some((0, 0));
        let errors = audit(&c);
        assert_eq!(errors.len(), 2);
        let mut sorted = errors.clone();
        sorted.sort();
        assert_eq!(errors, sorted);
    }

    #[test]
    fn xy_steady_state_clean_with_consumption() {
        let mut c = core();
        let mut policy = DorXy;
        for i in 0..8 {
            c.generate(Packet::new(
                NodeId::new(i),
                NodeId::new(15 - i),
                MessageClass::Response,
                5,
                0,
            ));
        }
        for _ in 0..200 {
            advance(&mut c, &mut policy, &AdvanceCtx::default());
            let now = c.cycle();
            for n in c.mesh().nodes() {
                if c.ni(n).ej_consumable(MessageClass::Response, now).is_some() {
                    let e = c.ni_mut(n).pop_ej(MessageClass::Response).unwrap();
                    c.store.remove(e.pkt);
                }
            }
            c.advance_cycle();
        }
        assert_clean(&c);
    }
}
