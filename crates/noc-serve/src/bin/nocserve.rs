//! The sweep-service daemon.
//!
//! ```text
//! nocserve [--sock PATH] [--store DIR] [--jobs N] [--batch N]
//!          [--statsd TARGET] [--flight PATH] [--tick-ms N]
//! ```
//!
//! Flags override the environment ([`ServeConfig::from_env`]:
//! `NOC_SERVE_SOCK`/`NOC_SERVE`, `NOC_SERVE_STORE`/`FP_CACHE`,
//! `NOC_JOBS`, `NOC_SERVE_BATCH`, `NOC_SERVE_STATSD`,
//! `NOC_SERVE_FLIGHT`, `NOC_SERVE_TICK_MS`). `--statsd` takes a file
//! path or `udp://host:port`; `--flight` names the JSONL lifecycle log
//! `nocctl flight` consumes. Runs in the foreground until a client
//! sends `shutdown`; drive it with `nocctl` or any figure binary's
//! `--serve` mode.

use noc_serve::{serve, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: nocserve [--sock PATH] [--store DIR] [--jobs N] [--batch N] [--statsd TARGET] [--flight PATH] [--tick-ms N]";

fn main() -> ExitCode {
    let mut config = ServeConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let outcome = match arg.as_str() {
            "--sock" => value("--sock").map(|v| config.socket = PathBuf::from(v)),
            "--store" => value("--store").map(|v| config.store_dir = PathBuf::from(v)),
            "--statsd" => value("--statsd").map(|v| config.statsd = Some(v)),
            "--flight" => value("--flight").map(|v| config.flight = Some(PathBuf::from(v))),
            "--tick-ms" => value("--tick-ms").and_then(|v| {
                v.parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .map(|n| config.tick_ms = n)
                    .ok_or_else(|| format!("--tick-ms wants a positive number, got `{v}`"))
            }),
            "--jobs" => value("--jobs").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|_| format!("--jobs wants a number, got `{v}`"))
            }),
            "--batch" => value("--batch").and_then(|v| {
                v.parse()
                    .map(|n| config.batch = n)
                    .map_err(|_| format!("--batch wants a number, got `{v}`"))
            }),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`\n{USAGE}")),
        };
        if let Err(message) = outcome {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    }
    match serve(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: cannot serve on {}: {e}", config.socket.display());
            ExitCode::FAILURE
        }
    }
}
