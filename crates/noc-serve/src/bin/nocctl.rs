//! Operator CLI for a running `nocserve` daemon.
//!
//! ```text
//! nocctl [--sock PATH] ping [--wait SECS]
//! nocctl [--sock PATH] status [--json]
//! nocctl [--sock PATH] metrics [--json]
//! nocctl [--sock PATH] watch
//! nocctl [--sock PATH] fetch KEY...
//! nocctl [--sock PATH] evict KEY...
//! nocctl [--sock PATH] gc
//! nocctl [--sock PATH] shutdown
//! nocctl flight IN.jsonl [--chrome OUT.json]
//! ```
//!
//! The socket defaults to `NOC_SERVE_SOCK`, then `NOC_SERVE`, then
//! `results/nocserve.sock`. `ping --wait N` retries for up to N seconds
//! — CI uses it as the daemon-readiness barrier. `status --json` dumps
//! the raw [`bench::proto::StatusReport`] (CI's `serve-summary.json`);
//! `metrics --json` the full [`bench::proto::MetricsReport`]. `watch`
//! streams the daemon's live flight records as JSON lines until the
//! daemon shuts down (or ctrl-C). `flight` works **offline**: it loads
//! a flight-recorder JSONL log, proves every job's span chain is
//! complete, and with `--chrome` exports a Perfetto-loadable Chrome
//! trace (validated structurally after writing).

use bench::serve_client::Client;
use noc_serve::flight::{check_daemon_trace, chrome_trace, load_flight, validate_chains};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: nocctl [--sock PATH] <ping [--wait SECS] | status [--json] | metrics [--json] | watch | fetch KEY... | evict KEY... | gc | shutdown> | nocctl flight IN.jsonl [--chrome OUT.json]";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut sock = std::env::var("NOC_SERVE_SOCK")
        .or_else(|_| std::env::var("NOC_SERVE"))
        .ok()
        .filter(|s| !s.is_empty())
        .map_or_else(bench::serve_client::default_socket, PathBuf::from);
    if args.first().is_some_and(|a| a == "--sock") {
        args.remove(0);
        if args.is_empty() {
            return Err(format!("--sock needs a value\n{USAGE}"));
        }
        sock = PathBuf::from(args.remove(0));
    }
    let Some(cmd) = args.first().cloned() else {
        return Err(USAGE.to_string());
    };
    let rest = &args[1..];

    let connect = || {
        Client::connect(&sock)
            .map_err(|e| format!("cannot reach nocserve at {}: {e}", sock.display()))
    };
    match cmd.as_str() {
        "ping" => {
            let wait_secs: u64 = match rest {
                [] => 0,
                [flag, secs] if flag == "--wait" => secs
                    .parse()
                    .map_err(|_| format!("--wait wants seconds, got `{secs}`"))?,
                _ => return Err(USAGE.to_string()),
            };
            let deadline = Instant::now() + Duration::from_secs(wait_secs);
            loop {
                match connect().and_then(|mut c| c.ping()) {
                    Ok(proto) => {
                        println!("pong (proto v{proto}) from {}", sock.display());
                        return Ok(());
                    }
                    Err(e) if Instant::now() >= deadline => return Err(e),
                    Err(_) => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        "status" => {
            let report = connect()?.status()?;
            if rest.iter().any(|a| a == "--json") {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report)
                        .map_err(|e| format!("cannot encode status: {e}"))?
                );
            } else {
                println!(
                    "nocserve at {} (proto v{}, schema v{})",
                    sock.display(),
                    report.proto,
                    report.schema
                );
                println!(
                    "  uptime {}s, {} workers",
                    report.uptime_secs, report.workers
                );
                println!(
                    "  connections {}, requests {} ({} malformed)",
                    report.connections, report.requests, report.bad_requests
                );
                println!(
                    "  jobs {}/{} complete; points {} requested = {} computed + {} store hits + {} memory hits + {} deduped ({} failed)",
                    report.jobs_completed,
                    report.jobs_submitted,
                    report.points_requested,
                    report.points_computed,
                    report.store_hits,
                    report.memory_hits,
                    report.dedup_waits,
                    report.points_failed
                );
                println!(
                    "  queue {} (+{} in flight); store {}: {} entries, {} bytes ({} evictions)",
                    report.queue_depth,
                    report.inflight,
                    report.store_dir,
                    report.store.entries,
                    report.store.bytes,
                    report.evictions
                );
            }
            Ok(())
        }
        "metrics" => {
            let report = connect()?.metrics()?;
            if rest.iter().any(|a| a == "--json") {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report)
                        .map_err(|e| format!("cannot encode metrics: {e}"))?
                );
            } else {
                println!(
                    "nocserve metrics at {} (proto v{}, uptime {}s)",
                    sock.display(),
                    report.proto,
                    report.uptime_secs
                );
                println!("  counters:");
                for c in &report.counters {
                    println!("    {:<24} {}", c.name, c.value);
                }
                println!("  gauges:");
                for g in &report.gauges {
                    println!("    {:<24} {}", g.name, g.value);
                }
                println!("  histograms (count / p50 / p90 / p99 / max):");
                for h in &report.histograms {
                    println!(
                        "    {:<24} {} / {} / {} / {} / {}",
                        h.name, h.count, h.p50, h.p90, h.p99, h.max
                    );
                }
                println!("  workers:");
                for w in &report.workers {
                    println!(
                        "    worker {}: {} batches, {} points, {}ms busy, {:.0}% utilized",
                        w.worker,
                        w.batches,
                        w.points,
                        w.busy_ms,
                        w.utilization * 100.0
                    );
                }
                let f = &report.flight;
                println!(
                    "  flight: {} emitted, {} written, {} dropped, {} watchers",
                    f.emitted, f.written, f.dropped, f.watchers
                );
            }
            Ok(())
        }
        "watch" => {
            if !rest.is_empty() {
                return Err(USAGE.to_string());
            }
            eprintln!("watching {} (until daemon shutdown)…", sock.display());
            connect()?.watch(|record| match serde_json::to_string(&record) {
                Ok(line) => {
                    println!("{line}");
                    true
                }
                Err(_) => false,
            })?;
            Ok(())
        }
        "flight" => {
            let (input, chrome_out) = match rest {
                [input] => (input, None),
                [input, flag, out] if flag == "--chrome" => (input, Some(out)),
                _ => {
                    return Err(format!(
                        "flight wants IN.jsonl [--chrome OUT.json]\n{USAGE}"
                    ))
                }
            };
            let records = load_flight(&PathBuf::from(input))?;
            let problems = validate_chains(&records);
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("  broken chain: {p}");
                }
                return Err(format!(
                    "{}: {} of {} records leave broken span chains",
                    input,
                    problems.len(),
                    records.len()
                ));
            }
            println!(
                "{input}: {} records, every span chain complete",
                records.len()
            );
            if let Some(out) = chrome_out {
                let json = chrome_trace(&records);
                let summary = check_daemon_trace(&json)
                    .map_err(|e| format!("exported trace failed validation: {e}"))?;
                std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
                println!(
                    "{out}: chrome trace with {} job spans, {} batch spans, {} queue samples",
                    summary.jobs, summary.batch_spans, summary.counter_samples
                );
            }
            Ok(())
        }
        "fetch" => {
            if rest.is_empty() {
                return Err(format!("fetch needs at least one KEY\n{USAGE}"));
            }
            let points = connect()?.fetch(rest.to_vec())?;
            let mut missing = 0;
            for p in &points {
                match &p.point {
                    Some(point) => {
                        println!(
                            "{}  rate={} avg_latency={} throughput={}",
                            p.key, point.rate, point.avg_latency, point.throughput
                        );
                        if let Some(prov) = &p.provenance {
                            let by = match prov.worker {
                                Some(w) => format!("worker {w}"),
                                None => "batch executor".to_string(),
                            };
                            println!(
                                "    computed by {by} in {}ms ({} cycles, git {})",
                                prov.wall_ms,
                                prov.cycles,
                                if prov.git_sha.is_empty() {
                                    "unknown"
                                } else {
                                    &prov.git_sha
                                }
                            );
                        }
                    }
                    None => {
                        println!("{}  (not stored)", p.key);
                        missing += 1;
                    }
                }
            }
            if missing > 0 {
                return Err(format!("{missing} of {} keys not stored", points.len()));
            }
            Ok(())
        }
        "evict" => {
            if rest.is_empty() {
                return Err(format!("evict needs at least one KEY\n{USAGE}"));
            }
            let removed = connect()?.evict(rest.to_vec())?;
            println!("evicted {removed} of {} entries", rest.len());
            Ok(())
        }
        "gc" => {
            let report = connect()?.gc()?;
            println!(
                "gc: scanned {}, kept {}, migrated {}, dropped {} ({} stale, {} corrupt, {} temp)",
                report.scanned,
                report.kept,
                report.migrated,
                report.dropped(),
                report.dropped_stale,
                report.dropped_corrupt,
                report.dropped_temp
            );
            Ok(())
        }
        "shutdown" => {
            connect()?.shutdown()?;
            println!("nocserve at {} is shutting down", sock.display());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}
