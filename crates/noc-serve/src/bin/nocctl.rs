//! Operator CLI for a running `nocserve` daemon.
//!
//! ```text
//! nocctl [--sock PATH] ping [--wait SECS]
//! nocctl [--sock PATH] status [--json]
//! nocctl [--sock PATH] fetch KEY...
//! nocctl [--sock PATH] evict KEY...
//! nocctl [--sock PATH] gc
//! nocctl [--sock PATH] shutdown
//! ```
//!
//! The socket defaults to `NOC_SERVE_SOCK`, then `NOC_SERVE`, then
//! `results/nocserve.sock`. `ping --wait N` retries for up to N seconds
//! — CI uses it as the daemon-readiness barrier. `status --json` dumps
//! the raw [`bench::proto::StatusReport`] (CI's `serve-summary.json`).

use bench::serve_client::Client;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: nocctl [--sock PATH] <ping [--wait SECS] | status [--json] | fetch KEY... | evict KEY... | gc | shutdown>";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut sock = std::env::var("NOC_SERVE_SOCK")
        .or_else(|_| std::env::var("NOC_SERVE"))
        .ok()
        .filter(|s| !s.is_empty())
        .map_or_else(bench::serve_client::default_socket, PathBuf::from);
    if args.first().is_some_and(|a| a == "--sock") {
        args.remove(0);
        if args.is_empty() {
            return Err(format!("--sock needs a value\n{USAGE}"));
        }
        sock = PathBuf::from(args.remove(0));
    }
    let Some(cmd) = args.first().cloned() else {
        return Err(USAGE.to_string());
    };
    let rest = &args[1..];

    let connect = || {
        Client::connect(&sock)
            .map_err(|e| format!("cannot reach nocserve at {}: {e}", sock.display()))
    };
    match cmd.as_str() {
        "ping" => {
            let wait_secs: u64 = match rest {
                [] => 0,
                [flag, secs] if flag == "--wait" => secs
                    .parse()
                    .map_err(|_| format!("--wait wants seconds, got `{secs}`"))?,
                _ => return Err(USAGE.to_string()),
            };
            let deadline = Instant::now() + Duration::from_secs(wait_secs);
            loop {
                match connect().and_then(|mut c| c.ping()) {
                    Ok(proto) => {
                        println!("pong (proto v{proto}) from {}", sock.display());
                        return Ok(());
                    }
                    Err(e) if Instant::now() >= deadline => return Err(e),
                    Err(_) => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        "status" => {
            let report = connect()?.status()?;
            if rest.iter().any(|a| a == "--json") {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report)
                        .map_err(|e| format!("cannot encode status: {e}"))?
                );
            } else {
                println!(
                    "nocserve at {} (proto v{}, schema v{})",
                    sock.display(),
                    report.proto,
                    report.schema
                );
                println!(
                    "  uptime {}s, {} workers",
                    report.uptime_secs, report.workers
                );
                println!(
                    "  connections {}, requests {} ({} malformed)",
                    report.connections, report.requests, report.bad_requests
                );
                println!(
                    "  jobs {}/{} complete; points {} requested = {} computed + {} store hits + {} memory hits + {} deduped ({} failed)",
                    report.jobs_completed,
                    report.jobs_submitted,
                    report.points_requested,
                    report.points_computed,
                    report.store_hits,
                    report.memory_hits,
                    report.dedup_waits,
                    report.points_failed
                );
                println!(
                    "  queue {} (+{} in flight); store {}: {} entries, {} bytes ({} evictions)",
                    report.queue_depth,
                    report.inflight,
                    report.store_dir,
                    report.store.entries,
                    report.store.bytes,
                    report.evictions
                );
            }
            Ok(())
        }
        "fetch" => {
            if rest.is_empty() {
                return Err(format!("fetch needs at least one KEY\n{USAGE}"));
            }
            let points = connect()?.fetch(rest.to_vec())?;
            let mut missing = 0;
            for p in &points {
                match &p.point {
                    Some(point) => println!(
                        "{}  rate={} avg_latency={} throughput={}",
                        p.key, point.rate, point.avg_latency, point.throughput
                    ),
                    None => {
                        println!("{}  (not stored)", p.key);
                        missing += 1;
                    }
                }
            }
            if missing > 0 {
                return Err(format!("{missing} of {} keys not stored", points.len()));
            }
            Ok(())
        }
        "evict" => {
            if rest.is_empty() {
                return Err(format!("evict needs at least one KEY\n{USAGE}"));
            }
            let removed = connect()?.evict(rest.to_vec())?;
            println!("evicted {removed} of {} entries", rest.len());
            Ok(())
        }
        "gc" => {
            let report = connect()?.gc()?;
            println!(
                "gc: scanned {}, kept {}, migrated {}, dropped {} ({} stale, {} corrupt, {} temp)",
                report.scanned,
                report.kept,
                report.migrated,
                report.dropped(),
                report.dropped_stale,
                report.dropped_corrupt,
                report.dropped_temp
            );
            Ok(())
        }
        "shutdown" => {
            connect()?.shutdown()?;
            println!("nocserve at {} is shutting down", sock.display());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}
