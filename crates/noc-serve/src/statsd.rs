//! Telemetry sink emitting [statsd line protocol] counters.
//!
//! The daemon appends one metric per line to a plain file (set
//! `NOC_SERVE_STATSD=<path>`), so "scraping" is `tail -f` or feeding
//! the file to any statsd relay. Lines look like:
//!
//! ```text
//! nocserve.points_computed:4|c
//! nocserve.queue_depth:2|g
//! nocserve.batch_ms:118|ms
//! ```
//!
//! Writes are best-effort appends: telemetry must never take the
//! service down, so a missing directory or full disk silently drops
//! lines. When no path is configured every call is a no-op.
//!
//! [statsd line protocol]: https://github.com/statsd/statsd/blob/master/docs/metric_types.md

use std::io::Write;
use std::path::PathBuf;

/// Prefix stamped onto every metric name.
const PREFIX: &str = "nocserve";

/// A statsd-line sink, either file-backed or disabled.
#[derive(Debug, Clone, Default)]
pub struct StatsdSink {
    path: Option<PathBuf>,
}

impl StatsdSink {
    /// A sink appending to `path`; `None` disables emission.
    pub fn new(path: Option<PathBuf>) -> StatsdSink {
        StatsdSink { path }
    }

    /// A sink configured from `NOC_SERVE_STATSD` (empty/unset disables).
    pub fn from_env() -> StatsdSink {
        StatsdSink::new(
            std::env::var("NOC_SERVE_STATSD")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from),
        )
    }

    /// Whether lines are actually being written anywhere.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Emits a counter increment (`|c`).
    pub fn count(&self, metric: &str, value: u64) {
        self.emit(metric, value, "c");
    }

    /// Emits a gauge level (`|g`).
    pub fn gauge(&self, metric: &str, value: u64) {
        self.emit(metric, value, "g");
    }

    /// Emits a timing in milliseconds (`|ms`).
    pub fn timing_ms(&self, metric: &str, value: u64) {
        self.emit(metric, value, "ms");
    }

    fn emit(&self, metric: &str, value: u64, kind: &str) {
        let Some(path) = &self.path else {
            return;
        };
        let line = format!("{PREFIX}.{metric}:{value}|{kind}\n");
        // O_APPEND keeps concurrent small writes line-atomic; failures
        // drop the line, never the service.
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_statsd_lines_in_order() {
        let path = std::env::temp_dir().join(format!("nocstatsd_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sink = StatsdSink::new(Some(path.clone()));
        assert!(sink.enabled());
        sink.count("points_computed", 4);
        sink.gauge("queue_depth", 2);
        sink.timing_ms("batch_ms", 118);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "nocserve.points_computed:4|c\nnocserve.queue_depth:2|g\nnocserve.batch_ms:118|ms\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = StatsdSink::new(None);
        assert!(!sink.enabled());
        sink.count("anything", 1); // must not panic or create files
    }
}
