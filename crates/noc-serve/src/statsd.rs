//! Telemetry sink emitting [statsd line protocol] counters.
//!
//! `NOC_SERVE_STATSD` names the target: a plain file path (one metric
//! per line, so "scraping" is `tail -f` or feeding the file to any
//! statsd relay) or `udp://host:port` to speak to a real statsd daemon.
//! Lines look like:
//!
//! ```text
//! nocserve.points_computed:4|c
//! nocserve.queue_depth:2|g
//! nocserve.batch_ms:118|ms
//! ```
//!
//! The sink is a **drain target**, not an inline emitter: `count` /
//! `gauge` / `timing_ms` only buffer lines in memory, and the metrics
//! registry's sampler tick calls [`StatsdSink::flush`] to write them
//! out in one appending burst (or a handful of multi-metric UDP
//! datagrams). Nothing on a request or worker path ever opens a file.
//!
//! Writes are best-effort: telemetry must never take the service down,
//! so a missing directory, full disk or unreachable UDP peer silently
//! drops lines. When no target is configured every call is a no-op.
//!
//! [statsd line protocol]: https://github.com/statsd/statsd/blob/master/docs/metric_types.md

use std::io::Write;
use std::net::UdpSocket;
use std::path::PathBuf;
use std::sync::Mutex;

/// Prefix stamped onto every metric name.
const PREFIX: &str = "nocserve";

/// Buffered lines past this are dropped until the next flush — the
/// drain loop flushes every tick, so hitting this means the drainer
/// died, and unbounded telemetry must not take memory with it.
const MAX_BUFFERED: usize = 16_384;

/// Keep UDP datagrams under the conventional statsd MTU budget; lines
/// are packed newline-separated until the next one would overflow.
const MAX_DATAGRAM: usize = 1_400;

#[derive(Debug)]
enum Target {
    File(PathBuf),
    Udp { socket: UdpSocket, peer: String },
}

/// A buffered statsd-line sink: file-backed, UDP-backed or disabled.
#[derive(Debug, Default)]
pub struct StatsdSink {
    target: Option<Target>,
    buffer: Mutex<Vec<String>>,
}

/// Statsd metric names: anything outside `[A-Za-z0-9_.-]` becomes `_`
/// so a hostile or accidental name can't smuggle `:`/`|`/newlines into
/// the line protocol.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl StatsdSink {
    /// A sink writing to `target`: `udp://host:port` for a statsd
    /// daemon, any other non-empty string as a file path to append to,
    /// `None` to disable. An unusable UDP target degrades to disabled
    /// (telemetry is best-effort by contract).
    pub fn new(target: Option<&str>) -> StatsdSink {
        let target = target.filter(|t| !t.is_empty()).and_then(|t| {
            if let Some(peer) = t.strip_prefix("udp://") {
                let socket = UdpSocket::bind("0.0.0.0:0").ok()?;
                socket.set_nonblocking(true).ok()?;
                Some(Target::Udp {
                    socket,
                    peer: peer.to_string(),
                })
            } else {
                Some(Target::File(PathBuf::from(t)))
            }
        });
        StatsdSink {
            target,
            buffer: Mutex::new(Vec::new()),
        }
    }

    /// A sink configured from `NOC_SERVE_STATSD` (empty/unset disables).
    pub fn from_env() -> StatsdSink {
        StatsdSink::new(std::env::var("NOC_SERVE_STATSD").ok().as_deref())
    }

    /// Whether lines are actually going anywhere.
    pub fn enabled(&self) -> bool {
        self.target.is_some()
    }

    /// Buffers a counter increment (`|c`).
    pub fn count(&self, metric: &str, value: u64) {
        self.push(metric, value, "c");
    }

    /// Buffers a gauge level (`|g`).
    pub fn gauge(&self, metric: &str, value: u64) {
        self.push(metric, value, "g");
    }

    /// Buffers a timing in milliseconds (`|ms`).
    pub fn timing_ms(&self, metric: &str, value: u64) {
        self.push(metric, value, "ms");
    }

    fn push(&self, metric: &str, value: u64, kind: &str) {
        if self.target.is_none() {
            return;
        }
        let line = format!("{PREFIX}.{}:{value}|{kind}", sanitize(metric));
        let mut buffer = self.buffer.lock().expect("statsd buffer lock");
        if buffer.len() < MAX_BUFFERED {
            buffer.push(line);
        }
    }

    /// Writes every buffered line to the target: one buffered append
    /// for a file, packed datagrams for UDP. Called by the sampler tick
    /// and once at shutdown; failures drop the lines, never the
    /// service.
    pub fn flush(&self) {
        let Some(target) = &self.target else { return };
        let lines: Vec<String> = {
            let mut buffer = self.buffer.lock().expect("statsd buffer lock");
            std::mem::take(&mut *buffer)
        };
        if lines.is_empty() {
            return;
        }
        match target {
            Target::File(path) => {
                // One appending open per flush; O_APPEND keeps the
                // burst line-atomic against concurrent readers.
                let Ok(file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                else {
                    return;
                };
                let mut out = std::io::BufWriter::new(file);
                for line in &lines {
                    if writeln!(out, "{line}").is_err() {
                        return;
                    }
                }
                let _ = out.flush();
            }
            Target::Udp { socket, peer } => {
                let mut datagram = String::new();
                for line in &lines {
                    if !datagram.is_empty() && datagram.len() + 1 + line.len() > MAX_DATAGRAM {
                        let _ = socket.send_to(datagram.as_bytes(), peer.as_str());
                        datagram.clear();
                    }
                    if !datagram.is_empty() {
                        datagram.push('\n');
                    }
                    datagram.push_str(line);
                }
                if !datagram.is_empty() {
                    let _ = socket.send_to(datagram.as_bytes(), peer.as_str());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_then_flushes_lines_in_order() {
        let path = std::env::temp_dir().join(format!("nocstatsd_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sink = StatsdSink::new(path.to_str());
        assert!(sink.enabled());
        sink.count("points_computed", 4);
        sink.gauge("queue_depth", 2);
        sink.timing_ms("batch_ms", 118);
        assert!(!path.exists(), "nothing written before flush");
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("flushed file");
        assert_eq!(
            text,
            "nocserve.points_computed:4|c\nnocserve.queue_depth:2|g\nnocserve.batch_ms:118|ms\n"
        );
        sink.flush(); // empty flush appends nothing
        assert_eq!(
            std::fs::read_to_string(&path).expect("file").len(),
            text.len()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn udp_target_packs_datagrams() {
        let listener = UdpSocket::bind("127.0.0.1:0").expect("listener");
        listener
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let addr = listener.local_addr().expect("addr");
        let sink = StatsdSink::new(Some(&format!("udp://{addr}")));
        assert!(sink.enabled());
        sink.count("requests", 7);
        sink.gauge("queue_depth", 3);
        sink.flush();
        let mut buf = [0u8; 2048];
        let n = listener.recv(&mut buf).expect("datagram");
        let text = std::str::from_utf8(&buf[..n]).expect("utf8");
        assert_eq!(text, "nocserve.requests:7|c\nnocserve.queue_depth:3|g");
    }

    #[test]
    fn metric_names_are_sanitized() {
        let path = std::env::temp_dir().join(format!("nocstatsd_san_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sink = StatsdSink::new(path.to_str());
        sink.count("weird name:with|specials\n!", 1);
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("flushed file");
        assert_eq!(text, "nocserve.weird_name_with_specials__:1|c\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = StatsdSink::new(None);
        assert!(!sink.enabled());
        sink.count("anything", 1);
        sink.flush(); // must not panic or create files
    }
}
