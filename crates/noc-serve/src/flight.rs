//! The flight recorder: an append-only JSONL log of every job's
//! lifecycle, plus the live `watch` fan-out and the Perfetto exporter.
//!
//! Producers (the accept loop, submit path and workers) call
//! [`FlightBus::publish`] with a [`FlightRecord`]; the bus stamps the
//! daemon-relative timestamp and hands the record to
//!
//! * a dedicated **writer thread** over a bounded channel — the hot
//!   path only formats one JSON line and `try_send`s it, so a slow or
//!   full disk can *never* stall a worker (the record is dropped and
//!   counted instead);
//! * every live **watcher** (a `watch` connection) over its own bounded
//!   channel — again `try_send`, so a stalled watcher misses records
//!   rather than back-pressuring the engine.
//!
//! The offline half of this module consumes the JSONL file:
//! [`load_flight`] parses it, [`validate_chains`] proves every job's
//! span chain is complete, and [`chrome_trace`] renders it as Chrome
//! `trace_event` JSON (Perfetto-loadable) with workers and jobs as
//! threads under one daemon process — the service-level counterpart of
//! `noc-trace`'s per-flit exporter, following the same conventions.

use bench::proto::{flight_event, FlightStats};
use bench::FlightRecord;
use serde::Content;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records buffered between the hot path and the writer thread. When
/// the writer falls this far behind, further records are dropped (and
/// counted) rather than blocking the engine.
const WRITER_QUEUE: usize = 4_096;

/// Records buffered per `watch` subscriber.
const WATCH_QUEUE: usize = 1_024;

/// The writer flushes after this many buffered records, and whenever
/// the queue goes idle.
const FLUSH_EVERY: u64 = 64;

/// The trace pid under which the daemon's tracks live. `noc-trace`
/// claims pids 0–2 (routers, lanes, telemetry); the service level gets
/// the next one so a daemon trace and a flit trace could coexist.
const PID_DAEMON: u64 = 3;

/// Worker tracks are `tid = WORKER_TID_BASE + worker`.
const WORKER_TID_BASE: u64 = 1;

/// Job tracks are `tid = JOB_TID_BASE + job`, far above any worker id.
const JOB_TID_BASE: u64 = 1_000;

enum WriterMsg {
    Record(String),
    Stop,
}

struct FlightSink {
    tx: SyncSender<WriterMsg>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// The daemon-side event bus. Cheap to publish to from any thread;
/// holds the writer thread (when a log path is configured) and the
/// live watcher registry.
pub struct FlightBus {
    sink: Option<FlightSink>,
    watchers: Mutex<Vec<SyncSender<FlightRecord>>>,
    start: Instant,
    emitted: AtomicU64,
    dropped: AtomicU64,
    written: Arc<AtomicU64>,
}

impl FlightBus {
    /// A bus logging to `path` (`None` disables the on-disk log;
    /// publishing and watching still work). Truncates any previous log
    /// — the flight log is one daemon run's story.
    pub fn new(path: Option<&Path>) -> Result<FlightBus, String> {
        FlightBus::with_queue(path, WRITER_QUEUE)
    }

    fn with_queue(path: Option<&Path>, queue: usize) -> Result<FlightBus, String> {
        let written = Arc::new(AtomicU64::new(0));
        let sink = match path {
            None => None,
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("flight: create {}: {e}", parent.display()))?;
                    }
                }
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("flight: open {}: {e}", path.display()))?;
                let (tx, rx) = sync_channel::<WriterMsg>(queue);
                let written = Arc::clone(&written);
                let handle = std::thread::Builder::new()
                    .name("flight-writer".to_string())
                    .spawn(move || writer_loop(file, rx, &written))
                    .map_err(|e| format!("flight: spawn writer: {e}"))?;
                Some(FlightSink {
                    tx,
                    handle: Mutex::new(Some(handle)),
                })
            }
        };
        Ok(FlightBus {
            sink,
            watchers: Mutex::new(Vec::new()),
            start: Instant::now(),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            written,
        })
    }

    /// Stamps `record` with the daemon-relative timestamp and fans it
    /// out to the log writer and every watcher. Never blocks: a full
    /// writer queue drops the record (counted in [`FlightStats`]), a
    /// full watcher queue skips that watcher.
    pub fn publish(&self, mut record: FlightRecord) {
        record.ts_us = self.start.elapsed().as_micros() as u64;
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            match serde_json::to_string(&record) {
                Ok(line) => {
                    if sink.tx.try_send(WriterMsg::Record(line)).is_err() {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut watchers = self.watchers.lock().expect("flight watchers lock");
        watchers.retain(|tx| match tx.try_send(record.clone()) {
            Ok(()) => true,
            // A slow watcher misses this record but stays subscribed.
            Err(TrySendError::Full(_)) => true,
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    /// Subscribes a live watcher; every subsequent publish is offered
    /// to the returned receiver. The subscription ends when the
    /// receiver is dropped (or the bus shuts down).
    pub fn subscribe(&self) -> Receiver<FlightRecord> {
        let (tx, rx) = sync_channel(WATCH_QUEUE);
        self.watchers.lock().expect("flight watchers lock").push(tx);
        rx
    }

    /// Current bus statistics for the `metrics` report.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            emitted: self.emitted.load(Ordering::Relaxed),
            written: self.written.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            watchers: self.watchers.lock().expect("flight watchers lock").len() as u64,
        }
    }

    /// Flushes and joins the writer thread and disconnects every
    /// watcher. Called once at the end of `serve()`; publishing after
    /// shutdown silently drops records.
    pub fn shutdown(&self) {
        if let Some(sink) = &self.sink {
            // Blocking send: shutdown *should* wait for the queue to
            // drain so the log is complete on disk.
            let _ = sink.tx.send(WriterMsg::Stop);
            let handle = sink.handle.lock().expect("flight writer handle").take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
        self.watchers.lock().expect("flight watchers lock").clear();
    }
}

fn writer_loop(file: std::fs::File, rx: Receiver<WriterMsg>, written: &AtomicU64) {
    let mut out = std::io::BufWriter::new(file);
    let mut unflushed = 0u64;
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(WriterMsg::Record(line)) => {
                if writeln!(out, "{line}").is_ok() {
                    written.fetch_add(1, Ordering::Relaxed);
                    unflushed += 1;
                    if unflushed >= FLUSH_EVERY {
                        let _ = out.flush();
                        unflushed = 0;
                    }
                }
            }
            Ok(WriterMsg::Stop) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if unflushed > 0 {
                    let _ = out.flush();
                    unflushed = 0;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = out.flush();
}

/// Parses a flight JSONL file. Blank lines are skipped; a malformed
/// line is an error naming its line number (the writer emits one record
/// per line, so damage means truncation or external edits).
pub fn load_flight(path: &Path) -> Result<Vec<FlightRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("flight: read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: FlightRecord = serde_json::from_str(line)
            .map_err(|e| format!("flight: {}:{}: {e:?}", path.display(), idx + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Proves every job's span chain in `records` is complete. Returns the
/// list of violations (empty = the log tells a coherent story):
///
/// * every `submitted` job has exactly one `responded` record and as
///   many `resolved` records as it declared points;
/// * every point that was `resolved{enqueued}` was eventually `stored`
///   or `failed`;
/// * per worker, `claimed` / `batch_started` / `batch_done` counts
///   agree (no batch vanished mid-flight);
/// * the log carries at least one `queue` depth sample.
pub fn validate_chains(records: &[FlightRecord]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut submitted: BTreeMap<u64, u64> = BTreeMap::new();
    let mut responded: BTreeMap<u64, u64> = BTreeMap::new();
    let mut resolved: BTreeMap<u64, u64> = BTreeMap::new();
    let mut enqueued_keys: BTreeSet<&str> = BTreeSet::new();
    let mut settled_keys: BTreeSet<&str> = BTreeSet::new();
    let mut per_worker: BTreeMap<u64, [u64; 3]> = BTreeMap::new();
    let mut queue_samples = 0u64;
    for r in records {
        match r.event.as_str() {
            flight_event::SUBMITTED => {
                if let Some(job) = r.job {
                    submitted.insert(job, r.points.unwrap_or(0));
                }
            }
            flight_event::RESPONDED => {
                if let Some(job) = r.job {
                    *responded.entry(job).or_insert(0) += 1;
                }
            }
            flight_event::RESOLVED => {
                if let Some(job) = r.job {
                    *resolved.entry(job).or_insert(0) += 1;
                }
                if r.kind.as_deref() == Some(flight_event::KIND_ENQUEUED) {
                    if let Some(key) = &r.key {
                        enqueued_keys.insert(key);
                    }
                }
            }
            flight_event::STORED | flight_event::FAILED => {
                if let Some(key) = &r.key {
                    settled_keys.insert(key);
                }
            }
            flight_event::CLAIMED => {
                per_worker.entry(r.worker.unwrap_or(0)).or_default()[0] += 1;
            }
            flight_event::BATCH_STARTED => {
                per_worker.entry(r.worker.unwrap_or(0)).or_default()[1] += 1;
            }
            flight_event::BATCH_DONE => {
                per_worker.entry(r.worker.unwrap_or(0)).or_default()[2] += 1;
            }
            flight_event::QUEUE => queue_samples += 1,
            other => problems.push(format!("unknown event {other:?}")),
        }
    }
    for (job, points) in &submitted {
        match responded.get(job) {
            None => problems.push(format!("job {job}: submitted but never responded")),
            Some(1) => {}
            Some(n) => problems.push(format!("job {job}: responded {n} times")),
        }
        let seen = resolved.get(job).copied().unwrap_or(0);
        if seen != *points {
            problems.push(format!(
                "job {job}: {points} points submitted but {seen} resolved"
            ));
        }
    }
    for (job, _) in responded.iter().filter(|(j, _)| !submitted.contains_key(j)) {
        problems.push(format!("job {job}: responded but never submitted"));
    }
    for key in enqueued_keys.difference(&settled_keys) {
        problems.push(format!("point {key}: enqueued but never stored or failed"));
    }
    for (worker, [claimed, started, done]) in &per_worker {
        if claimed != started || started != done {
            problems.push(format!(
                "worker {worker}: {claimed} claimed / {started} started / {done} done"
            ));
        }
    }
    if queue_samples == 0 {
        problems.push("no queue depth samples".to_string());
    }
    problems
}

fn s(v: &str) -> Content {
    Content::Str(v.to_string())
}

fn u(v: u64) -> Content {
    Content::U128(v as u128)
}

fn meta(name: &str, tid: Option<u64>, label: String) -> Content {
    let mut fields = vec![
        ("name".to_string(), s(name)),
        ("ph".to_string(), s("M")),
        ("pid".to_string(), u(PID_DAEMON)),
    ];
    if let Some(t) = tid {
        fields.push(("tid".to_string(), u(t)));
    }
    fields.push((
        "args".to_string(),
        Content::Map(vec![("name".to_string(), Content::Str(label))]),
    ));
    Content::Map(fields)
}

fn span(
    name: &str,
    cat: &str,
    tid: u64,
    ts: u64,
    dur: u64,
    args: Vec<(String, Content)>,
) -> Content {
    Content::Map(vec![
        ("name".to_string(), s(name)),
        ("cat".to_string(), s(cat)),
        ("ph".to_string(), s("X")),
        ("pid".to_string(), u(PID_DAEMON)),
        ("tid".to_string(), u(tid)),
        ("ts".to_string(), u(ts)),
        ("dur".to_string(), u(dur.max(1))),
        ("args".to_string(), Content::Map(args)),
    ])
}

fn instant(name: &str, cat: &str, tid: u64, ts: u64, args: Vec<(String, Content)>) -> Content {
    Content::Map(vec![
        ("name".to_string(), s(name)),
        ("cat".to_string(), s(cat)),
        ("ph".to_string(), s("i")),
        ("s".to_string(), s("t")),
        ("pid".to_string(), u(PID_DAEMON)),
        ("tid".to_string(), u(tid)),
        ("ts".to_string(), u(ts)),
        ("args".to_string(), Content::Map(args)),
    ])
}

/// Renders flight records as Chrome `trace_event` JSON (the same array
/// format `noc-trace` emits, loadable at `ui.perfetto.dev`):
///
/// * one process (`pid 3`, "nocserve daemon");
/// * one thread per **worker** carrying its batches as complete spans
///   (`batch`, back-computed from `batch_done` and its `wall_ms`) plus
///   `claimed`/`stored`/`failed` instants;
/// * one thread per **job** carrying the job's `submitted → responded`
///   lifetime as a complete span plus per-point `resolved:<kind>`
///   instants;
/// * a `queue_depth` counter track from the sampler's `queue` records.
///
/// Timestamps are already microseconds since daemon start, Perfetto's
/// native unit.
pub fn chrome_trace(records: &[FlightRecord]) -> String {
    let mut events: Vec<Content> = Vec::new();
    events.push(meta("process_name", None, "nocserve daemon".to_string()));
    let workers: BTreeSet<u64> = records.iter().filter_map(|r| r.worker).collect();
    for w in &workers {
        events.push(meta(
            "thread_name",
            Some(WORKER_TID_BASE + w),
            format!("worker {w}"),
        ));
    }
    let mut job_bounds: BTreeMap<u64, (Option<u64>, Option<u64>, u64)> = BTreeMap::new();
    for r in records {
        let Some(job) = r.job else { continue };
        let entry = job_bounds.entry(job).or_insert((None, None, 0));
        match r.event.as_str() {
            flight_event::SUBMITTED => {
                entry.0 = Some(r.ts_us);
                entry.2 = r.points.unwrap_or(0);
            }
            flight_event::RESPONDED => entry.1 = Some(r.ts_us),
            _ => {}
        }
    }
    for (job, (start, end, points)) in &job_bounds {
        let tid = JOB_TID_BASE + job;
        events.push(meta("thread_name", Some(tid), format!("job {job}")));
        if let (Some(start), Some(end)) = (start, end) {
            events.push(span(
                &format!("job {job}"),
                "job",
                tid,
                *start,
                end.saturating_sub(*start),
                vec![("points".to_string(), u(*points))],
            ));
        }
    }
    for r in records {
        match r.event.as_str() {
            flight_event::RESOLVED => {
                if let Some(job) = r.job {
                    let kind = r.kind.as_deref().unwrap_or("?");
                    let mut args = vec![("kind".to_string(), s(kind))];
                    if let Some(key) = &r.key {
                        args.push(("key".to_string(), s(key)));
                    }
                    events.push(instant(
                        &format!("resolved:{kind}"),
                        "resolve",
                        JOB_TID_BASE + job,
                        r.ts_us,
                        args,
                    ));
                }
            }
            flight_event::BATCH_DONE => {
                if let Some(worker) = r.worker {
                    let dur = r.wall_ms.unwrap_or(0).saturating_mul(1_000);
                    let mut args = Vec::new();
                    if let Some(points) = r.points {
                        args.push(("points".to_string(), u(points)));
                    }
                    if let Some(cycles) = r.cycles {
                        args.push(("cycles".to_string(), u(cycles)));
                    }
                    events.push(span(
                        "batch",
                        "batch",
                        WORKER_TID_BASE + worker,
                        r.ts_us.saturating_sub(dur),
                        dur,
                        args,
                    ));
                }
            }
            flight_event::CLAIMED | flight_event::STORED | flight_event::FAILED => {
                if let Some(worker) = r.worker {
                    let mut args = Vec::new();
                    if let Some(key) = &r.key {
                        args.push(("key".to_string(), s(key)));
                    }
                    events.push(instant(
                        &r.event,
                        "worker",
                        WORKER_TID_BASE + worker,
                        r.ts_us,
                        args,
                    ));
                }
            }
            flight_event::QUEUE => {
                events.push(Content::Map(vec![
                    ("name".to_string(), s("queue_depth")),
                    ("ph".to_string(), s("C")),
                    ("pid".to_string(), u(PID_DAEMON)),
                    ("ts".to_string(), u(r.ts_us)),
                    (
                        "args".to_string(),
                        Content::Map(vec![("depth".to_string(), u(r.depth.unwrap_or(0)))]),
                    ),
                ]));
            }
            _ => {}
        }
    }
    serde_json::to_string(&Content::Seq(events)).expect("chrome trace serializes")
}

/// What [`check_daemon_trace`] verified about an exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonTraceSummary {
    /// Jobs with a complete lifetime span.
    pub jobs: u64,
    /// Worker batch spans.
    pub batch_spans: u64,
    /// `queue_depth` counter samples.
    pub counter_samples: u64,
}

/// Structurally validates an exported daemon trace: well-formed JSON
/// array, every event under `pid 3` with the keys its phase requires,
/// a named daemon process, every job thread carrying its lifetime span,
/// and a non-empty `queue_depth` counter track.
pub fn check_daemon_trace(json: &str) -> Result<DaemonTraceSummary, String> {
    let root: Content = serde_json::from_str(json).map_err(|e| format!("bad JSON: {e:?}"))?;
    let events = root.as_seq().ok_or("trace is not an array")?;
    let mut named_process = false;
    let mut job_threads: BTreeSet<u64> = BTreeSet::new();
    let mut job_spans: BTreeSet<u64> = BTreeSet::new();
    let mut batch_spans = 0u64;
    let mut counter_samples = 0u64;
    for (idx, event) in events.iter().enumerate() {
        let map = event
            .as_map()
            .ok_or(format!("event {idx}: not an object"))?;
        let get = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = get("ph")
            .and_then(Content::as_str)
            .ok_or(format!("event {idx}: missing ph"))?;
        let pid = get("pid")
            .and_then(Content::as_u64)
            .ok_or(format!("event {idx}: missing pid"))?;
        if pid != PID_DAEMON {
            return Err(format!("event {idx}: pid {pid}, expected {PID_DAEMON}"));
        }
        let name = get("name")
            .and_then(Content::as_str)
            .ok_or(format!("event {idx}: missing name"))?;
        match ph {
            "M" => {
                if name == "process_name" {
                    named_process = true;
                }
                if name == "thread_name" {
                    if let Some(tid) = get("tid").and_then(Content::as_u64) {
                        if tid >= JOB_TID_BASE {
                            job_threads.insert(tid);
                        }
                    }
                }
            }
            "X" => {
                let tid = get("tid")
                    .and_then(Content::as_u64)
                    .ok_or(format!("event {idx}: span missing tid"))?;
                let dur = get("dur")
                    .and_then(Content::as_u64)
                    .ok_or(format!("event {idx}: span missing dur"))?;
                if dur == 0 {
                    return Err(format!("event {idx}: zero-duration span"));
                }
                if get("ts").and_then(Content::as_u64).is_none() {
                    return Err(format!("event {idx}: span missing ts"));
                }
                if tid >= JOB_TID_BASE {
                    job_spans.insert(tid);
                } else {
                    batch_spans += 1;
                }
            }
            "i" => {
                if get("ts").and_then(Content::as_u64).is_none() {
                    return Err(format!("event {idx}: instant missing ts"));
                }
            }
            "C" => {
                if name != "queue_depth" {
                    return Err(format!("event {idx}: unexpected counter {name:?}"));
                }
                counter_samples += 1;
            }
            other => return Err(format!("event {idx}: unknown phase {other:?}")),
        }
    }
    if !named_process {
        return Err("no process_name metadata".to_string());
    }
    for tid in &job_threads {
        if !job_spans.contains(tid) {
            return Err(format!(
                "job thread {} has no lifetime span",
                tid - JOB_TID_BASE
            ));
        }
    }
    if counter_samples == 0 {
        return Err("no queue_depth counter samples".to_string());
    }
    Ok(DaemonTraceSummary {
        jobs: job_spans.len() as u64,
        batch_spans,
        counter_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::proto::flight_event as ev;

    fn record(event: &str) -> FlightRecord {
        FlightRecord::of(event)
    }

    /// A minimal coherent log: one job, one enqueued point, one batch.
    fn coherent_log() -> Vec<FlightRecord> {
        let mut log = Vec::new();
        let mut r = record(ev::SUBMITTED);
        r.job = Some(1);
        r.points = Some(2);
        log.push(r);
        let mut r = record(ev::RESOLVED);
        r.job = Some(1);
        r.key = Some("00000000000000aa".to_string());
        r.kind = Some(ev::KIND_STORE.to_string());
        log.push(r);
        let mut r = record(ev::RESOLVED);
        r.job = Some(1);
        r.key = Some("00000000000000bb".to_string());
        r.kind = Some(ev::KIND_ENQUEUED.to_string());
        log.push(r);
        let mut r = record(ev::QUEUE);
        r.depth = Some(1);
        log.push(r);
        let mut r = record(ev::CLAIMED);
        r.worker = Some(0);
        r.points = Some(1);
        log.push(r);
        let mut r = record(ev::BATCH_STARTED);
        r.worker = Some(0);
        r.points = Some(1);
        log.push(r);
        let mut r = record(ev::BATCH_DONE);
        r.worker = Some(0);
        r.points = Some(1);
        r.wall_ms = Some(12);
        r.cycles = Some(3_000);
        r.ts_us = 20_000;
        log.push(r);
        let mut r = record(ev::STORED);
        r.worker = Some(0);
        r.key = Some("00000000000000bb".to_string());
        r.ts_us = 20_001;
        log.push(r);
        let mut r = record(ev::RESPONDED);
        r.job = Some(1);
        r.ts_us = 20_500;
        log.push(r);
        log
    }

    #[test]
    fn bus_writes_jsonl_and_counts() {
        let dir = std::env::temp_dir().join(format!("flight-bus-{}", std::process::id()));
        let path = dir.join("log").join("run.flight");
        let bus = FlightBus::new(Some(&path)).expect("bus");
        for event in [ev::SUBMITTED, ev::QUEUE, ev::RESPONDED] {
            bus.publish(record(event));
        }
        bus.shutdown();
        let stats = bus.stats();
        assert_eq!((stats.emitted, stats.written, stats.dropped), (3, 3, 0));
        let records = load_flight(&path).expect("load");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].event, ev::SUBMITTED);
        assert!(
            records.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "timestamps are monotone"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn full_writer_queue_drops_instead_of_blocking() {
        let dir = std::env::temp_dir().join(format!("flight-full-{}", std::process::id()));
        let path = dir.join("run.flight");
        // Queue of 1 with the writer thread racing us: publish a burst
        // far larger than the queue and require the hot path neither
        // blocked nor lost count.
        let bus = FlightBus::with_queue(Some(&path), 1).expect("bus");
        for _ in 0..500 {
            bus.publish(record(ev::QUEUE));
        }
        bus.shutdown();
        let stats = bus.stats();
        assert_eq!(stats.emitted, 500);
        assert_eq!(
            stats.written + stats.dropped,
            500,
            "every record either hit disk or was counted dropped: {stats:?}"
        );
        let on_disk = load_flight(&path).expect("load").len() as u64;
        assert_eq!(on_disk, stats.written);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn watchers_receive_until_dropped() {
        let bus = FlightBus::new(None).expect("bus");
        let rx = bus.subscribe();
        assert_eq!(bus.stats().watchers, 1);
        bus.publish(record(ev::SUBMITTED));
        let got = rx.recv().expect("watcher sees the record");
        assert_eq!(got.event, ev::SUBMITTED);
        drop(rx);
        bus.publish(record(ev::RESPONDED));
        assert_eq!(bus.stats().watchers, 0, "disconnected watcher pruned");
        // No sink, so nothing written and nothing dropped.
        assert_eq!((bus.stats().written, bus.stats().dropped), (0, 0));
    }

    #[test]
    fn chain_validator_accepts_coherent_and_names_gaps() {
        assert_eq!(validate_chains(&coherent_log()), Vec::<String>::new());

        // Drop the response: the job chain is broken.
        let mut log = coherent_log();
        log.retain(|r| r.event != ev::RESPONDED);
        let problems = validate_chains(&log);
        assert!(
            problems.iter().any(|p| p.contains("never responded")),
            "{problems:?}"
        );

        // Drop the store: the enqueued point never settled.
        let mut log = coherent_log();
        log.retain(|r| r.event != ev::STORED);
        let problems = validate_chains(&log);
        assert!(
            problems.iter().any(|p| p.contains("never stored")),
            "{problems:?}"
        );

        // Lose a resolution: point counts disagree.
        let mut log = coherent_log();
        let idx = log
            .iter()
            .position(|r| r.event == ev::RESOLVED)
            .expect("has resolved");
        log.remove(idx);
        let problems = validate_chains(&log);
        assert!(
            problems.iter().any(|p| p.contains("resolved")),
            "{problems:?}"
        );
    }

    #[test]
    fn chrome_export_round_trips_the_checker() {
        let json = chrome_trace(&coherent_log());
        let summary = check_daemon_trace(&json).expect("valid trace");
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.batch_spans, 1);
        assert_eq!(summary.counter_samples, 1);
        // The checker rejects a trace whose job thread lost its span.
        let amputated = chrome_trace(
            &coherent_log()
                .into_iter()
                .filter(|r| r.event != ev::RESPONDED)
                .collect::<Vec<_>>(),
        );
        let err = check_daemon_trace(&amputated).expect_err("span missing");
        assert!(err.contains("no lifetime span"), "{err}");
    }
}
