//! The daemon engine: point registry, worker pool, job tracking.
//!
//! Every sweep point is identified by its content-derived cache key
//! ([`bench::point_cache_key`]). The engine keeps one state per key —
//! `Queued → Running → Done`/`Failed` — in a single registry shared by
//! all jobs, which is what makes cross-client deduplication free: a
//! submit that names a key another job is already computing simply
//! *observes* that key instead of enqueueing it again. Lookup order on
//! submit is memory (resolved this lifetime), then the on-disk store,
//! then the queue.
//!
//! Workers claim queued points in batches that share a
//! `(warmup, measure)` window shape and run them through
//! [`noc_sim::batch::run_windows_batched`] over sims built by
//! [`bench::runner::make_sim`] — the same entry points as the batch
//! executor, which is the whole bitwise-equivalence argument: a point's
//! bytes depend only on its key inputs, never on which path (or which
//! batch) computed it. A panicking point poisons only its batch: the
//! worker catches the unwind, marks those keys `Failed` and keeps
//! serving.
//!
//! Observability rides alongside, never inside, the engine lock: every
//! lifecycle step updates the lock-free [`MetricsRegistry`] and
//! publishes a [`FlightRecord`] to the [`FlightBus`] *after* dropping
//! the state lock, and a sampler tick thread turns the registry into
//! statsd lines and queue-depth flight samples every
//! [`ServeConfig::tick_ms`]. Points computed by workers are persisted
//! with a [`Provenance`] stamp (wall time, worker id, daemon git sha)
//! so a fetched result can say where it came from.

use crate::flight::FlightBus;
use crate::metrics::MetricsRegistry;
use crate::statsd::StatsdSink;
use bench::proto::{flight_event, StatusReport};
use bench::runner::{latency_point, make_sim};
use bench::store::{format_key, Provenance};
use bench::{
    point_cache_key, FlightRecord, LatencyPoint, MetricsReport, Store, SweepResult, SweepSpec,
    CACHE_SCHEMA_VERSION,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Socket path to listen on.
    pub socket: PathBuf,
    /// Result store directory (shared with batch runs' `FP_CACHE`).
    pub store_dir: PathBuf,
    /// Worker threads simulating points.
    pub workers: usize,
    /// Max points per worker claim (same-window batch).
    pub batch: usize,
    /// statsd target (file path or `udp://host:port`), if telemetry is
    /// wanted.
    pub statsd: Option<String>,
    /// Flight-recorder JSONL path, if lifecycle logging is wanted.
    pub flight: Option<PathBuf>,
    /// Sampler tick period: gauge sampling, worker utilization and the
    /// statsd drain all run at this cadence.
    pub tick_ms: u64,
}

impl ServeConfig {
    /// Reads the configuration from the environment:
    ///
    /// * `NOC_SERVE_SOCK`, falling back to `NOC_SERVE`, then
    ///   `results/nocserve.sock`;
    /// * `NOC_SERVE_STORE`, falling back to `FP_CACHE`, then
    ///   `results/cache` — deliberately the batch executor's default, so
    ///   daemon and batch runs share one store;
    /// * `NOC_JOBS` workers (default: available cores);
    /// * `NOC_SERVE_BATCH` points per claim (default 4);
    /// * `NOC_SERVE_STATSD` telemetry target (default: off);
    /// * `NOC_SERVE_FLIGHT` flight-recorder JSONL path (default: off);
    /// * `NOC_SERVE_TICK_MS` sampler period (default 500).
    pub fn from_env() -> ServeConfig {
        let env = |k: &str| std::env::var(k).ok().filter(|s| !s.is_empty());
        ServeConfig {
            socket: env("NOC_SERVE_SOCK")
                .or_else(|| env("NOC_SERVE"))
                .map_or_else(bench::serve_client::default_socket, PathBuf::from),
            store_dir: env("NOC_SERVE_STORE")
                .or_else(|| env("FP_CACHE"))
                .map_or_else(|| PathBuf::from("results/cache"), PathBuf::from),
            workers: bench::num_jobs(),
            batch: env("NOC_SERVE_BATCH")
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4),
            statsd: env("NOC_SERVE_STATSD"),
            flight: env("NOC_SERVE_FLIGHT").map(PathBuf::from),
            tick_ms: env("NOC_SERVE_TICK_MS")
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(500),
        }
    }
}

/// Lifecycle of one point in the registry.
enum PointState {
    /// Waiting for a worker; carries everything needed to simulate it.
    Queued {
        spec: SweepSpec,
        rate: f64,
        /// When it entered the queue (feeds the queue-wait histogram).
        since: Instant,
    },
    /// A worker is simulating it right now.
    Running,
    /// Resolved; served from memory from now on.
    Done(LatencyPoint),
    /// The simulation panicked; jobs naming it fail with this message.
    Failed(String),
}

/// Mutable engine state, guarded by one mutex. Counters live in the
/// lock-free [`MetricsRegistry`] instead — only the point registry and
/// queue need the lock.
struct State {
    points: HashMap<u64, PointState>,
    queue: VecDeque<u64>,
    next_job: u64,
    inflight: u64,
}

/// Everything shared between connections, workers and the sampler.
struct Shared {
    state: Mutex<State>,
    /// Signals workers: the queue grew or shutdown was requested.
    work_cv: Condvar,
    /// Signals job waiters: some point resolved or shutdown was requested.
    done_cv: Condvar,
    store: Store,
    statsd: StatsdSink,
    metrics: MetricsRegistry,
    flight: FlightBus,
    /// Daemon-wide build identity, stamped into point provenance.
    git_sha: String,
    started: Instant,
    workers: usize,
    batch: usize,
    shutdown: AtomicBool,
}

/// A submitted job: the accepted counts plus the key grid to collect.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job id, unique within this daemon.
    pub id: u64,
    /// Total points (with multiplicity across specs).
    pub total: u64,
    /// Points newly enqueued by this submit.
    pub computed: u64,
    /// Points served from the store or memory at submit time.
    pub cached: u64,
    /// Points already in flight for another job.
    pub deduped: u64,
    specs: Vec<SweepSpec>,
    /// `keys[i][j]` = key of `specs[i].rates[j]`.
    keys: Vec<Vec<u64>>,
}

/// A progress snapshot for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Points resolved (done or failed) so far.
    pub done: u64,
    /// Total points in the job.
    pub total: u64,
    /// Whether every point has resolved.
    pub complete: bool,
}

/// The sweep-service engine. Cheap to clone (an [`Arc`] handle); the
/// worker pool runs until [`Daemon::request_shutdown`].
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Daemon {
    /// Boots the engine: opens the store, starts the flight recorder,
    /// and spawns the worker pool plus the sampler tick. Threads are
    /// detached; they exit promptly after [`Daemon::request_shutdown`].
    ///
    /// # Errors
    ///
    /// If the flight-recorder log cannot be created — a misconfigured
    /// `--flight` path should fail loudly at boot, not silently record
    /// nothing.
    pub fn start(config: &ServeConfig) -> Result<Daemon, String> {
        let flight = FlightBus::new(config.flight.as_deref())?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                points: HashMap::new(),
                queue: VecDeque::new(),
                next_job: 1,
                inflight: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store: Store::new(config.store_dir.clone()),
            statsd: StatsdSink::new(config.statsd.as_deref()),
            metrics: MetricsRegistry::new(config.workers.max(1)),
            flight,
            git_sha: bench::git_sha(),
            started: Instant::now(),
            workers: config.workers.max(1),
            batch: config.batch.max(1),
            shutdown: AtomicBool::new(false),
        });
        for worker in 0..shared.workers {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, worker));
        }
        let tick = Arc::clone(&shared);
        let tick_ms = config.tick_ms.max(1);
        std::thread::spawn(move || tick_loop(&tick, tick_ms));
        Ok(Daemon { shared })
    }

    /// The store this daemon owns.
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// Registers a sweep job: resolves each point against memory, then
    /// the store, then the in-flight registry, enqueueing only what no
    /// one has computed or started. Returns the job handle to collect.
    pub fn submit(&self, specs: Vec<SweepSpec>) -> Job {
        let m = &self.shared.metrics;
        let mut keys = Vec::with_capacity(specs.len());
        let mut total = 0u64;
        let (mut computed, mut cached, mut deduped) = (0u64, 0u64, 0u64);
        // Flight records are buffered while holding the lock and
        // published only after dropping it — the bus must never extend
        // the engine's critical section.
        let mut trail: Vec<FlightRecord> = Vec::new();
        let mut state = self.shared.state.lock().expect("engine lock");
        let id = state.next_job;
        state.next_job += 1;
        for spec in &specs {
            let mut spec_keys = Vec::with_capacity(spec.rates.len());
            for &rate in &spec.rates {
                let key = point_cache_key(spec, rate);
                spec_keys.push(key);
                total += 1;
                let kind = match state.points.get(&key) {
                    Some(PointState::Done(_) | PointState::Failed(_)) => {
                        cached += 1;
                        m.memory_hits.add(1);
                        flight_event::KIND_MEMORY
                    }
                    Some(PointState::Queued { .. } | PointState::Running) => {
                        deduped += 1;
                        m.dedup_waits.add(1);
                        flight_event::KIND_DEDUP
                    }
                    None => {
                        if let Some(point) = self.shared.store.load(key) {
                            state.points.insert(key, PointState::Done(point));
                            cached += 1;
                            m.store_hits.add(1);
                            flight_event::KIND_STORE
                        } else {
                            state.points.insert(
                                key,
                                PointState::Queued {
                                    spec: spec.clone(),
                                    rate,
                                    since: Instant::now(),
                                },
                            );
                            state.queue.push_back(key);
                            computed += 1;
                            flight_event::KIND_ENQUEUED
                        }
                    }
                };
                let mut r = FlightRecord::of(flight_event::RESOLVED);
                r.job = Some(id);
                r.key = Some(format_key(key));
                r.kind = Some(kind.to_string());
                trail.push(r);
            }
            keys.push(spec_keys);
        }
        m.jobs_submitted.add(1);
        m.points_requested.add(total);
        m.points_enqueued.add(computed);
        m.points_cached.add(cached);
        m.points_deduped.add(deduped);
        m.points_per_job.record(total);
        let queue_depth = state.queue.len() as u64;
        drop(state);
        self.shared.work_cv.notify_all();
        let mut r = FlightRecord::of(flight_event::SUBMITTED);
        r.job = Some(id);
        r.points = Some(total);
        self.shared.flight.publish(r);
        for r in trail {
            self.shared.flight.publish(r);
        }
        let mut r = FlightRecord::of(flight_event::QUEUE);
        r.depth = Some(queue_depth);
        self.shared.flight.publish(r);
        Job {
            id,
            total,
            computed,
            cached,
            deduped,
            specs,
            keys,
        }
    }

    fn progress_locked(&self, state: &State, job: &Job) -> JobProgress {
        let mut done = 0u64;
        for spec_keys in &job.keys {
            for key in spec_keys {
                if matches!(
                    state.points.get(key),
                    Some(PointState::Done(_) | PointState::Failed(_))
                ) {
                    done += 1;
                }
            }
        }
        JobProgress {
            done,
            total: job.total,
            complete: done == job.total,
        }
    }

    /// Blocks until `job`'s done count exceeds `last_done`, the job
    /// completes, or shutdown is requested; returns the fresh snapshot.
    pub fn wait_progress(&self, job: &Job, last_done: u64) -> JobProgress {
        let mut state = self.shared.state.lock().expect("engine lock");
        loop {
            let snap = self.progress_locked(&state, job);
            if snap.complete || snap.done > last_done || self.is_shutdown() {
                return snap;
            }
            let (next, _) = self
                .shared
                .done_cv
                .wait_timeout(state, Duration::from_millis(200))
                .expect("engine lock");
            state = next;
        }
    }

    /// Assembles a completed job's sweeps in spec/rate order.
    ///
    /// # Errors
    ///
    /// If any point failed (worker panic) or the daemon is shutting
    /// down before completion, a readable message naming the first
    /// failed point.
    pub fn collect(&self, job: &Job) -> Result<Vec<SweepResult>, String> {
        let state = self.shared.state.lock().expect("engine lock");
        let mut sweeps = Vec::with_capacity(job.specs.len());
        for (spec, spec_keys) in job.specs.iter().zip(&job.keys) {
            let mut points = Vec::with_capacity(spec_keys.len());
            for (key, &rate) in spec_keys.iter().zip(&spec.rates) {
                match state.points.get(key) {
                    Some(PointState::Done(point)) => points.push(point.clone()),
                    Some(PointState::Failed(msg)) => {
                        return Err(format!(
                            "point {} ({} {} rate={rate}) failed: {msg}",
                            format_key(*key),
                            spec.id.name(),
                            spec.pattern.name()
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "point {} unresolved (daemon shutting down?)",
                            format_key(*key)
                        ));
                    }
                }
            }
            sweeps.push(SweepResult {
                scheme: spec.id.name().to_string(),
                pattern: spec.pattern.name().to_string(),
                size: spec.size,
                points,
            });
        }
        drop(state);
        self.shared.metrics.jobs_completed.add(1);
        Ok(sweeps)
    }

    /// Looks up one stored point: memory first, then the store.
    pub fn fetch(&self, key: u64) -> Option<LatencyPoint> {
        self.fetch_entry(key).map(|(point, _)| point)
    }

    /// Looks up one stored point together with its provenance stamp.
    /// The store is consulted first (it carries provenance); memory
    /// covers points whose envelope predates the stamp or that only
    /// live in this lifetime.
    pub fn fetch_entry(&self, key: u64) -> Option<(LatencyPoint, Option<Provenance>)> {
        if let Some(entry) = self.shared.store.load_entry(key) {
            return Some(entry);
        }
        let state = self.shared.state.lock().expect("engine lock");
        if let Some(PointState::Done(point)) = state.points.get(&key) {
            return Some((point.clone(), None));
        }
        None
    }

    /// Evicts `key` from both memory and the store. Returns whether
    /// anything was removed. Queued/running points are left alone —
    /// evicting an in-flight point would break jobs waiting on it.
    pub fn evict(&self, key: u64) -> bool {
        let mut state = self.shared.state.lock().expect("engine lock");
        let in_memory = matches!(state.points.get(&key), Some(PointState::Done(_)));
        if in_memory {
            state.points.remove(&key);
        }
        let removed = self.shared.store.evict(key) || in_memory;
        drop(state);
        if removed {
            self.shared.metrics.evictions.add(1);
        }
        removed
    }

    /// Runs a store gc pass (see [`Store::gc`]).
    pub fn gc(&self) -> bench::GcReport {
        let report = self.shared.store.gc();
        self.shared.metrics.gc_dropped.add(report.dropped());
        report
    }

    /// Records an accepted connection (transport layer calls this).
    pub fn note_connection(&self) {
        self.shared.metrics.connections.add(1);
    }

    /// Records a parsed request or a malformed line.
    pub fn note_request(&self, well_formed: bool) {
        if well_formed {
            self.shared.metrics.requests.add(1);
        } else {
            self.shared.metrics.bad_requests.add(1);
        }
    }

    /// Publishes the terminal `responded` flight record for `job` (the
    /// transport layer calls this right after writing the terminal
    /// response line).
    pub fn note_responded(&self, job: u64) {
        let mut r = FlightRecord::of(flight_event::RESPONDED);
        r.job = Some(job);
        self.shared.flight.publish(r);
    }

    /// Subscribes a live `watch` stream to the flight bus.
    pub fn subscribe_flight(&self) -> Receiver<FlightRecord> {
        self.shared.flight.subscribe()
    }

    /// Snapshots every counter into a [`StatusReport`].
    pub fn status(&self) -> StatusReport {
        let m = &self.shared.metrics;
        let state = self.shared.state.lock().expect("engine lock");
        let (queue_depth, inflight) = (state.queue.len() as u64, state.inflight);
        drop(state);
        StatusReport {
            proto: bench::PROTO_VERSION,
            schema: CACHE_SCHEMA_VERSION,
            uptime_secs: self.shared.started.elapsed().as_secs(),
            workers: self.shared.workers as u64,
            connections: m.connections.get(),
            requests: m.requests.get(),
            bad_requests: m.bad_requests.get(),
            jobs_submitted: m.jobs_submitted.get(),
            jobs_completed: m.jobs_completed.get(),
            points_requested: m.points_requested.get(),
            points_computed: m.points_computed.get(),
            points_failed: m.points_failed.get(),
            store_hits: m.store_hits.get(),
            memory_hits: m.memory_hits.get(),
            dedup_waits: m.dedup_waits.get(),
            evictions: m.evictions.get(),
            queue_depth,
            inflight,
            store: self.shared.store.stats(),
            store_dir: self.shared.store.dir().display().to_string(),
        }
    }

    /// Snapshots the full metrics registry (counters, gauges,
    /// histograms, per-worker utilization, flight-bus health) into the
    /// wire report behind `nocctl metrics`.
    pub fn metrics_report(&self) -> MetricsReport {
        self.sample_now();
        self.shared.metrics.report(
            self.shared.started.elapsed().as_secs(),
            self.shared.flight.stats(),
        )
    }

    /// One sampler observation (also called by the tick thread).
    fn sample_now(&self) {
        let state = self.shared.state.lock().expect("engine lock");
        let (depth, inflight) = (state.queue.len() as u64, state.inflight);
        drop(state);
        self.shared.metrics.sample(depth, inflight);
    }

    /// Flags shutdown and wakes every worker and job waiter.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Final observability drain: pushes remaining counter deltas and
    /// timings to statsd, then flushes and joins the flight writer so
    /// the JSONL log is complete on disk. Call once, after the last
    /// request is answered.
    pub fn flush_observability(&self) {
        self.shared.metrics.drain_into(&self.shared.statsd);
        self.shared.flight.shutdown();
    }
}

/// Sampler tick body: every `tick_ms`, sample the gauges and worker
/// busy bits, publish a queue-depth flight record, and drain the
/// registry into the statsd sink.
fn tick_loop(shared: &Arc<Shared>, tick_ms: u64) {
    let daemon = Daemon {
        shared: Arc::clone(shared),
    };
    loop {
        std::thread::sleep(Duration::from_millis(tick_ms));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        daemon.sample_now();
        let mut r = FlightRecord::of(flight_event::QUEUE);
        r.depth = Some(shared.metrics.queue_depth.load(Ordering::Relaxed));
        shared.flight.publish(r);
        shared.metrics.drain_into(&shared.statsd);
    }
}

/// One claimed point: key plus what to simulate.
struct Claim {
    key: u64,
    spec: SweepSpec,
    rate: f64,
    /// How long it sat queued before this claim.
    queued_ms: u64,
}

/// Pops a batch of queued points sharing one `(warmup, measure)` window
/// shape (the batched runner steps all sims in lockstep windows).
fn claim_batch(state: &mut State, max: usize) -> Vec<Claim> {
    let mut batch: Vec<Claim> = Vec::new();
    let mut window: Option<(u64, u64)> = None;
    let mut skipped = VecDeque::new();
    while batch.len() < max {
        let Some(key) = state.queue.pop_front() else {
            break;
        };
        let fits = match state.points.get(&key) {
            Some(PointState::Queued { spec, .. }) => {
                window.is_none() || window == Some((spec.warmup, spec.measure))
            }
            // Not queued anymore (evicted mid-queue): drop the stale
            // queue entry silently.
            _ => {
                continue;
            }
        };
        if !fits {
            skipped.push_back(key);
            continue;
        }
        let Some(PointState::Queued { spec, rate, since }) =
            state.points.insert(key, PointState::Running)
        else {
            unreachable!("checked Queued above");
        };
        window = Some((spec.warmup, spec.measure));
        batch.push(Claim {
            key,
            spec,
            rate,
            queued_ms: since.elapsed().as_millis() as u64,
        });
    }
    // Mismatched-window points go back to the queue front, in order.
    while let Some(key) = skipped.pop_back() {
        state.queue.push_front(key);
    }
    state.inflight += batch.len() as u64;
    batch
}

/// Simulates one claimed batch. Split out so the worker can wrap the
/// whole simulation in `catch_unwind`.
fn run_claims(claims: &[Claim]) -> Vec<LatencyPoint> {
    let mut sims: Vec<_> = claims
        .iter()
        .map(|c| {
            make_sim(
                c.spec.id,
                c.spec.pattern,
                c.rate,
                c.spec.size,
                c.spec.fp_vcs,
                c.spec.seed,
            )
        })
        .collect();
    let (warmup, measure) = (claims[0].spec.warmup, claims[0].spec.measure);
    let stats = noc_sim::batch::run_windows_batched(&mut sims, warmup, measure);
    claims
        .iter()
        .zip(&stats)
        .map(|(c, s)| latency_point(c.rate, s))
        .collect()
}

/// Worker thread body: claim, simulate, persist, publish, repeat.
fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    let worker_id = worker as u64;
    loop {
        let claims = {
            let mut state = shared.state.lock().expect("engine lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let claims = claim_batch(&mut state, shared.batch);
                if !claims.is_empty() {
                    break claims;
                }
                let (next, _) = shared
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .expect("engine lock");
                state = next;
            }
        };

        let m = &shared.metrics;
        let n = claims.len() as u64;
        let cycles = claims[0].spec.warmup + claims[0].spec.measure;
        m.worker_busy(worker, true);
        for claim in &claims {
            m.queue_wait_ms.record(claim.queued_ms);
            m.note_timing("queue_wait_ms", claim.queued_ms);
        }
        let mut r = FlightRecord::of(flight_event::CLAIMED);
        r.worker = Some(worker_id);
        r.points = Some(n);
        r.cycles = Some(cycles);
        shared.flight.publish(r);
        let mut r = FlightRecord::of(flight_event::BATCH_STARTED);
        r.worker = Some(worker_id);
        r.points = Some(n);
        r.cycles = Some(cycles);
        shared.flight.publish(r);

        let begun = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_claims(&claims)));
        let wall_ms = begun.elapsed().as_millis() as u64;

        // Persist outside the lock: identical keys can only ever race
        // to write identical bytes (provenance differs per writer, but
        // the *point* — the only payload correctness depends on — is
        // key-determined).
        if let Ok(points) = &outcome {
            let provenance =
                Provenance::now(wall_ms, Some(worker_id), shared.git_sha.clone(), cycles);
            for (claim, point) in claims.iter().zip(points) {
                shared
                    .store
                    .store_with_provenance(claim.key, point, Some(&provenance));
            }
        }

        let mut trail: Vec<FlightRecord> = Vec::with_capacity(claims.len() + 1);
        let mut state = shared.state.lock().expect("engine lock");
        state.inflight -= n;
        match outcome {
            Ok(points) => {
                m.points_computed.add(n);
                for (claim, point) in claims.into_iter().zip(points) {
                    let mut r = FlightRecord::of(flight_event::STORED);
                    r.worker = Some(worker_id);
                    r.key = Some(format_key(claim.key));
                    trail.push(r);
                    state.points.insert(claim.key, PointState::Done(point));
                }
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                m.points_failed.add(n);
                for claim in claims {
                    let mut r = FlightRecord::of(flight_event::FAILED);
                    r.worker = Some(worker_id);
                    r.key = Some(format_key(claim.key));
                    trail.push(r);
                    state
                        .points
                        .insert(claim.key, PointState::Failed(msg.clone()));
                }
            }
        }
        drop(state);
        m.worker_busy(worker, false);
        m.worker_batch(worker, n, wall_ms);
        m.batch_wall_ms.record(wall_ms);
        m.note_timing("batch_ms", wall_ms);
        for r in trail {
            shared.flight.publish(r);
        }
        let mut r = FlightRecord::of(flight_event::BATCH_DONE);
        r.worker = Some(worker_id);
        r.points = Some(n);
        r.wall_ms = Some(wall_ms);
        r.cycles = Some(cycles);
        shared.flight.publish(r);
        shared.done_cv.notify_all();
    }
}

/// Renders a caught panic payload readably.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::SchemeId;
    use traffic::SyntheticPattern;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nocserve_core_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> ServeConfig {
        ServeConfig {
            socket: temp_dir(tag).join("sock"),
            store_dir: temp_dir(tag),
            workers: 2,
            batch: 4,
            statsd: None,
            flight: None,
            tick_ms: 500,
        }
    }

    fn boot(cfg: &ServeConfig) -> Daemon {
        Daemon::start(cfg).expect("engine boots")
    }

    fn tiny_spec(seed: u64) -> SweepSpec {
        SweepSpec {
            id: SchemeId::Vct,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02, 0.05],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 200,
            seed,
        }
    }

    fn wait_complete(daemon: &Daemon, job: &Job) {
        let mut done = 0;
        loop {
            let snap = daemon.wait_progress(job, done);
            done = snap.done;
            if snap.complete {
                return;
            }
        }
    }

    #[test]
    fn computes_then_serves_from_memory() {
        let cfg = config("memory");
        let daemon = boot(&cfg);
        let job = daemon.submit(vec![tiny_spec(7)]);
        assert_eq!((job.total, job.computed, job.cached), (2, 2, 0));
        wait_complete(&daemon, &job);
        let first = daemon.collect(&job).expect("job completes");
        assert_eq!(first[0].points.len(), 2);

        // Same submit again: all memory hits, nothing recomputed.
        let again = daemon.submit(vec![tiny_spec(7)]);
        assert_eq!((again.computed, again.cached), (0, 2));
        wait_complete(&daemon, &again);
        let second = daemon.collect(&again).expect("cached job completes");
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let status = daemon.status();
        assert_eq!(status.points_computed, 2);
        assert_eq!(status.memory_hits, 2);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn warm_store_restart_serves_without_recompute() {
        let cfg = config("restart");
        let daemon = boot(&cfg);
        let job = daemon.submit(vec![tiny_spec(9)]);
        wait_complete(&daemon, &job);
        let first = daemon.collect(&job).expect("job completes");
        daemon.request_shutdown();

        // "Restart": a fresh engine over the same store directory.
        let daemon = boot(&cfg);
        let job = daemon.submit(vec![tiny_spec(9)]);
        assert_eq!((job.computed, job.cached), (0, 2), "warm store serves all");
        wait_complete(&daemon, &job);
        let second = daemon.collect(&job).expect("warm job completes");
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        assert_eq!(daemon.status().points_computed, 0);
        assert_eq!(daemon.status().store_hits, 2);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn concurrent_identical_jobs_compute_each_point_once() {
        let cfg = config("dedup");
        let daemon = boot(&cfg);
        let jobs: Vec<Job> = (0..4).map(|_| daemon.submit(vec![tiny_spec(11)])).collect();
        for job in &jobs {
            wait_complete(&daemon, job);
        }
        let baseline = serde_json::to_string(&daemon.collect(&jobs[0]).unwrap()).unwrap();
        for job in &jobs[1..] {
            let sweeps = daemon.collect(job).expect("deduped job completes");
            assert_eq!(serde_json::to_string(&sweeps).unwrap(), baseline);
        }
        let status = daemon.status();
        assert_eq!(status.points_computed, 2, "each unique point exactly once");
        assert_eq!(status.points_requested, 8);
        assert_eq!(
            status.store_hits + status.memory_hits + status.dedup_waits,
            6,
            "the other six lookups resolved without simulation: {status:?}"
        );
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn evict_forces_recompute_of_exactly_that_point() {
        let cfg = config("evict");
        let daemon = boot(&cfg);
        let spec = tiny_spec(13);
        let job = daemon.submit(vec![spec.clone()]);
        wait_complete(&daemon, &job);
        daemon.collect(&job).unwrap();
        let key = point_cache_key(&spec, spec.rates[0]);
        assert!(daemon.evict(key));
        assert!(!daemon.evict(key), "second evict finds nothing");

        let again = daemon.submit(vec![spec]);
        assert_eq!((again.computed, again.cached), (1, 1));
        wait_complete(&daemon, &again);
        daemon.collect(&again).unwrap();
        assert_eq!(daemon.status().points_computed, 3);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn computed_points_carry_worker_provenance() {
        let cfg = config("provenance");
        let daemon = boot(&cfg);
        let spec = tiny_spec(17);
        let job = daemon.submit(vec![spec.clone()]);
        wait_complete(&daemon, &job);
        daemon.collect(&job).expect("job completes");
        let key = point_cache_key(&spec, spec.rates[0]);
        let (point, provenance) = daemon.fetch_entry(key).expect("stored point");
        assert_eq!(point, daemon.fetch(key).expect("fetch agrees"));
        let provenance = provenance.expect("worker-computed points are stamped");
        assert!(provenance.worker.is_some(), "{provenance:?}");
        assert_eq!(provenance.cycles, spec.warmup + spec.measure);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn metrics_report_tracks_engine_activity() {
        let cfg = config("metrics");
        let daemon = boot(&cfg);
        let job = daemon.submit(vec![tiny_spec(19)]);
        wait_complete(&daemon, &job);
        daemon.collect(&job).expect("job completes");
        let report = daemon.metrics_report();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(u64::MAX)
        };
        assert_eq!(counter("jobs_submitted"), 1);
        assert_eq!(counter("points_computed"), 2);
        assert_eq!(counter("points_enqueued"), 2);
        let batches = report
            .histograms
            .iter()
            .find(|h| h.name == "batch_wall_ms")
            .expect("batch histogram");
        assert!(batches.count >= 1, "{batches:?}");
        let per_job = report
            .histograms
            .iter()
            .find(|h| h.name == "points_per_job")
            .expect("per-job histogram");
        assert_eq!((per_job.count, per_job.max), (1, 2));
        assert_eq!(report.workers.len(), 2);
        assert_eq!(
            report.workers.iter().map(|w| w.points).sum::<u64>(),
            2,
            "{report:?}"
        );
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }
}
