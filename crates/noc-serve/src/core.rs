//! The daemon engine: point registry, worker pool, job tracking.
//!
//! Every sweep point is identified by its content-derived cache key
//! ([`bench::point_cache_key`]). The engine keeps one state per key —
//! `Queued → Running → Done`/`Failed` — in a single registry shared by
//! all jobs, which is what makes cross-client deduplication free: a
//! submit that names a key another job is already computing simply
//! *observes* that key instead of enqueueing it again. Lookup order on
//! submit is memory (resolved this lifetime), then the on-disk store,
//! then the queue.
//!
//! Workers claim queued points in batches that share a
//! `(warmup, measure)` window shape and run them through
//! [`noc_sim::batch::run_windows_batched`] over sims built by
//! [`bench::runner::make_sim`] — the same entry points as the batch
//! executor, which is the whole bitwise-equivalence argument: a point's
//! bytes depend only on its key inputs, never on which path (or which
//! batch) computed it. A panicking point poisons only its batch: the
//! worker catches the unwind, marks those keys `Failed` and keeps
//! serving.

use crate::statsd::StatsdSink;
use bench::proto::StatusReport;
use bench::runner::{latency_point, make_sim};
use bench::store::format_key;
use bench::{point_cache_key, LatencyPoint, Store, SweepResult, SweepSpec, CACHE_SCHEMA_VERSION};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Socket path to listen on.
    pub socket: PathBuf,
    /// Result store directory (shared with batch runs' `FP_CACHE`).
    pub store_dir: PathBuf,
    /// Worker threads simulating points.
    pub workers: usize,
    /// Max points per worker claim (same-window batch).
    pub batch: usize,
    /// statsd line file, if telemetry is wanted.
    pub statsd: Option<PathBuf>,
}

impl ServeConfig {
    /// Reads the configuration from the environment:
    ///
    /// * `NOC_SERVE_SOCK`, falling back to `NOC_SERVE`, then
    ///   `results/nocserve.sock`;
    /// * `NOC_SERVE_STORE`, falling back to `FP_CACHE`, then
    ///   `results/cache` — deliberately the batch executor's default, so
    ///   daemon and batch runs share one store;
    /// * `NOC_JOBS` workers (default: available cores);
    /// * `NOC_SERVE_BATCH` points per claim (default 4);
    /// * `NOC_SERVE_STATSD` telemetry file (default: off).
    pub fn from_env() -> ServeConfig {
        let env = |k: &str| std::env::var(k).ok().filter(|s| !s.is_empty());
        ServeConfig {
            socket: env("NOC_SERVE_SOCK")
                .or_else(|| env("NOC_SERVE"))
                .map_or_else(bench::serve_client::default_socket, PathBuf::from),
            store_dir: env("NOC_SERVE_STORE")
                .or_else(|| env("FP_CACHE"))
                .map_or_else(|| PathBuf::from("results/cache"), PathBuf::from),
            workers: bench::num_jobs(),
            batch: env("NOC_SERVE_BATCH")
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4),
            statsd: env("NOC_SERVE_STATSD").map(PathBuf::from),
        }
    }
}

/// Lifecycle of one point in the registry.
enum PointState {
    /// Waiting for a worker; carries everything needed to simulate it.
    Queued { spec: SweepSpec, rate: f64 },
    /// A worker is simulating it right now.
    Running,
    /// Resolved; served from memory from now on.
    Done(LatencyPoint),
    /// The simulation panicked; jobs naming it fail with this message.
    Failed(String),
}

/// Counter block behind the `status` report.
#[derive(Debug, Default)]
struct Counters {
    connections: u64,
    requests: u64,
    bad_requests: u64,
    jobs_submitted: u64,
    jobs_completed: u64,
    points_requested: u64,
    points_computed: u64,
    points_failed: u64,
    store_hits: u64,
    memory_hits: u64,
    dedup_waits: u64,
    evictions: u64,
}

/// Mutable engine state, guarded by one mutex.
struct State {
    points: HashMap<u64, PointState>,
    queue: VecDeque<u64>,
    counters: Counters,
    next_job: u64,
    inflight: u64,
}

/// Everything shared between connections and workers.
struct Shared {
    state: Mutex<State>,
    /// Signals workers: the queue grew or shutdown was requested.
    work_cv: Condvar,
    /// Signals job waiters: some point resolved or shutdown was requested.
    done_cv: Condvar,
    store: Store,
    statsd: StatsdSink,
    started: Instant,
    workers: usize,
    batch: usize,
    shutdown: AtomicBool,
}

/// A submitted job: the accepted counts plus the key grid to collect.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job id, unique within this daemon.
    pub id: u64,
    /// Total points (with multiplicity across specs).
    pub total: u64,
    /// Points newly enqueued by this submit.
    pub computed: u64,
    /// Points served from the store or memory at submit time.
    pub cached: u64,
    /// Points already in flight for another job.
    pub deduped: u64,
    specs: Vec<SweepSpec>,
    /// `keys[i][j]` = key of `specs[i].rates[j]`.
    keys: Vec<Vec<u64>>,
}

/// A progress snapshot for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Points resolved (done or failed) so far.
    pub done: u64,
    /// Total points in the job.
    pub total: u64,
    /// Whether every point has resolved.
    pub complete: bool,
}

/// The sweep-service engine. Cheap to clone (an [`Arc`] handle); the
/// worker pool runs until [`Daemon::request_shutdown`].
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Daemon {
    /// Boots the engine: opens the store and spawns the worker pool.
    /// Threads are detached; they exit promptly after
    /// [`Daemon::request_shutdown`].
    pub fn start(config: &ServeConfig) -> Daemon {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                points: HashMap::new(),
                queue: VecDeque::new(),
                counters: Counters::default(),
                next_job: 1,
                inflight: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store: Store::new(config.store_dir.clone()),
            statsd: StatsdSink::new(config.statsd.clone()),
            started: Instant::now(),
            workers: config.workers.max(1),
            batch: config.batch.max(1),
            shutdown: AtomicBool::new(false),
        });
        for _ in 0..shared.workers {
            let worker = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&worker));
        }
        Daemon { shared }
    }

    /// The store this daemon owns.
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// Registers a sweep job: resolves each point against memory, then
    /// the store, then the in-flight registry, enqueueing only what no
    /// one has computed or started. Returns the job handle to collect.
    pub fn submit(&self, specs: Vec<SweepSpec>) -> Job {
        let mut keys = Vec::with_capacity(specs.len());
        let mut total = 0u64;
        let (mut computed, mut cached, mut deduped) = (0u64, 0u64, 0u64);
        let mut state = self.shared.state.lock().expect("engine lock");
        let id = state.next_job;
        state.next_job += 1;
        for spec in &specs {
            let mut spec_keys = Vec::with_capacity(spec.rates.len());
            for &rate in &spec.rates {
                let key = point_cache_key(spec, rate);
                spec_keys.push(key);
                total += 1;
                match state.points.get(&key) {
                    Some(PointState::Done(_) | PointState::Failed(_)) => {
                        cached += 1;
                        state.counters.memory_hits += 1;
                    }
                    Some(PointState::Queued { .. } | PointState::Running) => {
                        deduped += 1;
                        state.counters.dedup_waits += 1;
                    }
                    None => {
                        if let Some(point) = self.shared.store.load(key) {
                            state.points.insert(key, PointState::Done(point));
                            cached += 1;
                            state.counters.store_hits += 1;
                        } else {
                            state.points.insert(
                                key,
                                PointState::Queued {
                                    spec: spec.clone(),
                                    rate,
                                },
                            );
                            state.queue.push_back(key);
                            computed += 1;
                        }
                    }
                }
            }
            keys.push(spec_keys);
        }
        state.counters.jobs_submitted += 1;
        state.counters.points_requested += total;
        let queue_depth = state.queue.len() as u64;
        drop(state);
        self.shared.work_cv.notify_all();
        let statsd = &self.shared.statsd;
        statsd.count("jobs_submitted", 1);
        statsd.count("points_requested", total);
        statsd.count("points_enqueued", computed);
        statsd.count("points_cached", cached);
        statsd.count("points_deduped", deduped);
        statsd.gauge("queue_depth", queue_depth);
        Job {
            id,
            total,
            computed,
            cached,
            deduped,
            specs,
            keys,
        }
    }

    fn progress_locked(&self, state: &State, job: &Job) -> JobProgress {
        let mut done = 0u64;
        for spec_keys in &job.keys {
            for key in spec_keys {
                if matches!(
                    state.points.get(key),
                    Some(PointState::Done(_) | PointState::Failed(_))
                ) {
                    done += 1;
                }
            }
        }
        JobProgress {
            done,
            total: job.total,
            complete: done == job.total,
        }
    }

    /// Blocks until `job`'s done count exceeds `last_done`, the job
    /// completes, or shutdown is requested; returns the fresh snapshot.
    pub fn wait_progress(&self, job: &Job, last_done: u64) -> JobProgress {
        let mut state = self.shared.state.lock().expect("engine lock");
        loop {
            let snap = self.progress_locked(&state, job);
            if snap.complete || snap.done > last_done || self.is_shutdown() {
                return snap;
            }
            let (next, _) = self
                .shared
                .done_cv
                .wait_timeout(state, Duration::from_millis(200))
                .expect("engine lock");
            state = next;
        }
    }

    /// Assembles a completed job's sweeps in spec/rate order.
    ///
    /// # Errors
    ///
    /// If any point failed (worker panic) or the daemon is shutting
    /// down before completion, a readable message naming the first
    /// failed point.
    pub fn collect(&self, job: &Job) -> Result<Vec<SweepResult>, String> {
        let mut state = self.shared.state.lock().expect("engine lock");
        let mut sweeps = Vec::with_capacity(job.specs.len());
        for (spec, spec_keys) in job.specs.iter().zip(&job.keys) {
            let mut points = Vec::with_capacity(spec_keys.len());
            for (key, &rate) in spec_keys.iter().zip(&spec.rates) {
                match state.points.get(key) {
                    Some(PointState::Done(point)) => points.push(point.clone()),
                    Some(PointState::Failed(msg)) => {
                        return Err(format!(
                            "point {} ({} {} rate={rate}) failed: {msg}",
                            format_key(*key),
                            spec.id.name(),
                            spec.pattern.name()
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "point {} unresolved (daemon shutting down?)",
                            format_key(*key)
                        ));
                    }
                }
            }
            sweeps.push(SweepResult {
                scheme: spec.id.name().to_string(),
                pattern: spec.pattern.name().to_string(),
                size: spec.size,
                points,
            });
        }
        state.counters.jobs_completed += 1;
        drop(state);
        self.shared.statsd.count("jobs_completed", 1);
        Ok(sweeps)
    }

    /// Looks up one stored point: memory first, then the store.
    pub fn fetch(&self, key: u64) -> Option<LatencyPoint> {
        let state = self.shared.state.lock().expect("engine lock");
        if let Some(PointState::Done(point)) = state.points.get(&key) {
            return Some(point.clone());
        }
        drop(state);
        self.shared.store.load(key)
    }

    /// Evicts `key` from both memory and the store. Returns whether
    /// anything was removed. Queued/running points are left alone —
    /// evicting an in-flight point would break jobs waiting on it.
    pub fn evict(&self, key: u64) -> bool {
        let mut state = self.shared.state.lock().expect("engine lock");
        let in_memory = matches!(state.points.get(&key), Some(PointState::Done(_)));
        if in_memory {
            state.points.remove(&key);
        }
        let removed = self.shared.store.evict(key) || in_memory;
        if removed {
            state.counters.evictions += 1;
        }
        drop(state);
        if removed {
            self.shared.statsd.count("evictions", 1);
        }
        removed
    }

    /// Runs a store gc pass (see [`Store::gc`]).
    pub fn gc(&self) -> bench::GcReport {
        let report = self.shared.store.gc();
        self.shared.statsd.count("gc_dropped", report.dropped());
        report
    }

    /// Records an accepted connection (transport layer calls this).
    pub fn note_connection(&self) {
        self.shared
            .state
            .lock()
            .expect("engine lock")
            .counters
            .connections += 1;
        self.shared.statsd.count("connections", 1);
    }

    /// Records a parsed request or a malformed line.
    pub fn note_request(&self, well_formed: bool) {
        let mut state = self.shared.state.lock().expect("engine lock");
        if well_formed {
            state.counters.requests += 1;
        } else {
            state.counters.bad_requests += 1;
        }
        drop(state);
        self.shared.statsd.count(
            if well_formed {
                "requests"
            } else {
                "bad_requests"
            },
            1,
        );
    }

    /// Snapshots every counter into a [`StatusReport`].
    pub fn status(&self) -> StatusReport {
        let state = self.shared.state.lock().expect("engine lock");
        let c = &state.counters;
        StatusReport {
            proto: bench::PROTO_VERSION,
            schema: CACHE_SCHEMA_VERSION,
            uptime_secs: self.shared.started.elapsed().as_secs(),
            workers: self.shared.workers as u64,
            connections: c.connections,
            requests: c.requests,
            bad_requests: c.bad_requests,
            jobs_submitted: c.jobs_submitted,
            jobs_completed: c.jobs_completed,
            points_requested: c.points_requested,
            points_computed: c.points_computed,
            points_failed: c.points_failed,
            store_hits: c.store_hits,
            memory_hits: c.memory_hits,
            dedup_waits: c.dedup_waits,
            evictions: c.evictions,
            queue_depth: state.queue.len() as u64,
            inflight: state.inflight,
            store: self.shared.store.stats(),
            store_dir: self.shared.store.dir().display().to_string(),
        }
    }

    /// Flags shutdown and wakes every worker and job waiter.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// One claimed point: key plus what to simulate.
struct Claim {
    key: u64,
    spec: SweepSpec,
    rate: f64,
}

/// Pops a batch of queued points sharing one `(warmup, measure)` window
/// shape (the batched runner steps all sims in lockstep windows).
fn claim_batch(state: &mut State, max: usize) -> Vec<Claim> {
    let mut batch: Vec<Claim> = Vec::new();
    let mut window: Option<(u64, u64)> = None;
    let mut skipped = VecDeque::new();
    while batch.len() < max {
        let Some(key) = state.queue.pop_front() else {
            break;
        };
        let fits = match state.points.get(&key) {
            Some(PointState::Queued { spec, .. }) => {
                window.is_none() || window == Some((spec.warmup, spec.measure))
            }
            // Not queued anymore (evicted mid-queue): drop the stale
            // queue entry silently.
            _ => {
                continue;
            }
        };
        if !fits {
            skipped.push_back(key);
            continue;
        }
        let Some(PointState::Queued { spec, rate }) = state.points.insert(key, PointState::Running)
        else {
            unreachable!("checked Queued above");
        };
        window = Some((spec.warmup, spec.measure));
        batch.push(Claim { key, spec, rate });
    }
    // Mismatched-window points go back to the queue front, in order.
    while let Some(key) = skipped.pop_back() {
        state.queue.push_front(key);
    }
    state.inflight += batch.len() as u64;
    batch
}

/// Simulates one claimed batch. Split out so the worker can wrap the
/// whole simulation in `catch_unwind`.
fn run_claims(claims: &[Claim]) -> Vec<LatencyPoint> {
    let mut sims: Vec<_> = claims
        .iter()
        .map(|c| {
            make_sim(
                c.spec.id,
                c.spec.pattern,
                c.rate,
                c.spec.size,
                c.spec.fp_vcs,
                c.spec.seed,
            )
        })
        .collect();
    let (warmup, measure) = (claims[0].spec.warmup, claims[0].spec.measure);
    let stats = noc_sim::batch::run_windows_batched(&mut sims, warmup, measure);
    claims
        .iter()
        .zip(&stats)
        .map(|(c, s)| latency_point(c.rate, s))
        .collect()
}

/// Worker thread body: claim, simulate, persist, publish, repeat.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claims = {
            let mut state = shared.state.lock().expect("engine lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let claims = claim_batch(&mut state, shared.batch);
                if !claims.is_empty() {
                    break claims;
                }
                let (next, _) = shared
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .expect("engine lock");
                state = next;
            }
        };

        let begun = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_claims(&claims)));

        // Persist outside the lock: identical keys can only ever race
        // to write identical bytes.
        if let Ok(points) = &outcome {
            for (claim, point) in claims.iter().zip(points) {
                shared.store.store(claim.key, point);
            }
        }

        let n = claims.len() as u64;
        let mut state = shared.state.lock().expect("engine lock");
        state.inflight -= n;
        match outcome {
            Ok(points) => {
                state.counters.points_computed += n;
                for (claim, point) in claims.into_iter().zip(points) {
                    state.points.insert(claim.key, PointState::Done(point));
                }
                shared.statsd.count("points_computed", n);
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                state.counters.points_failed += n;
                for claim in claims {
                    state
                        .points
                        .insert(claim.key, PointState::Failed(msg.clone()));
                }
                shared.statsd.count("points_failed", n);
            }
        }
        drop(state);
        shared
            .statsd
            .timing_ms("batch_ms", begun.elapsed().as_millis() as u64);
        shared.done_cv.notify_all();
    }
}

/// Renders a caught panic payload readably.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::SchemeId;
    use traffic::SyntheticPattern;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nocserve_core_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> ServeConfig {
        ServeConfig {
            socket: temp_dir(tag).join("sock"),
            store_dir: temp_dir(tag),
            workers: 2,
            batch: 4,
            statsd: None,
        }
    }

    fn tiny_spec(seed: u64) -> SweepSpec {
        SweepSpec {
            id: SchemeId::Vct,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02, 0.05],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 200,
            seed,
        }
    }

    fn wait_complete(daemon: &Daemon, job: &Job) {
        let mut done = 0;
        loop {
            let snap = daemon.wait_progress(job, done);
            done = snap.done;
            if snap.complete {
                return;
            }
        }
    }

    #[test]
    fn computes_then_serves_from_memory() {
        let cfg = config("memory");
        let daemon = Daemon::start(&cfg);
        let job = daemon.submit(vec![tiny_spec(7)]);
        assert_eq!((job.total, job.computed, job.cached), (2, 2, 0));
        wait_complete(&daemon, &job);
        let first = daemon.collect(&job).expect("job completes");
        assert_eq!(first[0].points.len(), 2);

        // Same submit again: all memory hits, nothing recomputed.
        let again = daemon.submit(vec![tiny_spec(7)]);
        assert_eq!((again.computed, again.cached), (0, 2));
        wait_complete(&daemon, &again);
        let second = daemon.collect(&again).expect("cached job completes");
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let status = daemon.status();
        assert_eq!(status.points_computed, 2);
        assert_eq!(status.memory_hits, 2);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn warm_store_restart_serves_without_recompute() {
        let cfg = config("restart");
        let daemon = Daemon::start(&cfg);
        let job = daemon.submit(vec![tiny_spec(9)]);
        wait_complete(&daemon, &job);
        let first = daemon.collect(&job).expect("job completes");
        daemon.request_shutdown();

        // "Restart": a fresh engine over the same store directory.
        let daemon = Daemon::start(&cfg);
        let job = daemon.submit(vec![tiny_spec(9)]);
        assert_eq!((job.computed, job.cached), (0, 2), "warm store serves all");
        wait_complete(&daemon, &job);
        let second = daemon.collect(&job).expect("warm job completes");
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        assert_eq!(daemon.status().points_computed, 0);
        assert_eq!(daemon.status().store_hits, 2);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn concurrent_identical_jobs_compute_each_point_once() {
        let cfg = config("dedup");
        let daemon = Daemon::start(&cfg);
        let jobs: Vec<Job> = (0..4).map(|_| daemon.submit(vec![tiny_spec(11)])).collect();
        for job in &jobs {
            wait_complete(&daemon, job);
        }
        let baseline = serde_json::to_string(&daemon.collect(&jobs[0]).unwrap()).unwrap();
        for job in &jobs[1..] {
            let sweeps = daemon.collect(job).expect("deduped job completes");
            assert_eq!(serde_json::to_string(&sweeps).unwrap(), baseline);
        }
        let status = daemon.status();
        assert_eq!(status.points_computed, 2, "each unique point exactly once");
        assert_eq!(status.points_requested, 8);
        assert_eq!(
            status.store_hits + status.memory_hits + status.dedup_waits,
            6,
            "the other six lookups resolved without simulation: {status:?}"
        );
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn evict_forces_recompute_of_exactly_that_point() {
        let cfg = config("evict");
        let daemon = Daemon::start(&cfg);
        let spec = tiny_spec(13);
        let job = daemon.submit(vec![spec.clone()]);
        wait_complete(&daemon, &job);
        daemon.collect(&job).unwrap();
        let key = point_cache_key(&spec, spec.rates[0]);
        assert!(daemon.evict(key));
        assert!(!daemon.evict(key), "second evict finds nothing");

        let again = daemon.submit(vec![spec]);
        assert_eq!((again.computed, again.cached), (1, 1));
        wait_complete(&daemon, &again);
        daemon.collect(&again).unwrap();
        assert_eq!(daemon.status().points_computed, 3);
        daemon.request_shutdown();
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }
}
