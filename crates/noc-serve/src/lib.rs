//! `nocserve` — the persistent sweep service.
//!
//! The figure binaries historically ran every sweep in-process, each
//! invocation paying cold-start simulation for points another run had
//! already computed (shared only through the `FP_CACHE` blob
//! directory). This crate turns that cache into a *service*: one
//! daemon owns the content-addressed result store
//! ([`bench::store::Store`]), accepts sweep jobs over a Unix socket
//! (newline-delimited JSON, [`bench::proto`]), shards points across a
//! worker pool, and deduplicates identical in-flight points across
//! concurrent clients so every point is simulated **exactly once** no
//! matter how many jobs ask for it.
//!
//! Three layers answer a point lookup, cheapest first:
//!
//! 1. the in-memory results map (points resolved this daemon lifetime);
//! 2. the on-disk store — survives restarts, shared with batch runs;
//! 3. the worker pool — [`bench::runner::simulate_point`]'s exact
//!    pipeline ([`bench::runner::make_sim`] +
//!    [`noc_sim::batch::run_windows_batched`]), so daemon-computed
//!    points are bitwise identical to batch-computed ones. The `serve`
//!    CI job diffs the resulting JSON artifacts to hold that line.
//!
//! Module map: [`core`] is the engine (state machine, worker pool,
//! dedup registry); [`server`] the transport (accept loop,
//! per-connection protocol handler); [`metrics`] the lock-free metrics
//! registry (counters, gauges, histograms, worker utilization);
//! [`flight`] the flight recorder (JSONL lifecycle log, live `watch`
//! fan-out, Perfetto export); [`statsd`] the buffered telemetry sink
//! the registry drains into (statsd-format lines over a file or UDP).
//! The `nocserve` binary boots the engine behind the transport;
//! `nocctl` is the operator CLI
//! (ping/status/metrics/watch/flight/fetch/evict/gc/shutdown).
//!
//! Unlike the simulation crates, this crate *intentionally* uses wall
//! clocks, threads and OS sockets — it is a service, not a model.
//! `noc-lint` scopes its determinism rules to the sim crates and lists
//! `noc-serve` in its service-crate whitelist; nothing here may leak
//! into simulation results beyond the [`bench`] entry points above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod flight;
pub mod metrics;
pub mod server;
pub mod statsd;

pub use crate::core::{Daemon, JobProgress, ServeConfig};
pub use flight::{check_daemon_trace, chrome_trace, load_flight, validate_chains, FlightBus};
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use server::serve;
pub use statsd::StatsdSink;
