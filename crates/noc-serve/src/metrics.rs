//! The in-process metrics registry: lock-free counters, gauges and
//! fixed-bucket histograms behind the `metrics` wire command.
//!
//! Every value is an atomic, so recording from workers and connection
//! threads never contends on the engine lock — the registry is written
//! from wherever the event happens and read by two consumers:
//!
//! * the **drainer**: the sampler tick calls
//!   [`MetricsRegistry::drain_into`], which forwards counter *deltas*,
//!   gauge levels and pending timings to the [`StatsdSink`] and flushes
//!   it — the sink is a periodic drain target now, not an inline
//!   emitter;
//! * the **reporter**: [`MetricsRegistry::report`] snapshots everything
//!   into the wire [`MetricsReport`] for `nocctl metrics`.
//!
//! Histograms use fixed logarithmic-ish bucket bounds; percentiles are
//! bucket-resolution (a percentile reports its bucket's *upper bound*),
//! which is exact enough to answer "are batches milliseconds or
//! seconds" without ever allocating on the record path.

use crate::statsd::StatsdSink;
use bench::proto::{FlightStats, HistogramSummary, MetricValue, MetricsReport, WorkerReport};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotone counter that remembers how much of it has been drained
/// (so the statsd drain emits deltas while `metrics` reports totals).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    drained: AtomicU64,
}

impl Counter {
    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The lifetime total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The increase since the last drain (and marks it drained). Only
    /// the single drainer thread calls this, so the read-then-add pair
    /// needs no stronger ordering.
    pub fn take_delta(&self) -> u64 {
        let value = self.value.load(Ordering::Relaxed);
        let drained = self.drained.swap(value, Ordering::Relaxed);
        value.saturating_sub(drained)
    }
}

/// Histogram bucket upper bounds in milliseconds (the last implicit
/// bucket is unbounded). Chosen to resolve both sub-ms queue waits and
/// minute-long batches.
const BOUNDS: [u64; 15] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000,
];

/// A fixed-bucket histogram: allocation-free to record, summarized with
/// bucket-resolution p50/p90/p99.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let idx = BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing the `pct`-th percentile
    /// sample, clamped to the exact max so a percentile never exceeds
    /// an observed value (the overflow bucket reports the exact max).
    /// 0 when empty.
    fn percentile(&self, pct: u64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.max.load(Ordering::Relaxed);
        // Rank of the target sample, 1-based, rounding up.
        let rank = (count * pct).div_ceil(100).max(1);
        let mut seen = 0;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BOUNDS.get(idx).copied().unwrap_or(max).min(max);
            }
        }
        max
    }

    /// Snapshots the histogram into its wire summary.
    pub fn summary(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50),
            p90: self.percentile(90),
            p99: self.percentile(99),
        }
    }
}

/// One worker's utilization counters. `busy` is flipped by the worker
/// around each batch; the sampler tick turns it into a busy/idle duty
/// cycle (`busy_samples / samples`).
#[derive(Debug, Default)]
pub struct WorkerStats {
    busy: AtomicBool,
    samples: AtomicU64,
    busy_samples: AtomicU64,
    batches: AtomicU64,
    points: AtomicU64,
    busy_ms: AtomicU64,
}

impl WorkerStats {
    fn sample(&self) {
        self.samples.fetch_add(1, Ordering::Relaxed);
        if self.busy.load(Ordering::Relaxed) {
            self.busy_samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn report(&self, worker: u64) -> WorkerReport {
        let samples = self.samples.load(Ordering::Relaxed);
        let busy_samples = self.busy_samples.load(Ordering::Relaxed);
        WorkerReport {
            worker,
            batches: self.batches.load(Ordering::Relaxed),
            points: self.points.load(Ordering::Relaxed),
            busy_ms: self.busy_ms.load(Ordering::Relaxed),
            utilization: if samples == 0 {
                0.0
            } else {
                busy_samples as f64 / samples as f64
            },
        }
    }
}

/// Pending timings are bounded: past this many undrained entries new
/// ones are dropped (counted), because telemetry must never grow
/// without bound when no drainer is running.
const MAX_PENDING_TIMINGS: usize = 8_192;

/// The daemon's metrics registry. One instance lives in the engine's
/// shared block; every field is independently updatable without the
/// engine lock.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Connections accepted.
    pub connections: Counter,
    /// Well-formed request lines.
    pub requests: Counter,
    /// Malformed request lines.
    pub bad_requests: Counter,
    /// Submit requests accepted.
    pub jobs_submitted: Counter,
    /// Submit requests fully answered.
    pub jobs_completed: Counter,
    /// Points requested across all jobs (with multiplicity).
    pub points_requested: Counter,
    /// Points newly enqueued at submit time.
    pub points_enqueued: Counter,
    /// Points served from store or memory at submit time.
    pub points_cached: Counter,
    /// Points that piggybacked on in-flight work at submit time.
    pub points_deduped: Counter,
    /// Points actually simulated by the worker pool.
    pub points_computed: Counter,
    /// Points whose simulation panicked.
    pub points_failed: Counter,
    /// Points served from the on-disk store.
    pub store_hits: Counter,
    /// Points served from the in-memory results map.
    pub memory_hits: Counter,
    /// Points deduplicated onto another job's in-flight computation.
    pub dedup_waits: Counter,
    /// Store entries evicted via `evict`.
    pub evictions: Counter,
    /// Store entries removed by gc passes.
    pub gc_dropped: Counter,
    /// Wall-clock per claimed batch.
    pub batch_wall_ms: Histogram,
    /// Queue wait per claimed point (enqueue → claim).
    pub queue_wait_ms: Histogram,
    /// Points per submitted job.
    pub points_per_job: Histogram,
    /// Last-sampled queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Last-sampled in-flight point count (gauge).
    pub inflight: AtomicU64,
    /// Timings dropped because the pending buffer was full.
    pub timings_dropped: Counter,
    workers: Vec<WorkerStats>,
    /// Timings waiting for the next statsd drain (`|ms` lines).
    pending_timings: Mutex<Vec<(&'static str, u64)>>,
}

impl MetricsRegistry {
    /// A registry tracking `workers` worker slots.
    pub fn new(workers: usize) -> MetricsRegistry {
        MetricsRegistry {
            connections: Counter::default(),
            requests: Counter::default(),
            bad_requests: Counter::default(),
            jobs_submitted: Counter::default(),
            jobs_completed: Counter::default(),
            points_requested: Counter::default(),
            points_enqueued: Counter::default(),
            points_cached: Counter::default(),
            points_deduped: Counter::default(),
            points_computed: Counter::default(),
            points_failed: Counter::default(),
            store_hits: Counter::default(),
            memory_hits: Counter::default(),
            dedup_waits: Counter::default(),
            evictions: Counter::default(),
            gc_dropped: Counter::default(),
            batch_wall_ms: Histogram::default(),
            queue_wait_ms: Histogram::default(),
            points_per_job: Histogram::default(),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            timings_dropped: Counter::default(),
            workers: (0..workers.max(1))
                .map(|_| WorkerStats::default())
                .collect(),
            pending_timings: Mutex::new(Vec::new()),
        }
    }

    /// Every counter with its statsd/report name, in report order.
    fn counters(&self) -> [(&'static str, &Counter); 17] {
        [
            ("connections", &self.connections),
            ("requests", &self.requests),
            ("bad_requests", &self.bad_requests),
            ("jobs_submitted", &self.jobs_submitted),
            ("jobs_completed", &self.jobs_completed),
            ("points_requested", &self.points_requested),
            ("points_enqueued", &self.points_enqueued),
            ("points_cached", &self.points_cached),
            ("points_deduped", &self.points_deduped),
            ("points_computed", &self.points_computed),
            ("points_failed", &self.points_failed),
            ("store_hits", &self.store_hits),
            ("memory_hits", &self.memory_hits),
            ("dedup_waits", &self.dedup_waits),
            ("evictions", &self.evictions),
            ("gc_dropped", &self.gc_dropped),
            ("flight_timings_dropped", &self.timings_dropped),
        ]
    }

    /// Marks worker `id` busy or idle (the worker flips this around
    /// each claimed batch).
    pub fn worker_busy(&self, id: usize, busy: bool) {
        if let Some(w) = self.workers.get(id) {
            w.busy.store(busy, Ordering::Relaxed);
        }
    }

    /// Credits worker `id` with one finished batch.
    pub fn worker_batch(&self, id: usize, points: u64, wall_ms: u64) {
        if let Some(w) = self.workers.get(id) {
            w.batches.fetch_add(1, Ordering::Relaxed);
            w.points.fetch_add(points, Ordering::Relaxed);
            w.busy_ms.fetch_add(wall_ms, Ordering::Relaxed);
        }
    }

    /// Queues a timing for the next statsd drain (`name:value|ms`).
    /// Bounded: when the drainer is absent or behind, excess timings
    /// are dropped and counted, never accumulated.
    pub fn note_timing(&self, name: &'static str, ms: u64) {
        let mut pending = self.pending_timings.lock().expect("timings lock");
        if pending.len() < MAX_PENDING_TIMINGS {
            pending.push((name, ms));
        } else {
            drop(pending);
            self.timings_dropped.add(1);
        }
    }

    /// One sampler observation: records the gauge levels and each
    /// worker's busy/idle state.
    pub fn sample(&self, queue_depth: u64, inflight: u64) {
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        self.inflight.store(inflight, Ordering::Relaxed);
        for w in &self.workers {
            w.sample();
        }
    }

    /// Drains counter deltas, gauge levels and pending timings into the
    /// statsd sink, then flushes it. Called from the sampler tick and
    /// once more at shutdown; a disabled sink makes this a near-no-op
    /// (deltas are still consumed).
    pub fn drain_into(&self, sink: &StatsdSink) {
        for (name, counter) in self.counters() {
            let delta = counter.take_delta();
            if delta > 0 {
                sink.count(name, delta);
            }
        }
        sink.gauge("queue_depth", self.queue_depth.load(Ordering::Relaxed));
        sink.gauge("inflight", self.inflight.load(Ordering::Relaxed));
        let timings: Vec<(&'static str, u64)> = {
            let mut pending = self.pending_timings.lock().expect("timings lock");
            std::mem::take(&mut *pending)
        };
        for (name, ms) in timings {
            sink.timing_ms(name, ms);
        }
        sink.flush();
    }

    /// Snapshots the registry into the wire report.
    pub fn report(&self, uptime_secs: u64, flight: FlightStats) -> MetricsReport {
        MetricsReport {
            proto: bench::PROTO_VERSION,
            uptime_secs,
            counters: self
                .counters()
                .iter()
                .map(|(name, counter)| MetricValue {
                    name: (*name).to_string(),
                    value: counter.get(),
                })
                .collect(),
            gauges: vec![
                MetricValue {
                    name: "queue_depth".to_string(),
                    value: self.queue_depth.load(Ordering::Relaxed),
                },
                MetricValue {
                    name: "inflight".to_string(),
                    value: self.inflight.load(Ordering::Relaxed),
                },
            ],
            histograms: vec![
                self.batch_wall_ms.summary("batch_wall_ms"),
                self.queue_wait_ms.summary("queue_wait_ms"),
                self.points_per_job.summary("points_per_job"),
            ],
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(id, w)| w.report(id as u64))
                .collect(),
            flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_deltas_drain_once() {
        let c = Counter::default();
        c.add(3);
        assert_eq!(c.take_delta(), 3);
        assert_eq!(c.take_delta(), 0, "already drained");
        c.add(2);
        assert_eq!((c.get(), c.take_delta()), (5, 2));
    }

    #[test]
    fn histogram_percentiles_are_bucket_bounds() {
        let h = Histogram::default();
        for _ in 0..98 {
            h.record(3); // bucket (2, 5]
        }
        h.record(150); // bucket (100, 200]
        h.record(70_000); // overflow bucket
        let s = h.summary("t");
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 70_000);
        assert_eq!(s.p50, 5, "bulk lands in the (2,5] bucket");
        assert_eq!(s.p90, 5);
        assert_eq!(s.p99, 200, "99th sample is the 150ms one");
        // Percentiles in the overflow bucket report the exact max.
        let h = Histogram::default();
        h.record(1_000_000);
        assert_eq!(h.summary("o").p50, 1_000_000);
        // Empty histogram: everything zero.
        assert_eq!(Histogram::default().summary("e").p99, 0);
    }

    #[test]
    fn worker_utilization_tracks_sampled_busy_state() {
        let reg = MetricsRegistry::new(2);
        reg.worker_busy(0, true);
        reg.sample(4, 2);
        reg.worker_busy(0, false);
        reg.sample(0, 0);
        reg.worker_batch(0, 4, 120);
        let report = reg.report(1, FlightStats::default());
        assert_eq!(report.workers.len(), 2);
        let w0 = &report.workers[0];
        assert!((w0.utilization - 0.5).abs() < 1e-9, "{w0:?}");
        assert_eq!((w0.batches, w0.points, w0.busy_ms), (1, 4, 120));
        assert_eq!(report.workers[1].utilization, 0.0);
        assert_eq!(report.gauges[0].value, 0, "last sample wins");
    }

    #[test]
    fn pending_timings_are_bounded() {
        let reg = MetricsRegistry::new(1);
        for _ in 0..(MAX_PENDING_TIMINGS + 10) {
            reg.note_timing("batch_ms", 1);
        }
        assert_eq!(reg.timings_dropped.get(), 10);
        let pending = reg.pending_timings.lock().unwrap();
        assert_eq!(pending.len(), MAX_PENDING_TIMINGS);
    }
}
