//! The daemon transport: Unix-socket accept loop and the per-connection
//! protocol handler.
//!
//! Each connection gets its own thread speaking the newline-delimited
//! JSON protocol of [`bench::proto`]. Malformed lines are answered with
//! an `error` event and the connection stays usable; a client that
//! disconnects mid-job just loses its stream — the engine keeps
//! computing and the results land in the store, so the retry is free.
//! A `shutdown` request flags the engine, which the accept loop (polling
//! between non-blocking accepts) observes to stop the daemon.

use crate::core::{Daemon, ServeConfig};
use bench::proto::{decode_request, encode, FetchedPoint, Request, Response};
use bench::store::format_key;
use bench::Store;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

/// Boots the engine, binds the socket and serves until a client sends
/// `shutdown`. Removes a stale socket file left by a previous daemon
/// before binding (the store keeps all durable state, so rebinding is
/// always safe).
///
/// # Errors
///
/// Propagates socket bind failures (bad path, permissions).
pub fn serve(config: &ServeConfig) -> std::io::Result<()> {
    if let Some(parent) = config.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;
    let daemon = Daemon::start(config).map_err(std::io::Error::other)?;
    eprintln!(
        "[nocserve] listening on {} (store {}, {} workers, batch {})",
        config.socket.display(),
        config.store_dir.display(),
        config.workers.max(1),
        config.batch.max(1)
    );

    while !daemon.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                daemon.note_connection();
                let handler = daemon.clone();
                std::thread::spawn(move || handle_connection(&handler, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("[nocserve] accept failed: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    // Final drain: push remaining telemetry and join the flight writer
    // so the JSONL log is complete before the process exits.
    daemon.flush_observability();
    let _ = std::fs::remove_file(&config.socket);
    eprintln!("[nocserve] shut down");
    Ok(())
}

/// Writes one response line; `false` means the client is gone.
fn send(stream: &mut UnixStream, resp: &Response) -> bool {
    let mut line = encode(resp);
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}

/// Serves one connection until EOF, a dead peer, or shutdown.
fn handle_connection(daemon: &Daemon, stream: UnixStream) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return; // peer vanished mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode_request(&line) {
            Ok(request) => {
                daemon.note_request(true);
                request
            }
            Err(message) => {
                daemon.note_request(false);
                if !send(&mut writer, &Response::Error { message }) {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Ping => send(
                &mut writer,
                &Response::Pong {
                    proto: bench::PROTO_VERSION,
                },
            ),
            Request::Status => send(&mut writer, &Response::Status(Box::new(daemon.status()))),
            Request::Metrics => send(
                &mut writer,
                &Response::Metrics(Box::new(daemon.metrics_report())),
            ),
            Request::Watch => handle_watch(daemon, &mut writer),
            Request::Submit { specs } => handle_submit(daemon, &mut writer, specs),
            Request::Fetch { keys } => handle_fetch(daemon, &mut writer, &keys),
            Request::Evict { keys } => handle_evict(daemon, &mut writer, &keys),
            Request::Gc => send(&mut writer, &Response::GcDone(daemon.gc())),
            Request::Shutdown => {
                let _ = send(&mut writer, &Response::Bye);
                daemon.request_shutdown();
                false
            }
        };
        if !keep_going || daemon.is_shutdown() {
            return;
        }
    }
}

/// Runs one submit: validate specs, register the job, stream progress,
/// send the terminal result. Returns `false` when the peer is gone.
fn handle_submit(daemon: &Daemon, writer: &mut UnixStream, specs: Vec<bench::WireSpec>) -> bool {
    let mut decoded = Vec::with_capacity(specs.len());
    for wire in &specs {
        match wire.to_spec() {
            Ok(spec) => decoded.push(spec),
            Err(message) => {
                return send(
                    writer,
                    &Response::Error {
                        message: format!("bad spec: {message}"),
                    },
                );
            }
        }
    }
    if decoded.is_empty() {
        return send(
            writer,
            &Response::Error {
                message: "submit carries no specs".to_string(),
            },
        );
    }
    let job = daemon.submit(decoded);
    if !send(
        writer,
        &Response::Accepted {
            job: job.id,
            points: job.total,
            computed: job.computed,
            cached: job.cached,
            deduped: job.deduped,
        },
    ) {
        return false;
    }
    let mut done = 0;
    loop {
        let snap = daemon.wait_progress(&job, done);
        if snap.done > done
            && !send(
                writer,
                &Response::Progress {
                    job: job.id,
                    done: snap.done,
                    total: snap.total,
                },
            )
        {
            // Client hung up mid-job: the engine keeps computing; the
            // points land in the store for the retry.
            return false;
        }
        done = snap.done;
        if snap.complete {
            break;
        }
        if daemon.is_shutdown() {
            daemon.note_responded(job.id);
            return send(
                writer,
                &Response::Error {
                    message: "daemon shutting down".to_string(),
                },
            );
        }
    }
    // The terminal line (result or error) closes the job's flight span
    // either way — `responded` means "a terminal answer is being
    // written", not "the job succeeded". Published *before* the write
    // so that once the client has the answer, the record is already on
    // the bus: a shutdown racing in right after cannot lose it.
    daemon.note_responded(job.id);
    match daemon.collect(&job) {
        Ok(sweeps) => send(
            writer,
            &Response::Result {
                job: job.id,
                sweeps,
            },
        ),
        Err(message) => send(writer, &Response::Error { message }),
    }
}

/// Turns the connection into a live flight-record stream: answers
/// `watching`, then forwards every published record until the peer
/// hangs up or the daemon shuts down. Always returns `false` — a
/// watching connection is monopolized and never goes back to
/// request/response.
fn handle_watch(daemon: &Daemon, writer: &mut UnixStream) -> bool {
    if !send(writer, &Response::Watching) {
        return false;
    }
    let rx = daemon.subscribe_flight();
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(record) => {
                if !send(writer, &Response::Flight(record)) {
                    return false; // peer gone; dropping rx unsubscribes
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if daemon.is_shutdown() {
                    return false;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return false,
        }
    }
}

/// Answers a fetch: parse each key, look it up, echo in request order.
fn handle_fetch(daemon: &Daemon, writer: &mut UnixStream, keys: &[String]) -> bool {
    let mut points = Vec::with_capacity(keys.len());
    for raw in keys {
        let Some(key) = Store::parse_key(raw) else {
            return send(
                writer,
                &Response::Error {
                    message: format!("bad key `{raw}` (want 16 hex digits)"),
                },
            );
        };
        let entry = daemon.fetch_entry(key);
        let (point, provenance) = match entry {
            Some((point, provenance)) => (Some(point), provenance),
            None => (None, None),
        };
        points.push(FetchedPoint {
            key: format_key(key),
            found: point.is_some(),
            point,
            provenance,
        });
    }
    send(writer, &Response::Points { points })
}

/// Answers an evict: parse each key, drop it, count removals.
fn handle_evict(daemon: &Daemon, writer: &mut UnixStream, keys: &[String]) -> bool {
    let mut removed = 0;
    for raw in keys {
        let Some(key) = Store::parse_key(raw) else {
            return send(
                writer,
                &Response::Error {
                    message: format!("bad key `{raw}` (want 16 hex digits)"),
                },
            );
        };
        if daemon.evict(key) {
            removed += 1;
        }
    }
    send(writer, &Response::Evicted { removed })
}
