//! Property: N concurrent clients submitting *overlapping* sweep sets
//! always read back byte-identical results for identical specs, and the
//! daemon simulates each unique point at most once — however the
//! overlap, client count and arrival order are drawn.

mod common;

use bench::{point_cache_key, SchemeId, SweepSpec};
use common::TestDaemon;
use proptest::prelude::*;
use std::collections::HashSet;
use traffic::SyntheticPattern;

/// The point pool cases draw from: distinct (scheme, seed) sweeps over
/// a shared rate grid, all tiny enough for debug-build workers.
fn pool() -> Vec<SweepSpec> {
    [
        (SchemeId::Vct, 1),
        (SchemeId::Vct, 2),
        (SchemeId::FastPass, 1),
        (SchemeId::FastPass, 3),
    ]
    .into_iter()
    .map(|(id, seed)| SweepSpec {
        id,
        pattern: SyntheticPattern::Uniform,
        rates: vec![0.02, 0.05],
        size: 4,
        fp_vcs: 2,
        warmup: 100,
        measure: 200,
        seed,
    })
    .collect()
}

/// Decodes one drawn client: a non-empty subset of the pool, picked by
/// bitmask (so overlap between clients is the common case).
fn subset(mask: u8) -> Vec<SweepSpec> {
    let pool = pool();
    let picked: Vec<SweepSpec> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| s.clone())
        .collect();
    if picked.is_empty() {
        vec![pool[0].clone()]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// 2–3 concurrent clients, each with a random overlapping subset:
    /// identical specs must yield byte-identical sweeps everywhere, and
    /// the daemon must compute each unique point exactly once.
    #[test]
    fn overlapping_concurrent_sweeps_are_identical_and_deduped(
        masks in proptest::collection::vec(1u8..16, 2..4),
        case in 0u32..1_000_000,
    ) {
        let daemon = TestDaemon::boot_fresh(&format!("prop_{case}"));
        let clients: Vec<Vec<SweepSpec>> = masks.iter().map(|&m| subset(m)).collect();

        // Fire all submits concurrently.
        let mut handles = Vec::new();
        for specs in clients.clone() {
            let sock = daemon.sock.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = bench::serve_client::Client::connect(&sock)
                    .expect("connect");
                client.submit(&specs, |_, _| {}).expect("job completes")
            }));
        }
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();

        // Identical specs → byte-identical sweeps, across every client.
        let mut by_spec: Vec<(String, String)> = Vec::new();
        for (specs, (_, sweeps)) in clients.iter().zip(&results) {
            for (spec, sweep) in specs.iter().zip(sweeps) {
                let tag = format!("{}#{}", spec.id.name(), spec.seed);
                let bytes = serde_json::to_string(sweep).unwrap();
                if let Some((_, first)) = by_spec.iter().find(|(t, _)| *t == tag) {
                    prop_assert_eq!(
                        &bytes, first,
                        "spec {} diverged across clients", tag
                    );
                } else {
                    by_spec.push((tag, bytes));
                }
            }
        }

        // Each unique point computed exactly once, the rest resolved by
        // cache or dedup.
        let mut unique = HashSet::new();
        let mut requested = 0u64;
        for specs in &clients {
            for spec in specs {
                for &rate in &spec.rates {
                    unique.insert(point_cache_key(spec, rate));
                    requested += 1;
                }
            }
        }
        let status = daemon.client().status().expect("status");
        prop_assert_eq!(status.points_computed, unique.len() as u64);
        prop_assert_eq!(status.points_requested, requested);
        prop_assert_eq!(status.points_failed, 0);
        prop_assert_eq!(
            status.store_hits + status.memory_hits + status.dedup_waits,
            requested - unique.len() as u64
        );

        // Fetching every unique key over the wire succeeds — what was
        // computed is what is stored.
        let keys: Vec<String> = unique.iter().map(|&k| bench::format_key(k)).collect();
        let fetched = daemon.client().fetch(keys).expect("fetch");
        prop_assert!(fetched.iter().all(|p| p.found));
    }
}
