//! End-to-end observability: the flight recorder tells every job's
//! complete story, `metrics`/`watch` answer over the wire, and none of
//! it perturbs results — sweeps served while a watcher streams are
//! still bitwise identical to the batch executor's.

mod common;

use bench::proto::flight_event as ev;
use bench::{run_sweep_parallel, SchemeId, SweepOptions, SweepSpec};
use common::TestDaemon;
use noc_serve::flight::{check_daemon_trace, chrome_trace, load_flight, validate_chains};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use traffic::SyntheticPattern;

fn specs() -> Vec<SweepSpec> {
    [
        (SchemeId::FastPass, SyntheticPattern::Uniform),
        (SchemeId::Vct, SyntheticPattern::Transpose),
    ]
    .into_iter()
    .map(|(id, pattern)| SweepSpec {
        id,
        pattern,
        rates: vec![0.02, 0.05, 0.08],
        size: 4,
        fp_vcs: 2,
        warmup: 500,
        measure: 1_500,
        seed: 23,
    })
    .collect()
}

/// A live watcher must see the job lifecycle stream, and its presence
/// must not perturb results: two concurrent submits under an active
/// `watch` still answer bitwise-batch-identical sweeps.
#[test]
fn watch_streams_lifecycle_without_perturbing_results() {
    let specs = specs();
    let batch_json =
        serde_json::to_string_pretty(&run_sweep_parallel(&specs, &SweepOptions::quiet(2))).unwrap();

    let daemon = TestDaemon::boot_fresh_observed("watch");
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let watcher_client = daemon.client();
    let watcher = std::thread::spawn(move || {
        watcher_client
            .watch(|record| {
                sink.lock().expect("seen lock").push(record);
                true
            })
            .expect("watch stream ends cleanly at daemon shutdown");
    });
    // Barrier: only submit once the subscription is live, so the
    // watcher is guaranteed the full story of both jobs.
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.client().metrics().expect("metrics").flight.watchers == 0 {
        assert!(Instant::now() < deadline, "watcher never subscribed");
        std::thread::sleep(Duration::from_millis(10));
    }

    let workers: Vec<_> = (0..2)
        .map(|_| {
            let mut client = daemon.client();
            let specs = specs.clone();
            std::thread::spawn(move || {
                let (receipt, served) = client.submit(&specs, |_, _| {}).expect("job completes");
                (receipt, serde_json::to_string_pretty(&served).unwrap())
            })
        })
        .collect();
    for worker in workers {
        let (receipt, served_json) = worker.join().expect("client thread");
        assert_eq!(receipt.points, 6);
        assert_eq!(
            served_json, batch_json,
            "sweeps under an active watcher must stay bitwise batch-identical"
        );
    }

    // The wire metrics report reflects the work that just happened.
    let report = daemon.client().metrics().expect("metrics");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(u64::MAX)
    };
    assert_eq!(counter("jobs_submitted"), 2);
    assert_eq!(counter("jobs_completed"), 2);
    assert_eq!(counter("points_requested"), 12);
    assert_eq!(
        counter("points_computed") + counter("points_cached") + counter("points_deduped"),
        12,
        "{report:?}"
    );
    assert_eq!(counter("points_computed"), 6, "each unique point once");
    let batches = report
        .histograms
        .iter()
        .find(|h| h.name == "batch_wall_ms")
        .expect("batch histogram");
    assert!(
        batches.count >= 1 && batches.p99 >= batches.p50,
        "{batches:?}"
    );
    assert_eq!(report.flight.watchers, 1);
    assert_eq!(report.flight.dropped, 0, "nothing may be dropped here");
    assert!(
        report.workers.iter().map(|w| w.points).sum::<u64>() >= 6,
        "{report:?}"
    );

    let flight_path = daemon.flight_path();
    let mut daemon = daemon;
    daemon.stop();
    watcher.join().expect("watcher thread");

    // The watcher saw the lifecycle vocabulary, not just noise.
    let seen = seen.lock().expect("seen lock");
    for event in [ev::SUBMITTED, ev::RESOLVED, ev::BATCH_DONE, ev::RESPONDED] {
        assert!(
            seen.iter().any(|r| r.event == event),
            "watcher never saw {event:?} among {} records",
            seen.len()
        );
    }
    assert_eq!(
        seen.iter().filter(|r| r.event == ev::SUBMITTED).count(),
        2,
        "one submitted record per job"
    );

    // After shutdown the JSONL log is complete on disk: chains prove
    // out and the Perfetto export passes its structural checker.
    let records = load_flight(&flight_path).expect("flight log loads");
    assert_eq!(validate_chains(&records), Vec::<String>::new());
    let summary = check_daemon_trace(&chrome_trace(&records)).expect("valid chrome trace");
    assert_eq!(summary.jobs, 2);
    assert!(summary.batch_spans >= 1 && summary.counter_samples >= 1);
}

/// The flight log distinguishes every resolution path — enqueued on a
/// cold submit, memory on the warm resubmit — and the statsd drain
/// writes buffered lines to the configured file.
#[test]
fn flight_log_and_statsd_drain_cover_resolution_paths() {
    let specs = specs();
    let daemon = TestDaemon::boot_fresh_observed("paths");
    daemon
        .client()
        .submit(&specs, |_, _| {})
        .expect("cold job completes");
    daemon
        .client()
        .submit(&specs, |_, _| {})
        .expect("warm job completes");
    let (flight_path, statsd_path) = (daemon.flight_path(), daemon.statsd_path());
    let mut daemon = daemon;
    daemon.stop();

    let records = load_flight(&flight_path).expect("flight log loads");
    assert_eq!(validate_chains(&records), Vec::<String>::new());
    let kind_count = |kind: &str| {
        records
            .iter()
            .filter(|r| r.event == ev::RESOLVED && r.kind.as_deref() == Some(kind))
            .count()
    };
    assert_eq!(kind_count(ev::KIND_ENQUEUED), 6, "cold submit enqueues all");
    assert_eq!(kind_count(ev::KIND_MEMORY), 6, "warm resubmit hits memory");
    assert!(
        records.iter().any(|r| r.event == ev::QUEUE),
        "queue depth was sampled"
    );
    assert_eq!(
        records.iter().filter(|r| r.event == ev::STORED).count(),
        6,
        "every computed point left a stored record"
    );

    let statsd = std::fs::read_to_string(&statsd_path).expect("statsd drain wrote the file");
    for needle in [
        "nocserve.jobs_submitted:",
        "nocserve.queue_depth:",
        "nocserve.batch_ms:",
    ] {
        assert!(statsd.contains(needle), "missing {needle:?} in:\n{statsd}");
    }
    // Counters drain as per-tick deltas; across all drains they must
    // sum to the exact total.
    let computed: u64 = statsd
        .lines()
        .filter_map(|l| l.strip_prefix("nocserve.points_computed:"))
        .filter_map(|rest| rest.strip_suffix("|c"))
        .map(|v| v.parse::<u64>().expect("counter value"))
        .sum();
    assert_eq!(computed, 6, "deltas sum to the total in:\n{statsd}");
}
