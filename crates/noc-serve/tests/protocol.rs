//! Wire-protocol robustness: malformed lines, half-dead clients and
//! daemon restarts must never wedge the service or corrupt results.

mod common;

use bench::proto::{decode_response, encode, Request, Response, WireSpec};
use bench::{point_cache_key, SchemeId, SweepSpec};
use common::TestDaemon;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use traffic::SyntheticPattern;

fn tiny_spec(seed: u64) -> SweepSpec {
    SweepSpec {
        id: SchemeId::Vct,
        pattern: SyntheticPattern::Uniform,
        rates: vec![0.02, 0.05],
        size: 4,
        fp_vcs: 2,
        warmup: 100,
        measure: 200,
        seed,
    }
}

/// A spec big enough that a client can plausibly disconnect before the
/// workers finish it.
fn slow_spec(seed: u64) -> SweepSpec {
    SweepSpec {
        measure: 5_000,
        warmup: 1_000,
        rates: vec![0.02, 0.05, 0.08],
        ..tiny_spec(seed)
    }
}

/// Raw socket access for tests that need to violate the protocol.
struct RawConn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl RawConn {
    fn open(daemon: &TestDaemon) -> RawConn {
        let stream = UnixStream::connect(&daemon.sock).expect("connect");
        RawConn {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write line");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        decode_response(&line).expect("daemon speaks the protocol")
    }
}

#[test]
fn malformed_lines_get_errors_and_the_connection_stays_usable() {
    let daemon = TestDaemon::boot_fresh("malformed");
    let mut conn = RawConn::open(&daemon);

    for garbage in [
        "not json at all",
        "[1,2,3]",
        "{\"cmd\":\"launch-missiles\"}",
        "{\"cmd\":\"submit\"}",
        "{\"no_cmd_field\":true}",
    ] {
        conn.send_line(garbage);
        let resp = conn.recv();
        assert!(
            matches!(resp, Response::Error { .. }),
            "`{garbage}` should draw an error, got {resp:?}"
        );
    }

    // Same connection still serves real requests.
    conn.send_line(&encode(&Request::Ping));
    assert!(matches!(conn.recv(), Response::Pong { .. }));

    // A submit with a well-formed frame but an invalid spec is rejected
    // with a readable message, and the connection survives that too.
    let mut bad = WireSpec::from_spec(&tiny_spec(1));
    bad.scheme = "NoSuchScheme".to_string();
    conn.send_line(&encode(&Request::Submit { specs: vec![bad] }));
    match conn.recv() {
        Response::Error { message } => assert!(
            message.contains("NoSuchScheme"),
            "error should name the bad scheme: {message}"
        ),
        other => panic!("bad spec should draw an error, got {other:?}"),
    }
    conn.send_line(&encode(&Request::Ping));
    assert!(matches!(conn.recv(), Response::Pong { .. }));

    let status = daemon.client().status().expect("status");
    assert_eq!(status.bad_requests, 5, "malformed lines counted");
    assert_eq!(status.points_computed, 0, "nothing was simulated");
}

#[test]
fn fetch_and_evict_reject_bad_keys_but_answer_good_ones() {
    let daemon = TestDaemon::boot_fresh("badkeys");
    let mut client = daemon.client();
    for bad in ["xyz", "ff", "00000000000000ff0"] {
        let err = client.fetch(vec![bad.to_string()]).unwrap_err();
        assert!(err.contains("bad key"), "{err}");
        let err = client.evict(vec![bad.to_string()]).unwrap_err();
        assert!(err.contains("bad key"), "{err}");
    }
    // A well-formed but unknown key is found:false, not an error.
    let points = client.fetch(vec!["00000000000000ff".to_string()]).unwrap();
    assert_eq!(points.len(), 1);
    assert!(!points[0].found);
    assert_eq!(
        client.evict(vec!["00000000000000ff".to_string()]).unwrap(),
        0
    );
}

#[test]
fn client_disconnect_mid_job_leaves_the_daemon_healthy() {
    let daemon = TestDaemon::boot_fresh("disconnect");
    let spec = slow_spec(31);

    // Submit and vanish: read the accepted line, then drop the socket
    // while workers are still simulating.
    {
        let mut conn = RawConn::open(&daemon);
        conn.send_line(&encode(&Request::Submit {
            specs: vec![WireSpec::from_spec(&spec)],
        }));
        let resp = conn.recv();
        assert!(matches!(resp, Response::Accepted { .. }), "{resp:?}");
    } // <- connection dropped here, job in flight

    // The daemon keeps computing; a well-behaved client asking for the
    // same points rides the in-flight work (or the finished store) and
    // gets complete results.
    let (receipt, sweeps) = daemon
        .client()
        .submit(std::slice::from_ref(&spec), |_, _| {})
        .expect("retry completes");
    assert_eq!(receipt.computed, 0, "retry must not recompute: {receipt:?}");
    assert_eq!(sweeps.len(), 1);
    assert_eq!(sweeps[0].points.len(), spec.rates.len());

    // Every point was simulated exactly once despite the dead client.
    let status = daemon.client().status().expect("status");
    assert_eq!(status.points_computed, spec.rates.len() as u64);
    assert_eq!(status.points_failed, 0);
}

#[test]
fn restarted_daemon_serves_warm_store_without_recompute() {
    let store = common::scratch_dir("warmstore").join("store");

    let first_run = {
        let daemon = TestDaemon::boot("warm1", store.clone());
        let (receipt, sweeps) = daemon
            .client()
            .submit(&[tiny_spec(41)], |_, _| {})
            .expect("cold job completes");
        assert_eq!(receipt.computed, 2);
        daemon.shutdown();
        serde_json::to_string_pretty(&sweeps).unwrap()
    };

    // Fresh daemon, same store: everything is a store hit.
    let daemon = TestDaemon::boot("warm2", store.clone());
    let (receipt, sweeps) = daemon
        .client()
        .submit(&[tiny_spec(41)], |_, _| {})
        .expect("warm job completes");
    assert_eq!(
        (receipt.computed, receipt.cached),
        (0, 2),
        "warm store must serve every point: {receipt:?}"
    );
    assert_eq!(serde_json::to_string_pretty(&sweeps).unwrap(), first_run);
    let status = daemon.client().status().expect("status");
    assert_eq!(status.points_computed, 0);
    assert_eq!(status.store_hits, 2);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn evict_through_the_wire_forces_recompute_of_that_point_only() {
    let daemon = TestDaemon::boot_fresh("wire_evict");
    let spec = tiny_spec(53);
    let mut client = daemon.client();
    client
        .submit(std::slice::from_ref(&spec), |_, _| {})
        .unwrap();

    let victim = bench::format_key(point_cache_key(&spec, spec.rates[0]));
    assert_eq!(client.evict(vec![victim.clone()]).unwrap(), 1);
    let points = client.fetch(vec![victim]).unwrap();
    assert!(!points[0].found, "evicted point must be gone");

    let (receipt, _) = client
        .submit(std::slice::from_ref(&spec), |_, _| {})
        .unwrap();
    assert_eq!(
        (receipt.computed, receipt.cached),
        (1, 1),
        "only the evicted point recomputes: {receipt:?}"
    );
}

#[test]
fn gc_over_the_wire_reports_planted_damage() {
    let daemon = TestDaemon::boot_fresh("wire_gc");
    let spec = tiny_spec(61);
    let mut client = daemon.client();
    client
        .submit(std::slice::from_ref(&spec), |_, _| {})
        .unwrap();

    // Plant a corrupt blob and an orphan temp file next to the two
    // valid entries, then gc through the protocol.
    std::fs::write(daemon.store_dir.join("00000000000000aa.json"), "{{{").unwrap();
    std::fs::write(daemon.store_dir.join("00000000000000bb.tmp.1"), "x").unwrap();
    let report = client.gc().unwrap();
    assert_eq!(report.kept, 2, "{report:?}");
    assert_eq!(report.dropped_corrupt, 1, "{report:?}");
    assert_eq!(report.dropped_temp, 1, "{report:?}");
}

/// Observability answers are part of the protocol even when the
/// daemon boots *without* a flight log or statsd sink: `metrics`
/// reports a healthy zero-sink bus and `watch` still streams records
/// (the bus fans out to watchers regardless of whether a JSONL sink
/// was configured).
#[test]
fn metrics_and_watch_work_without_a_flight_log() {
    let daemon = TestDaemon::boot_fresh("bare_observe");
    let report = daemon.client().metrics().expect("metrics");
    assert_eq!(report.flight.written, 0, "no sink, nothing written");
    assert_eq!(report.flight.dropped, 0);
    assert_eq!(report.flight.watchers, 0);
    assert_eq!(report.proto, bench::proto::PROTO_VERSION, "{report:?}");

    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&seen);
    let watcher_client = daemon.client();
    let watcher = std::thread::spawn(move || {
        watcher_client
            .watch(|record| {
                sink.lock().expect("seen lock").push(record.event);
                true
            })
            .expect("watch ends cleanly at shutdown");
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while daemon.client().metrics().expect("metrics").flight.watchers == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never subscribed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let spec = tiny_spec(71);
    daemon
        .client()
        .submit(std::slice::from_ref(&spec), |_, _| {})
        .expect("job completes");

    let mut daemon = daemon;
    daemon.stop();
    watcher.join().expect("watcher thread");
    let seen = seen.lock().expect("seen lock");
    for event in [
        bench::proto::flight_event::SUBMITTED,
        bench::proto::flight_event::RESPONDED,
    ] {
        assert!(
            seen.contains(&event.to_string()),
            "missing {event:?} in {seen:?}"
        );
    }
}
