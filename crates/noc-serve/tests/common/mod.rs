//! Shared harness for the daemon integration tests: boots a real
//! `serve()` loop on a scratch socket/store, hands out protocol
//! clients, and tears the daemon down (socket removed, thread joined)
//! when dropped.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of the harness.
#![allow(dead_code)]

use bench::serve_client::Client;
use noc_serve::{serve, ServeConfig};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One live daemon on scratch paths.
pub struct TestDaemon {
    /// Socket the daemon listens on.
    pub sock: PathBuf,
    /// Store directory it owns.
    pub store_dir: PathBuf,
    scratch: PathBuf,
    handle: Option<JoinHandle<()>>,
}

/// A scratch directory unique to `tag` within this test process.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nocserve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

impl TestDaemon {
    /// Boots a daemon whose socket lives under a fresh scratch dir and
    /// whose store is `store_dir` (so warm-restart tests can reuse it).
    pub fn boot(tag: &str, store_dir: PathBuf) -> TestDaemon {
        TestDaemon::boot_observed(tag, store_dir, false)
    }

    /// Like [`TestDaemon::boot`], but with the full observability
    /// surface on when `observed`: a flight-recorder log at
    /// [`TestDaemon::flight_path`], a statsd line file at
    /// [`TestDaemon::statsd_path`], and a fast (50ms) sampler tick so
    /// short tests still see gauge samples.
    pub fn boot_observed(tag: &str, store_dir: PathBuf, observed: bool) -> TestDaemon {
        let scratch = scratch_dir(tag);
        let sock = scratch.join("d.sock");
        let config = ServeConfig {
            socket: sock.clone(),
            store_dir: store_dir.clone(),
            workers: 2,
            batch: 4,
            statsd: observed.then(|| scratch.join("statsd.txt").display().to_string()),
            flight: observed.then(|| scratch.join("run.flight")),
            tick_ms: if observed { 50 } else { 500 },
        };
        let handle = std::thread::spawn(move || {
            serve(&config).expect("daemon serves");
        });
        let daemon = TestDaemon {
            sock,
            store_dir,
            scratch,
            handle: Some(handle),
        };
        // Readiness barrier: the bind happens inside the thread.
        daemon.client().ping().expect("daemon answers ping");
        daemon
    }

    /// Boots a daemon with its store inside its own scratch dir.
    pub fn boot_fresh(tag: &str) -> TestDaemon {
        let store = scratch_dir(tag).join("store");
        TestDaemon::boot(tag, store)
    }

    /// Boots a fresh-store daemon with observability on (see
    /// [`TestDaemon::boot_observed`]).
    pub fn boot_fresh_observed(tag: &str) -> TestDaemon {
        let store = scratch_dir(tag).join("store");
        TestDaemon::boot_observed(tag, store, true)
    }

    /// Where the observed daemon writes its flight-recorder JSONL.
    pub fn flight_path(&self) -> PathBuf {
        self.scratch.join("run.flight")
    }

    /// Where the observed daemon's statsd drain appends lines.
    pub fn statsd_path(&self) -> PathBuf {
        self.scratch.join("statsd.txt")
    }

    /// Connects a client, retrying while the daemon finishes binding.
    pub fn client(&self) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Client::connect(&self.sock) {
                Ok(client) => return client,
                Err(e) if Instant::now() >= deadline => {
                    panic!("daemon at {} never came up: {e}", self.sock.display())
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Stops the daemon and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the daemon but keeps the scratch files (flight log,
    /// statsd file) readable — the harness still cleans up on drop.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            if let Ok(mut client) = Client::connect(&self.sock) {
                let _ = client.shutdown();
            }
            handle.join().expect("daemon thread exits cleanly");
        }
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        self.stop();
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}
