//! The service's core guarantee: sweeps answered by the daemon are
//! **bitwise identical** to the batch executor's, and land in the store
//! under exactly the batch executor's cache keys — so batch runs and
//! daemon runs share one cache with no translation layer.

mod common;

use bench::{point_cache_key, run_sweep_parallel, SchemeId, Store, SweepOptions, SweepSpec};
use common::TestDaemon;
use traffic::SyntheticPattern;

fn specs() -> Vec<SweepSpec> {
    [
        (SchemeId::FastPass, SyntheticPattern::Uniform),
        (SchemeId::Vct, SyntheticPattern::Uniform),
        (SchemeId::FastPass, SyntheticPattern::Transpose),
    ]
    .into_iter()
    .map(|(id, pattern)| SweepSpec {
        id,
        pattern,
        rates: vec![0.02, 0.05, 0.08],
        size: 4,
        fp_vcs: 2,
        warmup: 500,
        measure: 1_500,
        seed: 5,
    })
    .collect()
}

#[test]
fn daemon_results_are_bitwise_identical_to_batch() {
    let specs = specs();

    // Batch reference with the cache off: pure simulation.
    let batch = run_sweep_parallel(&specs, &SweepOptions::quiet(2));
    let batch_json = serde_json::to_string_pretty(&batch).unwrap();

    let daemon = TestDaemon::boot_fresh("equivalence");
    let mut progress_calls = 0;
    let (receipt, served) = daemon
        .client()
        .submit(&specs, |done, total| {
            assert!(done <= total);
            progress_calls += 1;
        })
        .expect("job completes");
    assert_eq!(receipt.points, 9);
    assert_eq!(receipt.computed, 9, "cold daemon simulates everything");
    assert!(progress_calls > 0, "progress must stream");

    assert_eq!(
        serde_json::to_string_pretty(&served).unwrap(),
        batch_json,
        "daemon sweeps must be bitwise identical to the batch executor's"
    );
}

#[test]
fn daemon_stores_points_under_the_batch_executors_keys() {
    let specs = specs();
    let daemon = TestDaemon::boot_fresh("keys");
    daemon
        .client()
        .submit(&specs, |_, _| {})
        .expect("job completes");

    // Every (spec, rate) must sit in the store under point_cache_key —
    // checked both through the store API and over the wire.
    let store = Store::new(&daemon.store_dir);
    let mut keys = Vec::new();
    for spec in &specs {
        for &rate in &spec.rates {
            let key = point_cache_key(spec, rate);
            assert!(
                store.load(key).is_some(),
                "point {} missing from store",
                bench::format_key(key)
            );
            keys.push(bench::format_key(key));
        }
    }
    let fetched = daemon.client().fetch(keys).expect("fetch");
    assert!(
        fetched.iter().all(|p| p.found),
        "all keys resolve over the wire"
    );

    // And a *batch* run over the same store directory now serves
    // everything from cache: the two executors interoperate byte-level.
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(daemon.store_dir.clone()),
        progress: false,
    };
    let warm = run_sweep_parallel(&specs, &opts);
    let cold = run_sweep_parallel(&specs, &SweepOptions::quiet(2));
    assert_eq!(
        serde_json::to_string_pretty(&warm).unwrap(),
        serde_json::to_string_pretty(&cold).unwrap()
    );
}

/// The provenance stamp distinguishes the two executors: points the
/// daemon computed are stamped with the claiming worker's id (visible
/// over the wire via `fetch`), while the in-process batch executor
/// stamps `worker: None` — same store layout, honest attribution.
#[test]
fn provenance_distinguishes_daemon_workers_from_the_batch_executor() {
    let specs = specs();
    let daemon = TestDaemon::boot_fresh("provenance");
    daemon
        .client()
        .submit(&specs, |_, _| {})
        .expect("job completes");

    let keys: Vec<String> = specs
        .iter()
        .flat_map(|spec| {
            spec.rates
                .iter()
                .map(|&rate| bench::format_key(point_cache_key(spec, rate)))
                .collect::<Vec<_>>()
        })
        .collect();
    let fetched = daemon.client().fetch(keys).expect("fetch");
    for point in &fetched {
        let provenance = point
            .provenance
            .as_ref()
            .expect("daemon-computed points carry a provenance stamp");
        assert!(
            provenance.worker.is_some(),
            "daemon stamps the claiming worker: {provenance:?}"
        );
        assert!(provenance.cycles > 0, "{provenance:?}");
    }

    // The batch executor over a *fresh* directory stamps the same
    // structure with worker: None.
    let dir = std::env::temp_dir().join(format!("fp_prov_batch_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("batch store dir");
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        progress: false,
    };
    run_sweep_parallel(&specs, &opts);
    let store = Store::new(&dir);
    for spec in &specs {
        for &rate in &spec.rates {
            let (_, provenance) = store
                .load_entry(point_cache_key(spec, rate))
                .expect("batch-computed point present");
            let provenance = provenance.expect("batch executor stamps provenance too");
            assert!(
                provenance.worker.is_none(),
                "batch executor is worker: None, got {provenance:?}"
            );
        }
    }
}
