//! Fixture tests: one positive (rule fires) and one negative (rule stays
//! quiet) fixture per shipped rule, plus the escape-hatch semantics.
//!
//! Fixtures are inline sources linted under synthetic workspace paths,
//! because a rule's scope is a function of the path: the same source can
//! be a violation in `crates/noc-sim/…` and perfectly fine in
//! `crates/bench/…`.

use noc_lint::lint_source;

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(path, src).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

// ---- determinism -----------------------------------------------------------

#[test]
fn determinism_flags_hashmap_in_sim_crate() {
    let src =
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let diags = lint_source("crates/noc-sim/src/foo.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "determinism" && d.line == 1),
        "{diags:?}"
    );
}

#[test]
fn determinism_flags_wall_clock_and_os_rng() {
    let src = "pub fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
    let diags = lint_source("crates/fastpass/src/foo.rs", src);
    let n = diags.iter().filter(|d| d.rule == "determinism").count();
    assert!(n >= 2, "Instant and thread_rng must both fire: {diags:?}");
}

#[test]
fn determinism_silent_on_btreemap() {
    let src =
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

#[test]
fn determinism_out_of_scope_in_bench() {
    let src = "use std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n";
    assert!(
        !rules_fired("crates/bench/src/foo.rs", src).contains(&"determinism"),
        "bench harness may use HashMap"
    );
}

#[test]
fn determinism_ignores_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _ = HashMap::<u8, u8>::new(); }\n}\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

#[test]
fn determinism_ignores_idents_in_strings_and_comments() {
    let src = "// HashMap would be wrong here\npub fn f() -> &'static str { \"HashMap\" }\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

#[test]
fn determinism_exempts_the_service_crate_but_not_the_simulator() {
    // The daemon's uptime clock, accept-loop threads and hash-keyed
    // point registry are intentional — the same source under a sim
    // crate's path is a violation. One fixture, two paths.
    let src = "use std::collections::HashMap;\npub fn f() { let t = std::time::Instant::now(); \
               let h = std::thread::spawn(|| 1); let m: HashMap<u64, u64> = HashMap::new(); \
               drop((t, h, m)); }\n";
    assert!(
        !rules_fired("crates/noc-serve/src/core.rs", src).contains(&"determinism"),
        "noc-serve is a whitelisted service crate"
    );
    let diags = lint_source("crates/noc-sim/src/core.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "determinism"),
        "the identical source must stay banned in noc-sim: {diags:?}"
    );
}

// ---- hot-loop-alloc --------------------------------------------------------

#[test]
fn hot_loop_flags_vec_macro_in_regular_rs() {
    let src = "pub fn helper() { let v = vec![1, 2, 3]; drop(v); }\n";
    let diags = lint_source("crates/noc-sim/src/regular.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "regular.rs is hot in its entirety: {diags:?}"
    );
}

#[test]
fn hot_loop_flags_collect_inside_advance() {
    let src =
        "pub fn advance(xs: &[u32]) { let v: Vec<u32> = xs.iter().copied().collect(); drop(v); }\n";
    let diags = lint_source("crates/fastpass/src/scheme.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_flags_clone_inside_step() {
    let src = "impl S { fn step(&mut self, p: &Packet) { self.last = p.clone(); } }\n";
    let diags = lint_source("crates/baselines/src/foo.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_silent_outside_hot_fns() {
    // Allocation in a constructor is fine — only advance/step/apply_staged
    // bodies (and regular.rs wholesale) are hot.
    let src = "pub fn new() -> Vec<u32> { let mut v = Vec::new(); v.push(1); v }\n";
    assert!(rules_fired("crates/fastpass/src/foo.rs", src).is_empty());
}

#[test]
fn hot_loop_flags_direct_push_event_in_hot_fn() {
    // Events must flow through the `trace!` macro's branch gate; a raw
    // `.push_event(…)` in a hot scope pays the call even when disabled.
    let src =
        "impl S { fn step(&mut self, core: &mut Core) { core.trace.push_event(node, ev); } }\n";
    let diags = lint_source("crates/fastpass/src/foo.rs", src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "hot-loop-alloc" && d.message.contains("trace!")),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_flags_alloc_inside_trace_closure() {
    // The macro form is allowed, but its closure body sits in the hot
    // scope like any other tokens — a `format!` inside it still fires.
    let src = "pub fn helper(core: &mut Core) { trace!(core.trace, node, || Ev::Note { msg: format!(\"p{}\", i) }); }\n";
    let diags = lint_source("crates/noc-sim/src/regular.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_silent_on_trace_macro_with_copy_closure() {
    let src = "pub fn helper(core: &mut Core) { trace!(core.trace, node, || Ev::Inject { pkt, vc: 0 }); }\n";
    assert!(
        !rules_fired("crates/noc-sim/src/regular.rs", src).contains(&"hot-loop-alloc"),
        "a plain struct-literal closure allocates nothing"
    );
}

#[test]
fn hot_loop_permits_push_event_outside_hot_scopes() {
    // The tracer's own plumbing (and any cold-path caller) may call the
    // sink directly; only hot scopes are gated.
    let src = "pub fn record(t: &mut Tracer) { t.push_event(node, ev); }\n";
    assert!(rules_fired("crates/noc-trace/src/foo.rs", src).is_empty());
}

#[test]
fn hot_loop_flags_alloc_inside_record_window() {
    // The windowed sampler records inside the per-cycle loop; its
    // recording path obeys the same no-allocation contract as the
    // pipeline itself.
    let src = "impl Sampler { fn record_window(&mut self, core: &Core) { self.tmp = format!(\"w{}\", core.cycle()); } }\n";
    let diags = lint_source("crates/noc-sim/src/sampler.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_flags_collect_inside_sample_tick() {
    let src = "impl Sim { fn sample_tick(&mut self) { let v: Vec<u64> = self.core.iter().collect(); drop(v); } }\n";
    let diags = lint_source("crates/noc-sim/src/engine.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "hot-loop-alloc"),
        "{diags:?}"
    );
}

#[test]
fn hot_loop_permits_preallocated_push_in_record_window() {
    // The real sampler pushes into a pre-allocated, fixed-capacity
    // series: `.push` onto an existing Vec is not an allocation site the
    // rule recognises, so the honest implementation stays clean.
    let src = "impl Sampler { fn record_window(&mut self, s: WindowSample) { if self.windows.len() < self.cap { self.windows.push(s); } } }\n";
    assert!(
        !rules_fired("crates/noc-sim/src/sampler.rs", src).contains(&"hot-loop-alloc"),
        "bounded push into a pre-allocated series is the sanctioned pattern"
    );
}

#[test]
fn hot_loop_out_of_scope_in_noc_core() {
    let src = "pub fn advance() { let v = vec![1]; drop(v); }\n";
    assert!(
        !rules_fired("crates/noc-core/src/foo.rs", src).contains(&"hot-loop-alloc"),
        "noc-core has no per-cycle loop"
    );
}

// ---- occupancy -------------------------------------------------------------

#[test]
fn occupancy_flags_indexed_install() {
    let src =
        "pub fn relocate(r: &mut Router) { let occ = make(); r.inputs[0].install(1, occ); }\n";
    let diags = lint_source("crates/baselines/src/foo.rs", src);
    assert!(diags.iter().any(|d| d.rule == "occupancy"), "{diags:?}");
}

#[test]
fn occupancy_flags_occ_mask_and_occupant_mut() {
    let src = "pub fn peek(r: &Router) -> u64 { r.inputs[0].occ_mask() }\npub fn poke(v: &mut Vc) { v.occupant_mut(); }\n";
    let diags = lint_source("crates/fastpass/src/foo.rs", src);
    let n = diags.iter().filter(|d| d.rule == "occupancy").count();
    assert_eq!(n, 2, "{diags:?}");
}

#[test]
fn occupancy_silent_in_whitelisted_drain() {
    let src =
        "pub fn circulate(r: &mut Router) { let occ = make(); r.inputs[0].install(1, occ); }\n";
    assert!(
        !rules_fired("crates/baselines/src/drain.rs", src).contains(&"occupancy"),
        "DRAIN's ring circulation is the published mechanism"
    );
}

#[test]
fn occupancy_flags_arena_word_indexing_outside_arena() {
    // Stray arena mutation: indexing the packed word arrays directly
    // from a scheme. Reads are flagged too — cold code goes through
    // `VcArena::get` / `InputRef`.
    let src = "pub fn poke(core: &mut Core, s: usize) { core.arena.meta[s] |= 1; let r = core.arena.routed[0]; drop(r); }\n";
    let diags = lint_source("crates/fastpass/src/foo.rs", src);
    let n = diags.iter().filter(|d| d.rule == "occupancy").count();
    assert_eq!(n, 2, "meta and routed indexing must both fire: {diags:?}");
}

#[test]
fn occupancy_flags_arena_mutator_call_outside_whitelist() {
    let src = "pub fn hack(core: &mut Core) { core.arena.set_route_vc(0, 0, 0, out, 1); }\n";
    let diags = lint_source("crates/baselines/src/foo.rs", src);
    assert!(diags.iter().any(|d| d.rule == "occupancy"), "{diags:?}");
}

#[test]
fn occupancy_silent_in_arena_module_itself() {
    // The arena owns the packed state: its own accessors name occ_mask,
    // index meta/occ/routed and define the mutators without complaint.
    let src = "impl VcArena { pub(crate) fn occ_mask(&self) -> u64 { self.occ[0] }\n    pub(crate) fn set_route_vc(&mut self, s: usize) { self.meta[s] |= 1; } }\n";
    assert!(
        !rules_fired("crates/noc-sim/src/arena.rs", src).contains(&"occupancy"),
        "arena.rs is the canonical home of occupancy words"
    );
}

#[test]
fn occupancy_permits_plain_meta_field_without_indexing() {
    // `meta` as an ordinary struct field (no `.meta[…]` indexing) is not
    // arena state — e.g. a report carrying a `meta` section.
    let src = "pub fn f(r: &Report) -> u32 { r.meta.version }\n";
    assert!(
        !rules_fired("crates/fastpass/src/foo.rs", src).contains(&"occupancy"),
        "only indexed word-array access is arena mutation"
    );
}

#[test]
fn occupancy_silent_on_option_take_and_iterator_take() {
    // `.take()` with no argument is Option::take; `.take(n)` on a
    // non-indexed receiver is Iterator::take. Neither touches a VC.
    let src = "pub fn f(o: &mut Option<u32>, xs: &[u32]) -> usize { let _ = o.take(); xs.iter().take(3).count() }\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

// ---- panic-hygiene ---------------------------------------------------------

#[test]
fn panic_hygiene_flags_unsafe_everywhere() {
    let src = "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
    let diags = lint_source("crates/bench/src/foo.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "panic-hygiene"),
        "unsafe is banned even outside the simulator crates: {diags:?}"
    );
}

#[test]
fn panic_hygiene_flags_bare_unwrap_in_sim_crate() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let diags = lint_source("crates/noc-core/src/foo.rs", src);
    assert!(diags.iter().any(|d| d.rule == "panic-hygiene"), "{diags:?}");
}

#[test]
fn panic_hygiene_accepts_expect_with_message() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.expect(\"caller checked is_some\") }\n";
    assert!(rules_fired("crates/noc-core/src/foo.rs", src).is_empty());
}

#[test]
fn panic_hygiene_permits_unwrap_in_bench_and_tests() {
    let bench = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(rules_fired("crates/bench/src/foo.rs", bench).is_empty());
    let test_fn = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(rules_fired("crates/noc-core/src/foo.rs", test_fn).is_empty());
}

#[test]
fn panic_hygiene_holds_the_daemon_crate_to_no_bare_unwrap() {
    // The determinism exemption for noc-serve does NOT relax panic
    // hygiene: a worker thread dying on a bare unwrap takes queued jobs
    // with it, so the daemon uses expect/`?` like the simulator does.
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let diags = lint_source("crates/noc-serve/src/server.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "panic-hygiene"),
        "bare unwrap must fire in noc-serve: {diags:?}"
    );
}

#[test]
fn observability_modules_inherit_the_service_crate_scoping() {
    // Crate-level scoping must cover modules added after the rules were
    // written: the flight recorder's writer thread and the metrics
    // registry's wall-clock sampling are fine under noc-serve, but the
    // panic bar still applies to both files — a flight-writer thread
    // dying on a bare unwrap would silently stop the lifecycle log.
    let clocky = "pub fn tick() { let t = std::time::Instant::now(); \
                  let h = std::thread::spawn(|| 1); drop((t, h)); }\n";
    for file in [
        "crates/noc-serve/src/flight.rs",
        "crates/noc-serve/src/metrics.rs",
    ] {
        assert!(
            !rules_fired(file, clocky).contains(&"determinism"),
            "{file} is inside the whitelisted service crate"
        );
        let unwrap = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let diags = lint_source(file, unwrap);
        assert!(
            diags.iter().any(|d| d.rule == "panic-hygiene"),
            "bare unwrap must fire in {file}: {diags:?}"
        );
    }
}

// ---- routing-locality ------------------------------------------------------

#[test]
fn routing_locality_flags_policy_impl_outside_whitelist() {
    let src = "impl RoutingPolicy for SneakyRoute { fn desired_ports(&self, c: &NetworkCore, r: &RouteReq) -> Vec<Port> { todo() } }\n";
    let diags = lint_source("crates/baselines/src/foo.rs", src);
    let n = diags
        .iter()
        .filter(|d| d.rule == "routing-locality")
        .count();
    assert_eq!(
        n, 2,
        "both the impl and the desired_ports definition must fire: {diags:?}"
    );
}

#[test]
fn routing_locality_flags_productive_dirs_use() {
    let src = "pub fn pick(core: &Core, at: NodeId, dst: NodeId) -> Direction { core.productive_dirs(at, dst).iter().next().expect(\"minimal route exists\") }\n";
    let diags = lint_source("crates/fastpass/src/foo.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "routing-locality"),
        "{diags:?}"
    );
}

#[test]
fn routing_locality_flags_admissible_definition() {
    let src = "impl S { pub fn admissible(core: &NetworkCore, at: NodeId, dst: NodeId) -> Vec<Direction> { todo() } }\n";
    let diags = lint_source("crates/noc-sim/src/foo.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "routing-locality"),
        "{diags:?}"
    );
}

#[test]
fn routing_locality_permits_consuming_a_policy() {
    // Executing an existing policy is not making a routing decision:
    // trait objects, imports and `.desired_ports(…)` calls stay clean.
    let src = "use noc_sim::routing::RoutingPolicy;\npub fn drive(p: &dyn RoutingPolicy, core: &NetworkCore, req: &RouteReq) -> Vec<Port> { p.desired_ports(core, req) }\n";
    assert!(
        !rules_fired("crates/baselines/src/foo.rs", src).contains(&"routing-locality"),
        "consumption must stay clean"
    );
}

#[test]
fn routing_locality_silent_in_whitelisted_modules() {
    let src = "impl RoutingPolicy for TokenWestFirst { fn desired_ports(&self, c: &NetworkCore, r: &RouteReq) -> Vec<Port> { todo() } }\n";
    assert!(
        !rules_fired("crates/baselines/src/tfc.rs", src).contains(&"routing-locality"),
        "tfc.rs is a whitelisted routing module"
    );
    let geom =
        "pub fn productive_dirs(self, from: NodeId, to: NodeId) -> ProductiveDirs { todo() }\n";
    assert!(
        !rules_fired("crates/noc-core/src/topology.rs", geom).contains(&"routing-locality"),
        "topology.rs defines the primitive"
    );
}

#[test]
fn routing_locality_out_of_scope_in_analysis_crates() {
    // noc-prove/noc-check reconstruct and explore routes; they are
    // analysis consumers, not the network, and sit outside the rule.
    let src = "pub fn model(m: Mesh, a: NodeId, b: NodeId) { let _ = m.productive_dirs(a, b); }\n";
    assert!(
        !rules_fired("crates/noc-prove/src/model.rs", src).contains(&"routing-locality"),
        "{src:?}"
    );
}

#[test]
fn routing_locality_escape_hatch_works() {
    let src = "// noc-lint: allow(routing-locality)\npub fn pick(core: &Core) { let _ = core.productive_dirs(a, b); }\n";
    assert!(!rules_fired("crates/baselines/src/foo.rs", src).contains(&"routing-locality"));
}

// ---- escape hatch ----------------------------------------------------------

#[test]
fn allow_suppresses_exactly_one_rule_on_one_line() {
    // Two violations; the directive covers its own line (and the one
    // directly below — line 2 here is blank), so only line 3 fires.
    let src = "use std::collections::HashMap; // noc-lint: allow(determinism)\n\nuse std::collections::HashSet;\n";
    let diags = lint_source("crates/noc-sim/src/foo.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert_eq!(diags[0].rule, "determinism");
}

#[test]
fn allow_covers_the_line_below() {
    let src = "// noc-lint: allow(determinism)\nuse std::collections::HashMap;\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

#[test]
fn allow_does_not_suppress_other_rules() {
    // The directive names determinism, but the line also holds a bare
    // unwrap — which must still fire.
    let src =
        "pub fn f(o: Option<std::time::Instant>) { o.unwrap(); } // noc-lint: allow(determinism)\n";
    let diags = lint_source("crates/noc-sim/src/foo.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "panic-hygiene");
}

#[test]
fn allow_all_suppresses_everything_on_its_line() {
    let src = "pub fn f(o: Option<std::time::Instant>) { o.unwrap(); } // noc-lint: allow(all)\n";
    assert!(rules_fired("crates/noc-sim/src/foo.rs", src).is_empty());
}

// ---- scoping sanity --------------------------------------------------------

#[test]
fn test_files_are_never_linted() {
    let src = "use std::collections::HashMap;\npub fn f() { Some(1).unwrap(); unsafe {} }\n";
    assert!(rules_fired("crates/noc-sim/tests/foo.rs", src).is_empty());
    assert!(rules_fired("crates/noc-lint/fixtures/foo.rs", src).is_empty());
}

#[test]
fn diagnostics_are_span_accurate() {
    let src =
        "pub fn f() {\n    let m = std::collections::HashMap::<u8, u8>::new();\n    drop(m);\n}\n";
    let diags = lint_source("crates/noc-sim/src/foo.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 2);
    let col = src.lines().nth(1).unwrap().find("HashMap").unwrap() as u32 + 1;
    assert_eq!(diags[0].col, col);
}
