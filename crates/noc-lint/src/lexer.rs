//! A minimal hand-rolled Rust lexer.
//!
//! The linter does not need a full parse — every rule it enforces is
//! expressible over the token stream plus a little structural recovery
//! (attribute spans, brace-matched bodies). Lexing instead of regexing
//! is what makes the rules trustworthy: identifiers inside string
//! literals, comments and doc comments can never trigger a diagnostic,
//! and `// noc-lint: allow(...)` directives are recognised exactly where
//! a human reads them.
//!
//! The lexer understands the token shapes that matter for not getting
//! lost: line and (nested) block comments, string literals with escapes,
//! raw strings with arbitrary `#` guards, byte strings, char literals
//! versus lifetimes, and numeric literals. Everything else is an
//! identifier or a single-character punctuation token.

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `[`, …).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's text (for [`TokenKind::Ident`], the identifier).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
}

impl Token {
    /// Whether the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// An inline suppression directive: `// noc-lint: allow(rule-a, rule-b)`.
///
/// A directive suppresses the named rules on its own line and on the
/// immediately following line, so it works both as a trailing comment and
/// as a standalone comment above the offending statement.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Rule ids named in the directive.
    pub rules: Vec<String>,
}

/// The output of lexing one file: tokens plus the side channels the
/// rule engine needs (suppression directives).
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// All `noc-lint: allow(...)` directives found in comments.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src` into tokens and suppression directives.
///
/// The lexer is total: malformed input (an unterminated string, a stray
/// byte) never panics — it degrades by consuming one character and
/// moving on, which is the right behaviour for a linter that must not
/// fall over on the code it is criticising.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize;

    macro_rules! col {
        ($at:expr) => {
            ($at - line_start + 1) as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment (incl. doc comments). Scan to end of line,
                // mining it for an allow directive.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                if let Some(rules) = parse_allow(&src[start..i]) {
                    out.allows.push(AllowDirective { line, rules });
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                        line_start = i;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let start = i;
                let (end, newlines, last_line_start) = scan_raw_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col: col!(start),
                });
                line += newlines;
                if newlines > 0 {
                    line_start = last_line_start;
                }
                i = end;
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                let start = i;
                let (end, newlines, last_line_start) = scan_string(bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col: col!(start),
                });
                line += newlines;
                if newlines > 0 {
                    line_start = last_line_start;
                }
                i = end;
            }
            b'"' => {
                let start = i;
                let (end, newlines, last_line_start) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col: col!(start),
                });
                line += newlines;
                if newlines > 0 {
                    line_start = last_line_start;
                }
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. `'a` followed by anything but
                // a closing quote is a lifetime; `'a'`, `'\n'`, `'\u{..}'`
                // are char literals.
                let start = i;
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::new(),
                        line,
                        col: col!(start),
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\\' {
                            j += 1; // skip escaped char
                        }
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                        col: col!(start),
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (is_ident_continue(bytes[i]) || bytes[i] == b'.') {
                    // Stop a number at `..` (range) or `.method()`.
                    if bytes[i] == b'.' && (i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col: col!(start),
                });
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                    col: col!(start),
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    text: String::new(),
                    line,
                    col: col!(i),
                });
                i += 1;
            }
        }
    }
    out
}

/// Parses `// noc-lint: allow(a, b)` from a line-comment's text.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("noc-lint:")?;
    let rest = comment[idx + "noc-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Whether position `i` starts a raw (byte) string: `r"`, `r#`, `br"`, `br#`.
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    j < bytes.len() && (bytes[j] == b'"' || bytes[j] == b'#')
}

/// Whether `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(first) {
        return false; // '\n' and friends: char literal
    }
    // 'a' is a char literal, 'ab / 'a> / 'a, are lifetimes; 'static too.
    let mut j = i + 2;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

/// Scans a normal (possibly byte-) string starting at the `"` in `bytes[i]`.
/// Returns `(end_index, newlines_crossed, start_of_last_line)`.
fn scan_string(bytes: &[u8], i: usize) -> (usize, u32, usize) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    let mut last_line_start = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, newlines, last_line_start),
            b'\n' => {
                newlines += 1;
                j += 1;
                last_line_start = j;
            }
            _ => j += 1,
        }
    }
    (j, newlines, last_line_start)
}

/// Scans a raw string starting at `r`/`b` in `bytes[i]`.
fn scan_raw_string(bytes: &[u8], i: usize) -> (usize, u32, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // past 'r'
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return (j, 0, 0); // not actually a raw string; degrade gracefully
    }
    j += 1;
    let mut newlines = 0u32;
    let mut last_line_start = 0usize;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
            last_line_start = j;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < bytes.len() && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines, last_line_start);
            }
        }
        j += 1;
    }
    (j, newlines, last_line_start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw "string""#;
            let b = b"HashMap bytes";
            let real = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        // 'x' and '\n' are literals, not lifetimes followed by stray quotes.
        assert!(!lexed.tokens.iter().any(|t| t.is_punct('\'')));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet after = 3;";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn allow_directives_parse() {
        let src = "let x = 1; // noc-lint: allow(determinism, hot-loop-alloc)\n// noc-lint: allow(occupancy)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].rules, vec!["determinism", "hot-loop-alloc"]);
        assert_eq!(lexed.allows[1].line, 2);
        assert_eq!(lexed.allows[1].rules, vec!["occupancy"]);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let src = "let x = 1.max(2); let y = 1.5; let r = 0..4;";
        let ids = idents(src);
        assert!(ids.contains(&"max".to_string()));
    }
}
