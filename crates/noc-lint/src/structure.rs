//! Structural recovery on top of the token stream: which tokens are
//! test-only code, and where the bodies of named functions lie.
//!
//! The linter's contracts apply to *simulator* code; `#[cfg(test)]`
//! modules, `#[test]` functions and integration-test files are free to
//! use `HashMap`, `unwrap()` and allocation. Both recoveries are plain
//! brace matching over the lexed tokens — no parsing required.

use crate::lexer::{Token, TokenKind};

/// Marks every token that belongs to a test item.
///
/// A test item is any item (fn, mod, impl, use, …) carrying an attribute
/// that mentions the identifier `test` — `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`. The item's extent is recovered by brace
/// matching: attributes are skipped, then the item runs to its matching
/// close brace (or to a top-level `;` for bodyless items).
pub fn test_token_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if mask[i]
            || !tokens[i].is_punct('#')
            || !matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))
        {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = match_bracket(tokens, i + 1) else {
            break;
        };
        let is_test_attr = tokens[i + 2..attr_end].iter().any(|t| t.is_ident("test"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes (`#[test] #[should_panic]`).
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && matches!(tokens.get(j + 1), Some(t) if t.is_punct('['))
        {
            match match_bracket(tokens, j + 1) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Find the item's extent: first `{` brace-matched, or a `;`
        // before any `{` (e.g. `#[cfg(test)] use …;`).
        let mut end = j;
        let mut found = false;
        while end < tokens.len() {
            if tokens[end].is_punct(';') {
                found = true;
                break;
            }
            if tokens[end].is_punct('{') {
                end = match_brace(tokens, end).unwrap_or(tokens.len() - 1);
                found = true;
                break;
            }
            end += 1;
        }
        if !found {
            end = tokens.len() - 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Returns `(start, end)` token ranges (inclusive) of the bodies of all
/// functions whose name is in `names`, excluding tokens already masked
/// (test code).
pub fn fn_body_ranges(tokens: &[Token], mask: &[bool], names: &[&str]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !mask[i]
            && tokens[i].is_ident("fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && names.contains(&tokens[i + 1].text.as_str())
        {
            // Scan to the body's opening brace; a `;` first means a
            // trait-method declaration with no body.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = match_brace(tokens, j).unwrap_or(tokens.len() - 1);
                ranges.push((j, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn inner() { bad(); } }\nfn after() {}";
        let lexed = lex(src);
        let mask = test_token_mask(&lexed.tokens);
        for (t, m) in lexed.tokens.iter().zip(&mask) {
            match t.text.as_str() {
                "live" | "after" => assert!(!m, "{} wrongly masked", t.text),
                "inner" | "bad" => assert!(m, "{} should be masked", t.text),
                _ => {}
            }
        }
    }

    #[test]
    fn stacked_test_attributes_mask_whole_fn() {
        let src = "#[test]\n#[should_panic(expected = \"x\")]\nfn t() { boom(); }\nfn live() {}";
        let lexed = lex(src);
        let mask = test_token_mask(&lexed.tokens);
        let boom = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("boom"))
            .expect("boom");
        let live = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live");
        assert!(mask[boom]);
        assert!(!mask[live]);
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { body(); }";
        let lexed = lex(src);
        let mask = test_token_mask(&lexed.tokens);
        assert!(mask.iter().all(|m| !m));
    }

    #[test]
    fn fn_bodies_found_by_name() {
        let src = "fn step(&mut self) { alloc(); }\nfn other() { fine(); }";
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let ranges = fn_body_ranges(&lexed.tokens, &mask, &["step"]);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        let inside: Vec<_> = lexed.tokens[s..=e]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert!(inside.contains(&"alloc".to_string()));
        assert!(!inside.contains(&"fine".to_string()));
    }
}
