//! The `noc-lint` binary: lints the workspace and reports violations.
//!
//! ```text
//! cargo run -p noc-lint             # advisory: print findings, exit 0
//! cargo run -p noc-lint -- --deny   # CI gate: exit 1 on any finding
//! cargo run -p noc-lint -- --json   # machine-readable output
//! cargo run -p noc-lint -- --root <dir>   # lint another checkout
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("noc-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (id, desc) in noc_lint::RULES {
                    println!("{id}: {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "noc-lint: enforce the workspace's determinism, hot-loop and \
                     occupancy contracts\n\n\
                     USAGE: noc-lint [--deny] [--json] [--root <dir>] [--rules]\n\n\
                     --deny    exit 1 if any diagnostic is produced (CI mode)\n\
                     --json    emit diagnostics as a JSON array\n\
                     --root    workspace root to lint (default: current directory)\n\
                     --rules   list the shipped rules and exit\n\n\
                     Suppress a deliberate exception inline with\n\
                     `// noc-lint: allow(<rule>)` on or above the offending line."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("noc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "noc-lint: {} does not look like a workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let diags = match noc_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("noc-lint: I/O error while walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", noc_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("noc-lint: clean ({} rules)", noc_lint::RULES.len());
        } else {
            eprintln!("noc-lint: {} violation(s)", diags.len());
        }
    }

    if deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
