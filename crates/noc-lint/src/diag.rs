//! Diagnostics and their text/JSON rendering.

/// One lint finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule id (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (hand-emitted: the linter is
/// dependency-free by design).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&d.path),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "determinism",
            message: "bad".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/a.rs:3:7: [determinism] bad");
    }

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            path: "a.rs".into(),
            line: 1,
            col: 1,
            rule: "panic-hygiene",
            message: "use `.expect(\"why\")`".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\"why\\\""), "{j}");
        assert!(j.trim_start().starts_with('['));
    }

    #[test]
    fn empty_json_is_empty_array() {
        assert_eq!(to_json(&[]), "[]\n");
    }
}
