//! `noc-lint`: workspace static analysis for the FastPass NoC repo.
//!
//! The simulator's correctness claims rest on contracts that `rustc`
//! cannot check: simulations must be bit-reproducible given `(config,
//! seed)`, the per-cycle hot loop must not allocate, and VC occupancy may
//! change only through `InputUnit::install`/`take` so the active-set
//! bitmask never drifts from the buffers it summarizes. DESIGN.md states
//! these in prose; this crate enforces them mechanically, with
//! `file:line:col` diagnostics, on every CI run.
//!
//! Shipped rules (see [`rules::RULES`]):
//!
//! * `determinism` — no `HashMap`/`HashSet`, wall-clock time, or OS
//!   randomness in the simulator crates;
//! * `hot-loop-alloc` — no allocation/`collect()`/`clone()` in
//!   `regular.rs` or in `advance`/`step`/`apply_staged` bodies;
//! * `occupancy` — occupant slots and `occ_mask` are touched only by the
//!   input unit, the regular pipeline, and whitelisted relocation paths;
//! * `panic-hygiene` — no `unsafe` anywhere, no bare `.unwrap()` in
//!   non-test simulator code;
//! * `routing-locality` — routing decisions (`RoutingPolicy` impls,
//!   `desired_ports`/`admissible` definitions, `productive_dirs` use)
//!   only in the modules `noc-prove` introspects, so every live route
//!   is covered by the static deadlock-freedom certificates.
//!
//! A deliberate exception is annotated inline:
//!
//! ```text
//! let cold = epoch_table.clone(); // noc-lint: allow(hot-loop-alloc)
//! ```
//!
//! The directive suppresses exactly the named rule on its own line and
//! the line below it. Run the linter with `cargo run -p noc-lint --
//! --deny` (CI does) or without `--deny` for advisory output.
//!
//! The crate is dependency-free by design — a hand-rolled [`lexer`], not
//! `syn` — so it builds in well under a second and can never be broken
//! by the code it checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod structure;

pub use diag::{to_json, Diagnostic};
pub use rules::{lint_source, RULES};

use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata,
/// vendored dependency shims (third-party API surface, not simulator
/// code) and lint-test fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "shims",
    "fixtures",
    "results",
    "node_modules",
];

/// Lints every `.rs` file under `root` (a workspace checkout), returning
/// diagnostics sorted by path, line and column.
///
/// # Errors
///
/// Returns any I/O error from walking the tree or reading a file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        diags.extend(rules::lint_source(&rel_str, &src));
    }
    Ok(diags)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_shims_and_fixtures() {
        // The real workspace root is two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut files = Vec::new();
        collect_rs_files(&root, &root, &mut files).expect("walk workspace");
        assert!(
            files
                .iter()
                .any(|f| f.ends_with("crates/noc-sim/src/regular.rs")),
            "must see simulator sources"
        );
        assert!(
            !files.iter().any(|f| f.to_string_lossy().contains("shims/")),
            "must not descend into vendored shims"
        );
        assert!(
            !files
                .iter()
                .any(|f| f.to_string_lossy().contains("fixtures/")),
            "must not lint its own fixtures"
        );
    }
}
