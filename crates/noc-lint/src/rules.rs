//! The lint rules and their scoping.
//!
//! Each rule is a pure function over the lexed token stream of one file,
//! gated by a path-based scope. Adding a rule means adding an entry to
//! [`RULES`] and a `check_*` function — the engine handles test-region
//! masking, `allow(...)` suppression and diagnostics plumbing.
//!
//! See `DESIGN.md` ("Machine-checked contracts: noc-lint") for the
//! rationale behind every rule and how to allowlist a deliberate
//! exception.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::structure::{fn_body_ranges, test_token_mask};

/// Rule id: deterministic simulation contract.
pub const DETERMINISM: &str = "determinism";
/// Rule id: allocation-free hot loop contract.
pub const HOT_LOOP_ALLOC: &str = "hot-loop-alloc";
/// Rule id: occupancy mutation discipline.
pub const OCCUPANCY: &str = "occupancy";
/// Rule id: unsafe/panic hygiene.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// Rule id: routing-decision locality.
pub const ROUTING_LOCALITY: &str = "routing-locality";

/// `(id, one-line description)` of every shipped rule.
pub const RULES: &[(&str, &str)] = &[
    (
        DETERMINISM,
        "no wall-clock time, OS randomness, or unordered-map iteration in simulator crates",
    ),
    (
        HOT_LOOP_ALLOC,
        "no heap allocation, collect(), String construction or clones in per-cycle hot paths; \
         trace events only through the branch-gated trace! macro",
    ),
    (
        OCCUPANCY,
        "VC occupant state (arena meta/occ/routed words, occ_mask, install/take) changes only \
         inside the arena module and whitelisted pipeline/relocation paths",
    ),
    (
        PANIC_HYGIENE,
        "no unsafe blocks anywhere; no bare unwrap() in non-test simulator code (use expect with an invariant message)",
    ),
    (
        ROUTING_LOCALITY,
        "routing decisions (RoutingPolicy impls, desired_ports/admissible definitions, \
         productive_dirs choice) live only in the modules noc-prove introspects",
    ),
];

/// Crates whose non-test code feeds statistics or arbitration and must
/// therefore be bit-reproducible.
const SIM_CRATES: &[&str] = &[
    "noc-core",
    "noc-sim",
    "fastpass",
    "baselines",
    "traffic",
    "noc-trace",
];

/// Service crates that *intentionally* use wall-clock time, OS threads
/// and hash maps: the `nocserve` daemon measures uptime, sleeps its
/// accept loop and keys its point registry by content hash — none of
/// which feeds simulation results (points are computed through
/// `bench::runner::simulate_point`'s pure pipeline). The exemption is
/// scoped here as a crate list rather than sprayed through the code as
/// inline `allow` comments, so it stays a single reviewable decision;
/// a unit test pins it disjoint from [`SIM_CRATES`] so no crate can
/// ever be both a service and a simulator.
const SERVICE_CRATES: &[&str] = &["noc-serve"];

/// Crates held to the no-bare-`unwrap()` standard (the simulator crates
/// plus the power model, the `nocserve` daemon and the root facade; the
/// bench harness's CLI binaries are exempt).
const PANIC_CRATES: &[&str] = &[
    "noc-core",
    "noc-sim",
    "fastpass",
    "baselines",
    "traffic",
    "noc-power",
    "noc-trace",
    "noc-serve",
    "",
];

/// Files that are hot per-cycle paths in their entirety.
const HOT_FILES: &[&str] = &["crates/noc-sim/src/regular.rs"];

/// Function names whose bodies are per-cycle hot paths wherever they
/// appear in scheme/substrate crates: the regular pass (`advance`),
/// scheme steps (`step`), the staged-move applier (`apply_staged`), the
/// tracer's event sink (`push_event`, reached every traced event) and
/// the windowed sampler's recording paths (`sample_tick`,
/// `record_window`, reached every cycle / every window boundary when
/// sampling is on).
const HOT_FNS: &[&str] = &[
    "advance",
    "step",
    "apply_staged",
    "push_event",
    "sample_tick",
    "record_window",
];

/// Crates whose `advance`/`step` implementations are hot.
const HOT_CRATES: &[&str] = &["noc-sim", "fastpass", "baselines", "noc-trace"];

/// Crates subject to the occupancy-discipline rule.
const OCC_CRATES: &[&str] = &["noc-sim", "fastpass", "baselines"];

/// The only files allowed to touch occupant slots directly: the SoA
/// arena that owns the packed state (`arena.rs` — every occupancy word
/// and meta byte lives there), the legacy input unit, the regular
/// pipeline, the staged-move applier, the wait-graph rotation (SPIN's
/// synchronized relocation), the read-only structural auditor, and the
/// two baselines whose published mechanism *is* packet relocation
/// (DRAIN's ring circulation and SWAP's in-place exchange).
const OCC_WHITELIST: &[&str] = &[
    "crates/noc-sim/src/arena.rs",
    "crates/noc-sim/src/vc.rs",
    "crates/noc-sim/src/regular.rs",
    "crates/noc-sim/src/network.rs",
    "crates/noc-sim/src/waitgraph.rs",
    "crates/noc-sim/src/audit.rs",
    "crates/baselines/src/drain.rs",
    "crates/baselines/src/swap.rs",
];

/// Arena word arrays: `.meta[…]` / `.occ[…]` / `.routed[…]` field
/// indexing outside the whitelist is stray arena mutation (the lexical
/// rule cannot tell reads from writes, and neither belongs outside the
/// pipeline — cold code reads through `VcArena::get` / `InputRef`).
const ARENA_WORD_FIELDS: &[&str] = &["meta", "occ", "routed"];

/// Arena mutator entry points that only whitelisted files may name.
const ARENA_MUTATORS: &[&str] = &["pack_meta", "set_route", "set_route_vc", "input_mut"];

/// Crates whose routing behaviour the static certifier (`noc-prove`)
/// must be able to reconstruct from `noc_sim::routing::introspect`.
const ROUTING_CRATES: &[&str] = &["noc-core", "noc-sim", "fastpass", "baselines"];

/// The only modules allowed to *make* routing decisions: the mesh
/// geometry that defines productive directions, the routing policies and
/// their introspectable mirror, the core's cached-coordinate wrapper,
/// TFC's token-scored west-first, MinBD's deflection preference, and
/// FastPass's lane/TDM/irregular substrates. `noc-prove` models exactly
/// these; a route choice made anywhere else is invisible to the
/// deadlock-freedom proof.
const ROUTING_WHITELIST: &[&str] = &[
    "crates/noc-core/src/topology.rs",
    "crates/noc-sim/src/routing.rs",
    "crates/noc-sim/src/network.rs",
    "crates/baselines/src/tfc.rs",
    "crates/baselines/src/minbd.rs",
    "crates/fastpass/src/lane.rs",
    "crates/fastpass/src/irregular.rs",
    "crates/fastpass/src/schedule.rs",
];

/// Workspace-relative path classification used by rule scoping.
struct PathInfo<'a> {
    rel: &'a str,
    krate: Option<&'a str>,
}

impl<'a> PathInfo<'a> {
    fn new(rel: &'a str) -> Self {
        // "crates/<name>/…" → name; "src/…" → "" (the root facade crate).
        let krate = if let Some(rest) = rel.strip_prefix("crates/") {
            rest.split('/').next()
        } else if rel.starts_with("src/") {
            Some("")
        } else {
            None
        };
        PathInfo { rel, krate }
    }

    /// Whole-file test/bench/example/fixture code: no rule applies.
    fn is_test_file(&self) -> bool {
        let r = self.rel;
        r.starts_with("tests/")
            || r.contains("/tests/")
            || r.contains("/benches/")
            || r.starts_with("examples/")
            || r.contains("/examples/")
            || r.contains("/fixtures/")
    }

    fn in_crates(&self, set: &[&str]) -> bool {
        self.krate.is_some_and(|k| set.contains(&k))
    }
}

/// Lints one file's source, returning every diagnostic.
///
/// `rel_path` must be workspace-relative with `/` separators (it drives
/// rule scoping); `src` is the file's contents.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let info = PathInfo::new(rel_path);
    if info.is_test_file() {
        return Vec::new();
    }
    let lexed = lex(src);
    let mask = test_token_mask(&lexed.tokens);
    let mut diags = Vec::new();

    if info.in_crates(SIM_CRATES) && !info.in_crates(SERVICE_CRATES) {
        check_determinism(&lexed.tokens, &mask, rel_path, &mut diags);
    }
    check_hot_loop(&info, &lexed.tokens, &mask, &mut diags);
    if info.in_crates(OCC_CRATES) && !OCC_WHITELIST.contains(&info.rel) {
        check_occupancy(&lexed.tokens, &mask, rel_path, &mut diags);
    }
    check_panic_hygiene(&info, &lexed.tokens, &mask, &mut diags);
    if info.in_crates(ROUTING_CRATES) && !ROUTING_WHITELIST.contains(&info.rel) {
        check_routing_locality(&lexed.tokens, &mask, rel_path, &mut diags);
    }

    // Apply inline `// noc-lint: allow(rule)` suppression: a directive
    // covers its own line and the line directly below it.
    diags.retain(|d| {
        !lexed.allows.iter().any(|a| {
            (a.line == d.line || a.line + 1 == d.line)
                && a.rules.iter().any(|r| r == d.rule || r == "all")
        })
    });
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, rule: &'static str, path: &str, t: &Token, msg: String) {
    diags.push(Diagnostic {
        path: path.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message: msg,
    });
}

/// determinism: no `HashMap`/`HashSet` (iteration order is address-seeded
/// and varies run to run), no wall-clock (`std::time`, `Instant`,
/// `SystemTime`), no OS randomness (`thread_rng`, `rand::random`).
fn check_determinism(tokens: &[Token], mask: &[bool], path: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let hint = match t.text.as_str() {
            "HashMap" => "use BTreeMap (or a sorted Vec) so traversal order is deterministic",
            "HashSet" => "use BTreeSet (or a sorted Vec) so traversal order is deterministic",
            "Instant" | "SystemTime" => {
                "simulator code must be a pure function of (config, seed); wall-clock time is not"
            }
            "thread_rng" | "ThreadRng" => "use noc_core::rng::DetRng, seeded from SimConfig",
            "time" if is_path_seq(tokens, i, &["std", "time"]) => {
                "simulator code must be a pure function of (config, seed); wall-clock time is not"
            }
            _ => continue,
        };
        push(
            diags,
            DETERMINISM,
            path,
            t,
            format!("`{}` in simulator code: {hint}", t.text),
        );
    }
}

/// hot-loop-alloc: inside per-cycle hot scopes, ban heap allocation and
/// per-packet copying: `vec![…]`, `Vec::new`, `.collect(…)`, `format!`,
/// `String::new/from`, `.to_string()`, `.to_owned()`, `.to_vec()`,
/// `Box::new`, `.clone()`.
///
/// Tracing gets one extra constraint: direct `.push_event(…)` calls are
/// banned in hot scopes — events must go through the `trace!` macro,
/// whose expansion branches on `events_on()` before even building the
/// event (the macro call itself is allowed anywhere; a closure body that
/// allocates still trips the bans above, since the closure's tokens sit
/// inside the hot scope like any other code).
fn check_hot_loop(
    info: &PathInfo<'_>,
    tokens: &[Token],
    mask: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let whole_file_hot = HOT_FILES.contains(&info.rel);
    let ranges = if whole_file_hot {
        vec![(0usize, tokens.len().saturating_sub(1))]
    } else if info.in_crates(HOT_CRATES) {
        fn_body_ranges(tokens, mask, HOT_FNS)
    } else {
        return;
    };
    for (start, end) in ranges {
        for i in start..=end.min(tokens.len().saturating_sub(1)) {
            if mask[i] {
                continue;
            }
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            if t.text == "push_event" && is_method_call(tokens, i) {
                push(
                    diags,
                    HOT_LOOP_ALLOC,
                    info.rel,
                    t,
                    "direct `.push_event(…)` in a hot path: record through \
                     `trace!(tracer, node, || …)` so the event is only built when \
                     event tracing is enabled (keep the closure body alloc-free)"
                        .to_string(),
                );
                continue;
            }
            let complaint = match t.text.as_str() {
                "vec" if next_is(tokens, i, '!') => Some("`vec![…]` allocates"),
                "Vec" if is_assoc_call(tokens, i, "new") => {
                    Some("`Vec::new()` allocates on first push")
                }
                "Box" if is_assoc_call(tokens, i, "new") => Some("`Box::new` allocates"),
                "String" if is_assoc_call(tokens, i, "new") || is_assoc_call(tokens, i, "from") => {
                    Some("String construction allocates")
                }
                "format" if next_is(tokens, i, '!') => Some("`format!` allocates a String"),
                "collect" if is_method_call(tokens, i) => {
                    Some("`.collect()` allocates a container")
                }
                "to_string" if is_method_call(tokens, i) => Some("`.to_string()` allocates"),
                "to_owned" if is_method_call(tokens, i) => Some("`.to_owned()` allocates"),
                "to_vec" if is_method_call(tokens, i) => Some("`.to_vec()` allocates"),
                "clone" if is_method_call(tokens, i) => {
                    Some("`.clone()` in the hot loop (Packet clones were the old RouteReq bug)")
                }
                _ => None,
            };
            if let Some(c) = complaint {
                push(
                    diags,
                    HOT_LOOP_ALLOC,
                    info.rel,
                    t,
                    format!(
                        "{c}; hot per-cycle paths must reuse core-owned scratch buffers \
                         (move the work to setup, or annotate a provably cold path with \
                         `// noc-lint: allow(hot-loop-alloc)`)"
                    ),
                );
            }
        }
    }
}

/// occupancy: outside the whitelisted files, no `occ_mask` access, no
/// `occupant_mut()` calls, no `install(…)`/`take(…)` on an indexed
/// input unit (`inputs[p].install(…)`), no arena word-array indexing
/// (`.meta[…]` / `.occ[…]` / `.routed[…]`) and no arena mutator entry
/// points ([`ARENA_MUTATORS`]). Everything else must go through
/// `NetworkCore::take_vc_packet` / staged moves, or read through
/// `VcArena::get` / `InputRef`.
fn check_occupancy(tokens: &[Token], mask: &[bool], path: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let complaint = match t.text.as_str() {
            "occ_mask" => Some("occupancy mask read/written outside the input unit"),
            "occupant_mut" => Some("direct occupant mutation"),
            f if ARENA_WORD_FIELDS.contains(&f)
                && i >= 1
                && tokens[i - 1].is_punct('.')
                && next_is(tokens, i, '[') =>
            {
                Some("arena occupancy/meta word indexed outside the arena module")
            }
            m if ARENA_MUTATORS.contains(&m) => {
                Some("arena mutator named outside the whitelisted pipeline files")
            }
            "install" | "take"
                if is_method_call(tokens, i)
                    && i >= 2
                    && tokens[i - 1].is_punct('.')
                    && tokens[i - 2].is_punct(']')
                    // `.take()` with no argument is Option::take, not
                    // InputUnit::take(vc).
                    && !(t.text == "take" && next2_is(tokens, i, ')')) =>
            {
                Some("direct occupant install/removal on an input unit")
            }
            _ => None,
        };
        if let Some(c) = complaint {
            push(
                diags,
                OCCUPANCY,
                path,
                t,
                format!(
                    "{c}: only InputUnit::install/take (via the regular pipeline, \
                     NetworkCore::take_vc_packet, or the whitelisted DRAIN/SWAP relocation \
                     paths) may change VC occupancy, or the active-set mask drifts from \
                     the buffers it summarizes"
                ),
            );
        }
    }
}

/// panic-hygiene: `unsafe` nowhere, bare `.unwrap()` nowhere in simulator
/// crates (tests excepted). `expect("why the invariant holds")` is the
/// sanctioned alternative — a panic message is a proof obligation.
fn check_panic_hygiene(
    info: &PathInfo<'_>,
    tokens: &[Token],
    mask: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let unwrap_scoped = info.in_crates(PANIC_CRATES);
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "unsafe" {
            push(
                diags,
                PANIC_HYGIENE,
                info.rel,
                t,
                "`unsafe` is forbidden across the workspace (#![forbid(unsafe_code)]); \
                 the simulator has no business with raw memory"
                    .to_string(),
            );
        } else if unwrap_scoped
            && t.text == "unwrap"
            && is_method_call(tokens, i)
            && next2_is(tokens, i, ')')
        {
            push(
                diags,
                PANIC_HYGIENE,
                info.rel,
                t,
                "bare `.unwrap()` in simulator code: use `.expect(\"<why this cannot fail>\")` \
                 so a violated invariant names itself in the panic"
                    .to_string(),
            );
        }
    }
}

/// routing-locality: outside the whitelisted routing modules, no new
/// routing decisions — no `impl RoutingPolicy for …`, no
/// `fn desired_ports` / `fn admissible` definitions, and no
/// `productive_dirs` use (the raw direction-choice primitive).
///
/// Consuming a policy is fine everywhere (`policy.desired_ports(…)`,
/// `Box<dyn RoutingPolicy>`): the rule fires on *making* route choices,
/// not on executing ones the certifier already models. `noc-prove`
/// reconstructs every route set from `noc_sim::routing::introspect`,
/// which mirrors exactly the whitelisted modules — a decision elsewhere
/// would ship deadlock certificates that don't cover the real network.
fn check_routing_locality(
    tokens: &[Token],
    mask: &[bool],
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let complaint = match t.text.as_str() {
            "RoutingPolicy" if matches!(tokens.get(i + 1), Some(n) if n.is_ident("for")) => {
                Some("new `RoutingPolicy` implementation")
            }
            "desired_ports" | "admissible" if i >= 1 && tokens[i - 1].is_ident("fn") => {
                Some("route-set entry point defined")
            }
            "productive_dirs" => Some("raw productive-direction choice"),
            _ => None,
        };
        if let Some(c) = complaint {
            push(
                diags,
                ROUTING_LOCALITY,
                path,
                t,
                format!(
                    "{c} outside the whitelisted routing modules: noc-prove's deadlock \
                     certificates only cover routes reconstructible from \
                     noc_sim::routing::introspect; move the decision into a whitelisted \
                     module (and teach introspect about it) or annotate a deliberate \
                     exception with `// noc-lint: allow(routing-locality)`"
                ),
            );
        }
    }
}

// ---- token-pattern helpers -------------------------------------------------

/// `tokens[i]` is followed immediately by punct `c`.
fn next_is(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i + 1), Some(t) if t.is_punct(c))
}

/// `tokens[i]` then `(` then punct `c` (e.g. `unwrap` `(` `)`).
fn next2_is(tokens: &[Token], i: usize, c: char) -> bool {
    next_is(tokens, i, '(') && matches!(tokens.get(i + 2), Some(t) if t.is_punct(c))
}

/// `tokens[i]` is `Type` in `Type::name(` (associated call).
fn is_assoc_call(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(
        (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)),
        (Some(a), Some(b), Some(c)) if a.is_punct(':') && b.is_punct(':') && c.is_ident(name)
    )
}

/// `tokens[i]` is a method name in `.name(` or `.name::<…>(` position.
fn is_method_call(tokens: &[Token], i: usize) -> bool {
    if i == 0 || !tokens[i - 1].is_punct('.') {
        return false;
    }
    match tokens.get(i + 1) {
        Some(t) if t.is_punct('(') => true,
        // Turbofish: `.collect::<Vec<_>>()`.
        Some(t) if t.is_punct(':') => matches!(tokens.get(i + 2), Some(u) if u.is_punct(':')),
        _ => false,
    }
}

/// `tokens[i]` ends the exact path `segments` joined by `::`
/// (e.g. `std::time`).
fn is_path_seq(tokens: &[Token], i: usize, segments: &[&str]) -> bool {
    let mut idx = i as isize;
    for (k, seg) in segments.iter().enumerate().rev() {
        if idx < 0 || !tokens[idx as usize].is_ident(seg) {
            return false;
        }
        if k > 0 {
            if idx < 3
                || !tokens[idx as usize - 1].is_punct(':')
                || !tokens[idx as usize - 2].is_punct(':')
            {
                return false;
            }
            idx -= 3;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The service exemption must never quietly swallow a simulator
    /// crate: a crate in both lists would ship nondeterminism with the
    /// lint green. Same for the narrower hot/occupancy/routing scopes.
    #[test]
    fn service_crates_are_disjoint_from_every_sim_scope() {
        for service in SERVICE_CRATES {
            for (name, scope) in [
                ("SIM_CRATES", SIM_CRATES),
                ("HOT_CRATES", HOT_CRATES),
                ("OCC_CRATES", OCC_CRATES),
                ("ROUTING_CRATES", ROUTING_CRATES),
            ] {
                assert!(
                    !scope.contains(service),
                    "`{service}` is listed as a service crate AND in {name}"
                );
            }
        }
    }

    /// The daemon is exempt from determinism, not from panic hygiene:
    /// a service thread that dies on a bare unwrap takes jobs with it.
    #[test]
    fn service_crates_still_face_panic_hygiene() {
        for service in SERVICE_CRATES {
            assert!(
                PANIC_CRATES.contains(service),
                "`{service}` must be held to the no-bare-unwrap standard"
            );
        }
    }
}
