//! Packet-trace record and replay.
//!
//! A [`TraceRecorder`] wraps any workload and logs every generated packet;
//! the resulting [`Trace`] replays bit-identically through
//! [`TraceWorkload`], giving regression tests and benchmarks a fixed
//! input independent of workload RNG evolution. Traces serialize with
//! serde for storage alongside experiment results.

use noc_core::packet::{MessageClass, Packet};
use noc_core::topology::NodeId;
use noc_sim::network::NetworkCore;
use noc_sim::Workload;
use serde::{Deserialize, Serialize};

/// One recorded packet generation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Generation cycle.
    pub cycle: u64,
    /// Source node index.
    pub src: u16,
    /// Destination node index.
    pub dst: u16,
    /// Message class index.
    pub class: u8,
    /// Length in flits.
    pub len: u8,
}

/// An ordered packet trace (events sorted by cycle).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if events are appended out of cycle order.
    pub fn push(&mut self, ev: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(last.cycle <= ev.cycle, "trace events must be cycle-ordered");
        }
        self.events.push(ev);
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

/// Records the generation stream of an inner workload (implements
/// [`Workload`] by delegation).
#[derive(Debug)]
pub struct TraceRecorder<W> {
    inner: W,
    trace: Trace,
    seen: u64,
}

impl<W: Workload> TraceRecorder<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        TraceRecorder {
            inner,
            trace: Trace::new(),
            seen: 0,
        }
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    fn capture_new(&mut self, core: &NetworkCore) {
        // All packets ever created are visible in the store in id order.
        for p in core.store.iter() {
            if p.id().raw() >= self.seen {
                self.trace.push(TraceEvent {
                    cycle: p.gen_cycle,
                    src: p.src.index() as u16,
                    dst: p.dst.index() as u16,
                    class: p.class.index() as u8,
                    len: p.len_flits,
                });
            }
        }
        self.seen = core.store.created() as u64;
    }
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn tick(&mut self, core: &mut NetworkCore) {
        self.inner.tick(core);
        self.capture_new(core);
    }

    fn on_consumed(&mut self, core: &mut NetworkCore, pkt: &Packet) {
        self.inner.on_consumed(core, pkt);
        self.capture_new(core);
    }

    fn can_consume(&self, node: NodeId, class: MessageClass) -> bool {
        self.inner.can_consume(node, class)
    }

    fn finished(&self, core: &NetworkCore) -> bool {
        self.inner.finished(core)
    }
}

/// Replays a [`Trace`] open-loop (implements [`Workload`]).
#[derive(Debug)]
pub struct TraceWorkload {
    trace: Trace,
    next: usize,
}

impl TraceWorkload {
    /// Creates a replayer positioned at the first event.
    pub fn new(trace: Trace) -> Self {
        TraceWorkload { trace, next: 0 }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl Workload for TraceWorkload {
    fn tick(&mut self, core: &mut NetworkCore) {
        let now = core.cycle();
        while let Some(ev) = self.trace.events.get(self.next) {
            if ev.cycle > now {
                break;
            }
            core.generate(Packet::new(
                NodeId::new(ev.src as usize),
                NodeId::new(ev.dst as usize),
                MessageClass::from_index(ev.class as usize),
                ev.len,
                now,
            ));
            self.next += 1;
        }
    }

    fn finished(&self, core: &NetworkCore) -> bool {
        self.remaining() == 0 && core.resident_packets() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticPattern, SyntheticWorkload};
    use noc_core::config::SimConfig;

    fn core() -> NetworkCore {
        NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(1).build())
    }

    #[test]
    fn recorder_captures_all_generated() {
        let mut c = core();
        let wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.3, 7);
        let mut rec = TraceRecorder::new(wl);
        for _ in 0..50 {
            rec.tick(&mut c);
            c.advance_cycle();
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len() as u64, c.stats.generated);
        assert!(!trace.is_empty());
    }

    #[test]
    fn replay_regenerates_identical_stream() {
        let mut c1 = core();
        let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.3, 7);
        let mut rec = TraceRecorder::new(wl);
        for _ in 0..50 {
            rec.tick(&mut c1);
            c1.advance_cycle();
        }
        let trace = rec.into_trace();

        let mut c2 = core();
        let mut replay = TraceWorkload::new(trace.clone());
        for _ in 0..50 {
            replay.tick(&mut c2);
            c2.advance_cycle();
        }
        assert_eq!(replay.remaining(), 0);
        assert_eq!(c2.stats.generated, trace.len() as u64);
        // The packet streams match pairwise.
        for (a, b) in c1.store.iter().zip(c2.store.iter()) {
            assert_eq!(
                (a.src, a.dst, a.class, a.len_flits),
                (b.src, b.dst, b.class, b.len_flits)
            );
        }
    }

    #[test]
    fn trace_serde_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            cycle: 1,
            src: 0,
            dst: 5,
            class: 0,
            len: 5,
        });
        t.push(TraceEvent {
            cycle: 3,
            src: 2,
            dst: 7,
            class: 2,
            len: 1,
        });
        let json = serde_json_like(&t);
        assert!(json.contains("\"cycle\""));
    }

    // Minimal serde smoke-check without a hard serde_json dependency.
    fn serde_json_like(t: &Trace) -> String {
        // Serialize manually through the Serialize impl via a tiny
        // adapter: format Debug (serde derive compiles; Debug proves the
        // struct shape).
        format!("{:?}", t).replace("cycle:", "\"cycle\":")
    }

    #[test]
    #[should_panic(expected = "cycle-ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            cycle: 5,
            src: 0,
            dst: 1,
            class: 0,
            len: 1,
        });
        t.push(TraceEvent {
            cycle: 4,
            src: 0,
            dst: 1,
            class: 0,
            len: 1,
        });
    }
}
