//! Closed-loop coherence-transaction workload.
//!
//! The paper's full-system evaluation runs MOESI Hammer on gem5/Ruby. The
//! property FastPass actually depends on is the *message-class dependence
//! structure* of any invalidation protocol (§II, Lemma 3):
//!
//! * cores issue **Requests** (1 flit) to a home node, limited by a
//!   finite pool of MSHRs;
//! * the home answers with a **Response** (5-flit data) or forwards the
//!   request (**Forward**, 1 flit) to a current owner, who then responds;
//! * dirty evictions issue **Writebacks** (5 flits) answered by
//!   **WritebackAck** (1 flit);
//! * responses/acks are *sink* classes: always consumed;
//! * a home node only consumes Requests while it can still issue the
//!   corresponding Responses — if its outgoing-response backlog exceeds a
//!   bound, request consumption stalls. This is the dependence that turns
//!   an over-filled 0-VN network into a protocol-level deadlock unless
//!   the scheme (FastPass, Pitstop) breaks it.
//!
//! The workload is closed-loop: simulated "execution time" (Fig. 10) is
//! the number of cycles until every core completes its transaction quota.

use noc_core::packet::{MessageClass, Packet};
use noc_core::rng::DetRng;
use noc_core::topology::NodeId;
use noc_sim::network::NetworkCore;
use noc_sim::Workload;

/// Configuration of the protocol model.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// MSHRs per core: maximum outstanding transactions.
    pub mshrs: usize,
    /// Probability per cycle that a core with a free MSHR issues a new
    /// request (models computation think-time between misses).
    pub issue_prob: f64,
    /// Fraction of requests that are 3-hop (home forwards to an owner).
    pub forward_fraction: f64,
    /// Fraction of completed transactions that trigger a writeback.
    pub writeback_fraction: f64,
    /// Probability that a request targets a "nearby" home (within two
    /// hops) instead of a uniformly random one — spatial locality knob.
    pub locality: f64,
    /// Transactions each core must complete before the workload reports
    /// finished; `None` runs forever (latency-only experiments).
    pub quota: Option<u64>,
    /// Maximum responses a home may have outstanding toward the network
    /// before it stops consuming requests (the finite home-side buffer
    /// that creates the protocol dependence).
    pub home_backlog_limit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            mshrs: 16,
            issue_prob: 0.05,
            forward_fraction: 0.2,
            writeback_fraction: 0.3,
            locality: 0.0,
            quota: None,
            home_backlog_limit: 8,
            seed: 0xC0FE,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CoreState {
    outstanding: usize,
    completed: u64,
    /// Sink-class messages (responses/acks) this node has emitted that
    /// have not yet been consumed. Only sink obligations count: sinks are
    /// always consumable, so the gate below can always eventually open —
    /// gating on non-sink messages would deadlock the protocol itself.
    backlog: usize,
}

/// Closed-loop coherence workload (implements [`Workload`]).
#[derive(Debug)]
pub struct ProtocolWorkload {
    cfg: ProtocolConfig,
    cores: Vec<CoreState>,
    rng: DetRng,
    next_txn: u64,
    /// Original requester per open transaction (the directory state that
    /// lets a forwarded owner respond to the right core).
    requesters: std::collections::BTreeMap<u64, NodeId>,
    /// Messages generated but not yet consumed (drain tracking for
    /// closed-loop completion).
    open: usize,
}

impl ProtocolWorkload {
    /// Creates the workload for a network of `nodes` nodes.
    pub fn new(nodes: usize, cfg: ProtocolConfig) -> Self {
        ProtocolWorkload {
            rng: DetRng::new(cfg.seed),
            cores: vec![CoreState::default(); nodes],
            cfg,
            next_txn: 0,
            requesters: std::collections::BTreeMap::new(),
            open: 0,
        }
    }

    /// Completed transactions per core.
    pub fn completed(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.completed).collect()
    }

    /// Total completed transactions.
    pub fn total_completed(&self) -> u64 {
        self.cores.iter().map(|c| c.completed).sum()
    }

    fn pick_home(&mut self, core: &NetworkCore, src: NodeId) -> NodeId {
        let mesh = core.mesh();
        let n = mesh.num_nodes();
        if self.cfg.locality > 0.0 && self.rng.chance(self.cfg.locality) {
            // Nearby home: within two hops.
            for _ in 0..8 {
                let dx = self.rng.range(0, 5) as isize - 2;
                let dy = self.rng.range(0, 5) as isize - 2;
                let x = mesh.x(src) as isize + dx;
                let y = mesh.y(src) as isize + dy;
                if x >= 0 && y >= 0 && (x as usize) < mesh.width() && (y as usize) < mesh.height() {
                    let cand = mesh.node(x as usize, y as usize);
                    if cand != src {
                        return cand;
                    }
                }
            }
        }
        let mut d = self.rng.range(0, n - 1);
        if d >= src.index() {
            d += 1;
        }
        NodeId::new(d)
    }

    fn emit(&mut self, core: &mut NetworkCore, seed: noc_core::packet::PacketSeed) {
        core.generate(seed);
        self.open += 1;
    }

    fn pick_other(&mut self, core: &NetworkCore, a: NodeId, b: NodeId) -> NodeId {
        let n = core.mesh().num_nodes();
        loop {
            let c = NodeId::new(self.rng.range(0, n));
            if c != a && c != b {
                return c;
            }
        }
    }
}

impl Workload for ProtocolWorkload {
    fn tick(&mut self, core: &mut NetworkCore) {
        let cycle = core.cycle();
        let n = core.mesh().num_nodes();
        for i in 0..n {
            if let Some(q) = self.cfg.quota {
                if self.cores[i].completed >= q {
                    continue;
                }
            }
            if self.cores[i].outstanding >= self.cfg.mshrs {
                continue;
            }
            if !self.rng.chance(self.cfg.issue_prob) {
                continue;
            }
            let src = NodeId::new(i);
            let home = self.pick_home(core, src);
            let txn = self.next_txn;
            self.next_txn += 1;
            self.requesters.insert(txn, src);
            self.emit(
                core,
                Packet::new(src, home, MessageClass::Request, 1, cycle).with_txn(txn),
            );
            self.cores[i].outstanding += 1;
        }
    }

    fn on_consumed(&mut self, core: &mut NetworkCore, pkt: &Packet) {
        self.open = self.open.saturating_sub(1);
        let cycle = core.cycle();
        let here = pkt.dst;
        let txn = pkt.txn.unwrap_or(0);
        match pkt.class {
            MessageClass::Request => {
                // Home node: respond directly (a sink obligation) or
                // transfer the obligation to an owner via a forward.
                if self.rng.chance(self.cfg.forward_fraction) {
                    let owner = self.pick_other(core, here, pkt.src);
                    self.emit(
                        core,
                        Packet::new(here, owner, MessageClass::Forward, 1, cycle).with_txn(txn),
                    );
                } else {
                    self.cores[here.index()].backlog += 1;
                    self.emit(
                        core,
                        Packet::new(here, pkt.src, MessageClass::Response, 5, cycle).with_txn(txn),
                    );
                }
            }
            MessageClass::Forward => {
                // Owner supplies the data to the original requester,
                // looked up from the directory's transaction state.
                self.cores[here.index()].backlog += 1;
                let requester = self.requesters[&txn];
                // A forwarded owner may itself be the requester's node id
                // only by directory error; pick_other prevented that.
                self.emit(
                    core,
                    Packet::new(here, requester, MessageClass::Response, 5, cycle).with_txn(txn),
                );
            }
            MessageClass::Response => {
                // Requester: transaction complete, MSHR freed.
                self.requesters.remove(&txn);
                let c = &mut self.cores[here.index()];
                c.outstanding = c.outstanding.saturating_sub(1);
                c.completed += 1;
                // The sender's backlog drains when its response left the
                // network; approximate by crediting on consumption.
                let s = &mut self.cores[pkt.src.index()];
                s.backlog = s.backlog.saturating_sub(1);
                let done = self
                    .cfg
                    .quota
                    .is_some_and(|q| self.cores[here.index()].completed >= q);
                if !done && self.rng.chance(self.cfg.writeback_fraction) {
                    let home = self.pick_home(core, here);
                    self.emit(
                        core,
                        Packet::new(here, home, MessageClass::Writeback, 5, cycle).with_txn(txn),
                    );
                }
            }
            MessageClass::Writeback => {
                self.cores[here.index()].backlog += 1;
                self.emit(
                    core,
                    Packet::new(here, pkt.src, MessageClass::WritebackAck, 1, cycle).with_txn(txn),
                );
            }
            MessageClass::WritebackAck => {
                let s = &mut self.cores[pkt.src.index()];
                s.backlog = s.backlog.saturating_sub(1);
            }
            MessageClass::Unblock => {}
        }
    }

    fn can_consume(&self, node: NodeId, class: MessageClass) -> bool {
        match class {
            // Sink classes are always consumable (Lemma 3's premise).
            MessageClass::Response | MessageClass::WritebackAck | MessageClass::Unblock => true,
            // Non-sink classes are consumed only while the home can still
            // issue the reply they trigger.
            _ => self.cores[node.index()].backlog < self.cfg.home_backlog_limit,
        }
    }

    fn finished(&self, _core: &NetworkCore) -> bool {
        match self.cfg.quota {
            Some(q) => self.open == 0 && self.cores.iter().all(|c| c.completed >= q),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::SimConfig;
    use noc_sim::regular::{advance, AdvanceCtx};
    use noc_sim::routing::DorXy;
    use noc_sim::scheme::SchemeProperties;
    use noc_sim::{Scheme, Simulation};

    struct PlainXy;
    impl Scheme for PlainXy {
        fn name(&self) -> &'static str {
            "plain-xy"
        }
        fn properties(&self) -> SchemeProperties {
            SchemeProperties {
                no_detection: true,
                protocol_deadlock_freedom: false,
                network_deadlock_freedom: true,
                full_path_diversity: false,
                high_throughput: false,
                low_power: false,
                scalable: true,
                no_misrouting: true,
            }
        }
        fn required_vns(&self) -> usize {
            6
        }
        fn step(&mut self, core: &mut NetworkCore) {
            advance(core, &mut DorXy, &AdvanceCtx::default());
        }
    }

    fn vn6_cfg() -> SimConfig {
        SimConfig::builder()
            .mesh(4, 4)
            .vns(6)
            .vcs_per_vn(2)
            .seed(5)
            .build()
    }

    #[test]
    fn transactions_complete_with_vns() {
        let cfg = ProtocolConfig {
            quota: Some(5),
            issue_prob: 0.2,
            ..Default::default()
        };
        let wl = ProtocolWorkload::new(16, cfg);
        let mut sim = Simulation::new(vn6_cfg(), Box::new(PlainXy), Box::new(wl));
        let ran = sim.run(100_000);
        assert!(ran < 100_000, "workload should finish, ran {ran} cycles");
        assert!(sim.total_consumed() > 0);
    }

    #[test]
    fn mshr_limit_bounds_outstanding() {
        let cfg = ProtocolConfig {
            mshrs: 2,
            issue_prob: 1.0,
            quota: None,
            ..Default::default()
        };
        let wl = ProtocolWorkload::new(16, cfg);
        let mut sim = Simulation::new(vn6_cfg(), Box::new(PlainXy), Box::new(wl));
        sim.run(500);
        // With 2 MSHRs/core and 16 cores, at most 32 requests can ever be
        // outstanding; counting replies the live packet population is
        // bounded (each txn has at most a request + fwd/resp + wb chain).
        assert!(
            sim.in_flight() <= 16 * 2 * 4,
            "in flight {} exceeds txn bound",
            sim.in_flight()
        );
    }

    #[test]
    fn conservation_every_issue_eventually_completes() {
        let cfg = ProtocolConfig {
            quota: Some(3),
            issue_prob: 0.5,
            forward_fraction: 0.5,
            writeback_fraction: 0.5,
            seed: 9,
            ..Default::default()
        };
        let wl = ProtocolWorkload::new(16, cfg);
        let mut sim = Simulation::new(vn6_cfg(), Box::new(PlainXy), Box::new(wl));
        sim.run(200_000);
        assert_eq!(sim.in_flight(), 0, "everything drains after quota");
    }

    #[test]
    fn sink_classes_always_consumable() {
        let wl = ProtocolWorkload::new(4, ProtocolConfig::default());
        for n in 0..4 {
            assert!(wl.can_consume(NodeId::new(n), MessageClass::Response));
            assert!(wl.can_consume(NodeId::new(n), MessageClass::WritebackAck));
        }
    }

    #[test]
    fn backlog_stalls_request_consumption() {
        let mut wl = ProtocolWorkload::new(
            4,
            ProtocolConfig {
                home_backlog_limit: 1,
                ..Default::default()
            },
        );
        let node = NodeId::new(1);
        assert!(wl.can_consume(node, MessageClass::Request));
        wl.cores[1].backlog = 1;
        assert!(!wl.can_consume(node, MessageClass::Request));
        assert!(
            wl.can_consume(node, MessageClass::Response),
            "sinks unaffected"
        );
    }
}
