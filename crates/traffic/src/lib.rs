//! Workload substrate: the reproduction's stand-in for gem5 + Ruby.
//!
//! Three families of workloads drive the simulator:
//!
//! * [`synthetic`] — open-loop synthetic patterns (Uniform, Transpose,
//!   Shuffle, Bit-rotation, …) with the paper's mix of 1-flit and 5-flit
//!   packets (Table II). These drive Figs. 7, 8, 9 and 13a.
//! * [`protocol`] — a closed-loop coherence-transaction model with finite
//!   MSHRs and message-class dependences (requests are only consumed
//!   while responses can be issued), reproducing the protocol-deadlock
//!   structure of §II without a full MOESI implementation.
//! * [`apps`] — per-application parameterizations of the protocol model
//!   standing in for the PARSEC/SPLASH-2 traces of Figs. 10, 12 and 13b.
//! * [`trace`] — record/replay of packet traces for reproducible
//!   regression workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod protocol;
pub mod synthetic;
pub mod trace;

pub use apps::AppModel;
pub use protocol::ProtocolWorkload;
pub use synthetic::{SyntheticPattern, SyntheticWorkload};
