//! Synthetic application models standing in for PARSEC / SPLASH-2.
//!
//! The paper drives Figs. 10, 12 and 13b with full-system traces of
//! Radix, Canneal, FFT, FMM, Lu_cb, Streamcluster, Volrend and Barnes.
//! Running those requires gem5 + Ruby; what the *network* experiments
//! depend on is each application's traffic intensity, sharing degree
//! (3-hop transaction fraction), write-back pressure and spatial
//! locality. Each [`AppModel`] bundles those knobs, derived from the
//! published NoC-level characterizations of the benchmarks (memory-bound
//! kernels like Radix and Canneal inject heavily; Lu_cb and Volrend are
//! compute-bound and light; Streamcluster's medoid sharing produces many
//! forwarded transactions), and instantiates the closed-loop
//! [`ProtocolWorkload`].
//!
//! This substitution is recorded in `DESIGN.md`; absolute latencies will
//! differ from the paper's, but the relative load spectrum — which is
//! what separates the schemes in Figs. 10 and 12 — is preserved.

use crate::protocol::{ProtocolConfig, ProtocolWorkload};
use serde::{Deserialize, Serialize};

/// One modelled application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppModel {
    /// SPLASH-2 integer radix sort: memory-bound, heavy all-to-all.
    Radix,
    /// PARSEC simulated-annealing placement: high irregular traffic.
    Canneal,
    /// SPLASH-2 FFT: medium load, transpose-like phases.
    Fft,
    /// SPLASH-2 fast multipole: medium-low load, moderate sharing.
    Fmm,
    /// SPLASH-2 blocked LU (contiguous): light, strongly local.
    LuCb,
    /// PARSEC streamcluster: medium-high load, heavy sharing (forwards).
    Streamcluster,
    /// SPLASH-2 volume renderer: light traffic.
    Volrend,
    /// SPLASH-2 Barnes-Hut: medium load with tree locality.
    Barnes,
}

impl AppModel {
    /// The seven applications of Fig. 10 (in figure order).
    pub const FIG10: [AppModel; 7] = [
        AppModel::Radix,
        AppModel::Canneal,
        AppModel::Fft,
        AppModel::Fmm,
        AppModel::LuCb,
        AppModel::Streamcluster,
        AppModel::Volrend,
    ];

    /// The six applications of Fig. 12.
    pub const FIG12: [AppModel; 6] = [
        AppModel::Radix,
        AppModel::Canneal,
        AppModel::Fft,
        AppModel::Fmm,
        AppModel::LuCb,
        AppModel::Volrend,
    ];

    /// The five applications of Fig. 13b.
    pub const FIG13: [AppModel; 5] = [
        AppModel::Barnes,
        AppModel::Canneal,
        AppModel::Fft,
        AppModel::Fmm,
        AppModel::Volrend,
    ];

    /// Display name as in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppModel::Radix => "Radix",
            AppModel::Canneal => "Canneal",
            AppModel::Fft => "FFT",
            AppModel::Fmm => "FMM",
            AppModel::LuCb => "Lu_cb",
            AppModel::Streamcluster => "Streamcluster",
            AppModel::Volrend => "Volrend",
            AppModel::Barnes => "Barnes",
        }
    }

    /// The protocol parameters modelling this application.
    pub fn protocol_config(self) -> ProtocolConfig {
        // Intensities sized so the heaviest apps sit just below the
        // 8×8 substrate's saturation (the paper's full-system traces run
        // the network at low-to-moderate load; a model that saturates
        // every configuration would measure queueing physics, not the
        // schemes).
        let (issue_prob, forward_fraction, writeback_fraction, locality, mshrs) = match self {
            AppModel::Radix => (0.020, 0.15, 0.40, 0.10, 12),
            AppModel::Canneal => (0.017, 0.30, 0.20, 0.00, 12),
            AppModel::Fft => (0.013, 0.10, 0.30, 0.20, 12),
            AppModel::Fmm => (0.010, 0.20, 0.25, 0.30, 8),
            AppModel::LuCb => (0.006, 0.10, 0.30, 0.50, 8),
            AppModel::Streamcluster => (0.015, 0.50, 0.15, 0.10, 12),
            AppModel::Volrend => (0.005, 0.30, 0.10, 0.30, 8),
            AppModel::Barnes => (0.011, 0.25, 0.20, 0.40, 8),
        };
        ProtocolConfig {
            mshrs,
            issue_prob,
            forward_fraction,
            writeback_fraction,
            locality,
            quota: None,
            home_backlog_limit: 8,
            seed: 0xA990 + self as u64,
        }
    }

    /// Instantiates the closed-loop workload for `nodes` cores with a
    /// per-core transaction quota (execution-time experiments) or `None`
    /// (steady-state latency experiments).
    pub fn workload(self, nodes: usize, quota: Option<u64>) -> ProtocolWorkload {
        self.workload_scaled(nodes, quota, 1.0)
    }

    /// Like [`workload`](Self::workload), with the issue rate scaled by
    /// `intensity` (e.g. the Fig. 13b breakdown stresses the 1-VC
    /// configuration at twice the nominal rate).
    pub fn workload_scaled(
        self,
        nodes: usize,
        quota: Option<u64>,
        intensity: f64,
    ) -> ProtocolWorkload {
        let mut cfg = self.protocol_config();
        cfg.quota = quota;
        cfg.issue_prob = (cfg.issue_prob * intensity).min(1.0);
        ProtocolWorkload::new(nodes, cfg)
    }
}

impl std::fmt::Display for AppModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_have_distinct_profiles() {
        let mut seen = std::collections::HashSet::new();
        for app in [
            AppModel::Radix,
            AppModel::Canneal,
            AppModel::Fft,
            AppModel::Fmm,
            AppModel::LuCb,
            AppModel::Streamcluster,
            AppModel::Volrend,
            AppModel::Barnes,
        ] {
            let cfg = app.protocol_config();
            let key = (
                (cfg.issue_prob * 1e4) as u64,
                (cfg.forward_fraction * 1e4) as u64,
                (cfg.locality * 1e4) as u64,
            );
            assert!(seen.insert(key), "{app} duplicates another profile");
        }
    }

    #[test]
    fn load_spectrum_ordering() {
        // Memory-bound apps inject more than compute-bound ones.
        let radix = AppModel::Radix.protocol_config().issue_prob;
        let volrend = AppModel::Volrend.protocol_config().issue_prob;
        let lu = AppModel::LuCb.protocol_config().issue_prob;
        assert!(radix > 3.0 * volrend);
        assert!(radix > 3.0 * lu);
    }

    #[test]
    fn figure_sets_match_paper() {
        assert_eq!(AppModel::FIG10.len(), 7);
        assert_eq!(AppModel::FIG12.len(), 6);
        assert_eq!(AppModel::FIG13.len(), 5);
        assert!(AppModel::FIG10.contains(&AppModel::Streamcluster));
        assert!(!AppModel::FIG12.contains(&AppModel::Streamcluster));
        assert!(AppModel::FIG13.contains(&AppModel::Barnes));
    }

    #[test]
    fn workload_respects_quota_knob() {
        let wl = AppModel::Fft.workload(16, Some(10));
        // Quota plumbed through: the workload reports unfinished initially.
        assert_eq!(wl.total_completed(), 0);
    }
}
