//! Open-loop synthetic traffic patterns.
//!
//! Table II evaluates "Uniform, Transpose, and Shuffle — mix of 1-flit
//! and 5-flit" packets; Fig. 7 additionally shows Bit-rotation. Each node
//! generates a packet per cycle with probability `rate` (the injection
//! rate in packets/node/cycle), destined according to the pattern.
//! Packets are spread uniformly over the six message classes so that
//! VN-based baselines exercise all of their virtual networks, and are
//! 1-flit (control) or 5-flit (data) with equal probability.

use noc_core::packet::{MessageClass, Packet};
use noc_core::rng::DetRng;
use noc_core::topology::{Mesh, NodeId};
use noc_sim::network::NetworkCore;
use noc_sim::Workload;
use serde::{Deserialize, Serialize};

/// A classic synthetic destination pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Uniform random over all other nodes.
    Uniform,
    /// `(x, y) → (y, x)`. Adversarial for dimension-ordered and
    /// west-first routing. Requires a square mesh.
    Transpose,
    /// Bit-shuffle: rotate the node-id bits left by one. Requires a
    /// power-of-two node count.
    Shuffle,
    /// Bit-rotation: rotate the node-id bits right by one. Requires a
    /// power-of-two node count.
    BitRotation,
    /// Bit-complement: invert all node-id bits. Requires a power-of-two
    /// node count.
    BitComplement,
    /// Tornado: half-way around each row.
    Tornado,
    /// Nearest-neighbour: one hop east (wrapping within the row).
    Neighbor,
    /// Hotspot: one quarter of the traffic targets the centre node, the
    /// rest is uniform random (classic congestion stressor).
    Hotspot,
}

impl SyntheticPattern {
    /// All patterns, for sweep harnesses.
    pub const ALL: [SyntheticPattern; 8] = [
        SyntheticPattern::Uniform,
        SyntheticPattern::Transpose,
        SyntheticPattern::Shuffle,
        SyntheticPattern::BitRotation,
        SyntheticPattern::BitComplement,
        SyntheticPattern::Tornado,
        SyntheticPattern::Neighbor,
        SyntheticPattern::Hotspot,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticPattern::Uniform => "uniform",
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::Shuffle => "shuffle",
            SyntheticPattern::BitRotation => "bit-rotation",
            SyntheticPattern::BitComplement => "bit-complement",
            SyntheticPattern::Tornado => "tornado",
            SyntheticPattern::Neighbor => "neighbor",
            SyntheticPattern::Hotspot => "hotspot",
        }
    }

    /// The inverse of [`SyntheticPattern::name`], case-insensitively —
    /// sweep-service requests and CLI flags spell patterns by their
    /// figure names. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<SyntheticPattern> {
        SyntheticPattern::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// The destination for `src` under this pattern, or `None` when the
    /// pattern maps a node to itself (such sources stay silent, the
    /// standard convention).
    ///
    /// # Panics
    ///
    /// Panics if the mesh does not satisfy the pattern's structural
    /// requirement (square for transpose, power-of-two nodes for the bit
    /// patterns).
    pub fn dest(self, mesh: Mesh, src: NodeId, rng: &mut DetRng) -> Option<NodeId> {
        let n = mesh.num_nodes();
        let bits = n.trailing_zeros() as usize;
        let require_pow2 = || {
            assert!(
                n.is_power_of_two(),
                "{} requires a power-of-two node count",
                self.name()
            );
        };
        let dst = match self {
            SyntheticPattern::Uniform => {
                let mut d = rng.range(0, n - 1);
                if d >= src.index() {
                    d += 1;
                }
                NodeId::new(d)
            }
            SyntheticPattern::Transpose => {
                assert_eq!(
                    mesh.width(),
                    mesh.height(),
                    "transpose requires a square mesh"
                );
                mesh.node(mesh.y(src), mesh.x(src))
            }
            SyntheticPattern::Shuffle => {
                require_pow2();
                let s = src.index();
                NodeId::new(((s << 1) | (s >> (bits - 1))) & (n - 1))
            }
            SyntheticPattern::BitRotation => {
                require_pow2();
                let s = src.index();
                NodeId::new((s >> 1) | ((s & 1) << (bits - 1)))
            }
            SyntheticPattern::BitComplement => {
                require_pow2();
                NodeId::new(!src.index() & (n - 1))
            }
            SyntheticPattern::Tornado => {
                let (x, y) = (mesh.x(src), mesh.y(src));
                let w = mesh.width();
                mesh.node((x + (w.div_ceil(2)).saturating_sub(1).max(1)) % w, y)
            }
            SyntheticPattern::Neighbor => {
                let (x, y) = (mesh.x(src), mesh.y(src));
                mesh.node((x + 1) % mesh.width(), y)
            }
            SyntheticPattern::Hotspot => {
                let center = mesh.node(mesh.width() / 2, mesh.height() / 2);
                if src != center && rng.chance(0.25) {
                    center
                } else {
                    let mut d = rng.range(0, n - 1);
                    if d >= src.index() {
                        d += 1;
                    }
                    NodeId::new(d)
                }
            }
        };
        (dst != src).then_some(dst)
    }
}

/// Open-loop synthetic workload (implements [`Workload`]).
///
/// # Example
///
/// ```
/// use traffic::{SyntheticPattern, SyntheticWorkload};
/// let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.1, 42);
/// assert_eq!(wl.rate(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    pattern: SyntheticPattern,
    rate: f64,
    rng: DetRng,
    /// Probability a packet is a single-flit control packet (the rest
    /// are 5-flit data packets).
    short_fraction: f64,
    /// Restrict traffic to a single class instead of spreading over the
    /// default set (used by the 1-VC FastPass experiments of Figs. 9/13a).
    single_class: Option<MessageClass>,
    /// Classes traffic is spread over. Default: Request/Forward/Response,
    /// matching Garnet's three-vnet synthetic-traffic convention that the
    /// paper's 6-VN baselines run under.
    classes: Vec<MessageClass>,
}

impl SyntheticWorkload {
    /// Creates a workload injecting at `rate` packets/node/cycle.
    pub fn new(pattern: SyntheticPattern, rate: f64, seed: u64) -> Self {
        SyntheticWorkload {
            pattern,
            rate,
            rng: DetRng::new(seed),
            short_fraction: 0.5,
            single_class: None,
            classes: vec![
                MessageClass::Request,
                MessageClass::Forward,
                MessageClass::Response,
            ],
        }
    }

    /// Overrides the set of classes traffic is spread over.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn classes(mut self, classes: &[MessageClass]) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        self.classes = classes.to_vec();
        self
    }

    /// Sets the fraction of 1-flit packets (default 0.5).
    pub fn short_fraction(mut self, f: f64) -> Self {
        self.short_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Confines all traffic to one message class.
    pub fn single_class(mut self, class: MessageClass) -> Self {
        self.single_class = Some(class);
        self
    }

    /// The configured injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The configured pattern.
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }
}

impl Workload for SyntheticWorkload {
    fn tick(&mut self, core: &mut NetworkCore) {
        let mesh = core.mesh();
        let cycle = core.cycle();
        for src in mesh.nodes() {
            if !self.rng.chance(self.rate) {
                continue;
            }
            let Some(dst) = self.pattern.dest(mesh, src, &mut self.rng) else {
                continue;
            };
            let class = self
                .single_class
                .unwrap_or_else(|| *self.rng.pick(&self.classes));
            let len = if self.rng.chance(self.short_fraction) {
                1
            } else {
                5
            };
            core.generate(Packet::new(src, dst, class, len, cycle));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn transpose_is_an_involution() {
        let m = mesh8();
        let mut rng = DetRng::new(1);
        for src in m.nodes() {
            if let Some(d) = SyntheticPattern::Transpose.dest(m, src, &mut rng) {
                let back = SyntheticPattern::Transpose.dest(m, d, &mut rng).unwrap();
                assert_eq!(back, src);
            } else {
                // Diagonal nodes map to themselves.
                assert_eq!(m.x(src), m.y(src));
            }
        }
    }

    #[test]
    fn shuffle_and_rotation_are_inverse_permutations() {
        let m = mesh8();
        let mut rng = DetRng::new(1);
        for src in m.nodes() {
            let via = SyntheticPattern::Shuffle
                .dest(m, src, &mut rng)
                .unwrap_or(src);
            let back = SyntheticPattern::BitRotation
                .dest(m, via, &mut rng)
                .unwrap_or(via);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn bit_complement_is_an_involution_and_total() {
        let m = mesh8();
        let mut rng = DetRng::new(1);
        for src in m.nodes() {
            let d = SyntheticPattern::BitComplement
                .dest(m, src, &mut rng)
                .unwrap();
            assert_ne!(d, src, "complement never maps to self for n>1");
            let back = SyntheticPattern::BitComplement
                .dest(m, d, &mut rng)
                .unwrap();
            assert_eq!(back, src);
        }
    }

    #[test]
    fn uniform_never_self_and_covers_space() {
        let m = mesh8();
        let mut rng = DetRng::new(7);
        let src = NodeId::new(20);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = SyntheticPattern::Uniform.dest(m, src, &mut rng).unwrap();
            assert_ne!(d, src);
            seen.insert(d);
        }
        assert!(seen.len() > 55, "uniform should reach nearly all 63 peers");
    }

    #[test]
    fn neighbor_wraps_within_row() {
        let m = mesh8();
        let mut rng = DetRng::new(1);
        let right_edge = m.node(7, 3);
        let d = SyntheticPattern::Neighbor
            .dest(m, right_edge, &mut rng)
            .unwrap();
        assert_eq!(d, m.node(0, 3));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_rectangles() {
        let m = Mesh::new(4, 2);
        let mut rng = DetRng::new(1);
        let _ = SyntheticPattern::Transpose.dest(m, NodeId::new(0), &mut rng);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn shuffle_rejects_non_pow2() {
        let m = Mesh::new(3, 3);
        let mut rng = DetRng::new(1);
        let _ = SyntheticPattern::Shuffle.dest(m, NodeId::new(1), &mut rng);
    }

    #[test]
    fn workload_generates_at_configured_rate() {
        use noc_core::config::SimConfig;
        let mut core =
            NetworkCore::new(SimConfig::builder().mesh(8, 8).vns(0).vcs_per_vn(1).build());
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.1, 3);
        for _ in 0..100 {
            wl.tick(&mut core);
            core.advance_cycle();
        }
        // 64 nodes × 100 cycles × 0.1 ≈ 640 expected.
        let g = core.stats.generated as f64;
        assert!((400.0..900.0).contains(&g), "generated {g}");
    }

    #[test]
    fn single_class_confines_traffic() {
        use noc_core::config::SimConfig;
        let mut core =
            NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(1).build());
        let mut wl = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.5, 3)
            .single_class(MessageClass::Request);
        for _ in 0..20 {
            wl.tick(&mut core);
            core.advance_cycle();
        }
        for p in core.store.iter() {
            assert_eq!(p.class, MessageClass::Request);
        }
    }

    #[test]
    fn short_fraction_extremes() {
        use noc_core::config::SimConfig;
        for (frac, expect_len) in [(1.0, 1u8), (0.0, 5u8)] {
            let mut core =
                NetworkCore::new(SimConfig::builder().mesh(4, 4).vns(0).vcs_per_vn(1).build());
            let mut wl =
                SyntheticWorkload::new(SyntheticPattern::Uniform, 0.5, 3).short_fraction(frac);
            for _ in 0..10 {
                wl.tick(&mut core);
                core.advance_cycle();
            }
            for p in core.store.iter() {
                assert_eq!(p.len_flits, expect_len);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_on_center() {
        let m = mesh8();
        let mut rng = DetRng::new(13);
        let center = m.node(4, 4);
        let mut hits = 0;
        let trials = 4000;
        for _ in 0..trials {
            let src = NodeId::new(rng.range(0, 64));
            if let Some(d) = SyntheticPattern::Hotspot.dest(m, src, &mut rng) {
                assert_ne!(d, src);
                if d == center {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!(
            (0.18..0.35).contains(&frac),
            "center share {frac:.3} outside the ~25% design point"
        );
    }
}
