//! Batched-vs-serial equivalence property: interleaving N independent
//! simulations through [`noc_sim::batch::run_windows_batched`] must
//! produce, for every one of them, *bitwise identical* results to
//! running it alone through `run_windows` — the full serialized
//! [`NetStats`](noc_core::stats::NetStats) (every distribution sample)
//! and the full sampler window series, across random seeds, rates,
//! schemes and **mixed mesh sizes in the same batch**.
//!
//! This is the determinism contract the batched executor's speed rests
//! on: if it ever held only "statistically", batched sweeps could not
//! share golden fixtures with serial ones.

use bench::runner::make_sim;
use bench::SchemeId;
use noc_sim::batch::run_windows_batched;
use noc_sim::{SamplerConfig, Simulation, WindowSample};
use proptest::prelude::*;
use traffic::SyntheticPattern;

const WARMUP: u64 = 100;
const MEASURE: u64 = 400;
const FP_VCS: usize = 2;

/// One sweep point's full specification.
#[derive(Debug, Clone, Copy)]
struct Spec {
    scheme: SchemeId,
    mesh: usize,
    rate: f64,
    seed: u64,
}

fn build(spec: &Spec, sampled: bool) -> Simulation {
    let mut sim = make_sim(
        spec.scheme,
        SyntheticPattern::Uniform,
        spec.rate,
        spec.mesh,
        FP_VCS,
        spec.seed,
    );
    if sampled {
        sim.set_sampler(&SamplerConfig {
            sample_every: 64,
            max_windows: 32,
        });
    }
    sim
}

/// `(stats JSON, sampler window series)` — the complete observable
/// output of one point.
fn observe(
    mut sim: Simulation,
    run: impl FnOnce(&mut Simulation) -> String,
) -> (String, Vec<WindowSample>) {
    let stats_json = run(&mut sim);
    let windows = sim
        .finish_sampling()
        .map(|s| s.windows().to_vec())
        .unwrap_or_default();
    (stats_json, windows)
}

/// Draws a [`Spec`] with independent scheme, mesh size, rate and seed.
struct SpecStrategy;
impl Strategy for SpecStrategy {
    type Value = Spec;
    fn sample(&self, rng: &mut proptest::TestRng) -> Spec {
        Spec {
            scheme: if (0usize..2).sample(rng) == 0 {
                SchemeId::FastPass
            } else {
                SchemeId::Vct
            },
            mesh: (3usize..6).sample(rng),
            rate: (1u64..9).sample(rng) as f64 / 100.0,
            seed: (0u64..1_000).sample(rng),
        }
    }
}

fn spec_strategy() -> SpecStrategy {
    SpecStrategy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch of 2–4 points with independently drawn schemes, mesh
    /// sizes, rates and seeds: every point's NetStats and sampler
    /// series must match its serial run bit for bit.
    #[test]
    fn batched_is_bitwise_equivalent_to_serial(
        specs in proptest::collection::vec(spec_strategy(), 2..5),
        sampled_bit in 0u8..2,
    ) {
        let sampled = sampled_bit == 1;
        // Serial reference: each point alone.
        let serial: Vec<(String, Vec<WindowSample>)> = specs
            .iter()
            .map(|spec| {
                observe(build(spec, sampled), |sim| {
                    let stats = sim.run_windows(WARMUP, MEASURE);
                    serde_json::to_string(&stats).expect("NetStats serializes")
                })
            })
            .collect();

        // Batched run of the same points, same construction order.
        let mut sims: Vec<Simulation> = specs.iter().map(|s| build(s, sampled)).collect();
        let all = run_windows_batched(&mut sims, WARMUP, MEASURE);
        for ((spec, (sim, stats)), (want_json, want_windows)) in specs
            .iter()
            .zip(sims.into_iter().zip(all))
            .zip(&serial)
        {
            let json = serde_json::to_string(&stats).expect("NetStats serializes");
            prop_assert_eq!(&json, want_json, "NetStats diverged for {:?}", spec);
            let (_, windows) = observe(sim, |_| String::new());
            prop_assert_eq!(&windows, want_windows, "sampler series diverged for {:?}", spec);
        }
    }
}
