//! The parallel executor's contract: results bitwise identical to the
//! serial path regardless of worker count, and the on-disk cache is
//! actually consulted (not silently recomputed).

use bench::runner::sweep;
use bench::{run_sweep_parallel, SchemeId, SweepOptions, SweepSpec};
use std::path::PathBuf;
use traffic::SyntheticPattern;

fn small_specs() -> Vec<SweepSpec> {
    [SchemeId::FastPass, SchemeId::Spin, SchemeId::Vct]
        .iter()
        .map(|&id| SweepSpec {
            id,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02, 0.05, 0.08],
            size: 4,
            fp_vcs: 2,
            warmup: 500,
            measure: 1_500,
            seed: 42,
        })
        .collect()
}

/// A scratch cache directory unique to one test, cleaned on drop.
struct ScratchCache(PathBuf);

impl ScratchCache {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("fp-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchCache(dir)
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn parallel_sweep_is_bitwise_identical_to_serial() {
    let specs = small_specs();
    let serial: Vec<_> = specs
        .iter()
        .map(|s| {
            sweep(
                s.id, s.pattern, &s.rates, s.size, s.fp_vcs, s.warmup, s.measure, s.seed,
            )
        })
        .collect();
    let one = run_sweep_parallel(&specs, &SweepOptions::quiet(1));
    let four = run_sweep_parallel(&specs, &SweepOptions::quiet(4));
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    let one_json = serde_json::to_string_pretty(&one).unwrap();
    let four_json = serde_json::to_string_pretty(&four).unwrap();
    assert_eq!(serial_json, one_json, "1 worker must match the serial path");
    assert_eq!(one_json, four_json, "4 workers must match 1 worker");
}

#[test]
fn cache_hit_skips_simulation() {
    let scratch = ScratchCache::new("hit");
    let specs = small_specs();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(scratch.0.clone()),
        progress: false,
    };
    let first = run_sweep_parallel(&specs, &opts);

    // Rewrite every cached point with a sentinel latency (through the
    // store so the entries stay valid envelopes). If the second run
    // simulates anything, that point reverts to its true value.
    let store = bench::Store::new(&scratch.0);
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&scratch.0).unwrap() {
        let path = entry.unwrap().path();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let key = bench::Store::parse_key(&stem).expect("cache files are named by hex key");
        let mut point = store.load(key).expect("fresh cache entry loads");
        point.avg_latency = 123_456.75;
        assert!(store.store(key, &point));
        corrupted += 1;
    }
    let total_points: usize = specs.iter().map(|s| s.rates.len()).sum();
    assert_eq!(corrupted, total_points, "one cache file per point");

    let second = run_sweep_parallel(&specs, &opts);
    for (sweep_a, sweep_b) in first.iter().zip(&second) {
        for (a, b) in sweep_a.points.iter().zip(&sweep_b.points) {
            assert_eq!(
                b.avg_latency, 123_456.75,
                "{} rate={} was simulated instead of loaded from cache",
                sweep_b.scheme, b.rate
            );
            assert_eq!(a.rate, b.rate);
        }
    }
}

#[test]
fn interrupted_sweep_resumes_with_identical_results() {
    let scratch = ScratchCache::new("resume");
    let specs = small_specs();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(scratch.0.clone()),
        progress: false,
    };

    // "Interrupt": only the first spec's points make it into the cache.
    let partial = run_sweep_parallel(&specs[..1], &opts);
    assert_eq!(partial.len(), 1);
    let cached_files = std::fs::read_dir(&scratch.0).unwrap().count();
    assert_eq!(cached_files, specs[0].rates.len());

    // The resumed full run fills in the missing points; the result must
    // be indistinguishable from a cold uncached run.
    let resumed = run_sweep_parallel(&specs, &opts);
    let cold = run_sweep_parallel(&specs, &SweepOptions::quiet(2));
    assert_eq!(
        serde_json::to_string_pretty(&resumed).unwrap(),
        serde_json::to_string_pretty(&cold).unwrap()
    );
}

#[test]
fn corrupt_cache_entry_falls_back_to_simulation() {
    let scratch = ScratchCache::new("garbage");
    let specs = small_specs();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(scratch.0.clone()),
        progress: false,
    };
    let first = run_sweep_parallel(&specs, &opts);
    // Truncate every cache file to unparseable garbage: the runner must
    // recompute (and still produce identical results), not crash.
    for entry in std::fs::read_dir(&scratch.0).unwrap() {
        std::fs::write(entry.unwrap().path(), "{not json").unwrap();
    }
    let second = run_sweep_parallel(&specs, &opts);
    assert_eq!(
        serde_json::to_string_pretty(&first).unwrap(),
        serde_json::to_string_pretty(&second).unwrap()
    );
}
