//! Store corruption/staleness recovery: entries that are truncated, or
//! written under a different schema generation, must be treated as
//! cache *misses* — recomputed and overwritten, never served — and a
//! `gc` pass must delete them. This is the end-to-end version of the
//! unit tests in `bench::store`: it drives the real sweep executor over
//! a deliberately vandalized cache directory.

use bench::runner::sweep;
use bench::{
    point_cache_key, run_sweep_parallel, SchemeId, Store, SweepOptions, SweepSpec,
    CACHE_SCHEMA_VERSION,
};
use std::path::PathBuf;
use traffic::SyntheticPattern;

fn spec() -> SweepSpec {
    SweepSpec {
        id: SchemeId::Vct,
        pattern: SyntheticPattern::Uniform,
        rates: vec![0.02, 0.05, 0.08],
        size: 4,
        fp_vcs: 2,
        warmup: 500,
        measure: 1_500,
        seed: 23,
    }
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("fp-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A well-formed envelope claiming a *previous* schema generation, with
/// a poisoned payload: if it is ever served instead of recomputed, the
/// sweep result changes and the test fails loudly.
fn stale_envelope(key: u64) -> String {
    format!(
        "{{\n  \"schema_version\": {},\n  \"key\": \"{}\",\n  \"point\": {{\n    \"rate\": 0.02,\n    \"avg_latency\": 123456.75,\n    \"throughput\": 0.0,\n    \"delivered\": 1,\n    \"fastpass_fraction\": 0.0,\n    \"dropped_fraction\": 0.0\n  }}\n}}",
        CACHE_SCHEMA_VERSION - 1,
        bench::format_key(key)
    )
}

#[test]
fn corrupt_and_stale_entries_are_recomputed_not_served() {
    let scratch = Scratch::new("recompute");
    let spec = spec();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(scratch.0.clone()),
        progress: false,
    };

    // Reference: a cold run (fills the cache with valid envelopes).
    let reference = run_sweep_parallel(std::slice::from_ref(&spec), &opts);
    let reference_json = serde_json::to_string_pretty(&reference).unwrap();

    // Vandalize one entry per failure mode, leave the third valid.
    let store = Store::new(&scratch.0);
    let corrupt_key = point_cache_key(&spec, spec.rates[0]);
    let stale_key = point_cache_key(&spec, spec.rates[1]);
    std::fs::write(store.path_of(corrupt_key), "{\"schema_version\": 2, \"ke").unwrap();
    std::fs::write(store.path_of(stale_key), stale_envelope(stale_key)).unwrap();

    // Both damaged points must be misses.
    assert!(store.load(corrupt_key).is_none(), "corrupt entry served");
    assert!(store.load(stale_key).is_none(), "stale entry served");

    // The sweep recomputes them and lands on the reference bytes — the
    // poisoned 123456.75 latency never leaks into results.
    let recovered = run_sweep_parallel(std::slice::from_ref(&spec), &opts);
    assert_eq!(
        serde_json::to_string_pretty(&recovered).unwrap(),
        reference_json
    );

    // And the recompute *overwrote* the damage: both entries now load
    // and carry the true values.
    let fixed = store.load(stale_key).expect("stale entry overwritten");
    let truth = sweep(
        spec.id,
        spec.pattern,
        &spec.rates,
        spec.size,
        spec.fp_vcs,
        spec.warmup,
        spec.measure,
        spec.seed,
    );
    assert_eq!(fixed.avg_latency, truth.points[1].avg_latency);
    assert!(
        store.load(corrupt_key).is_some(),
        "corrupt entry overwritten"
    );
}

#[test]
fn gc_drops_damage_and_keeps_valid_entries() {
    let scratch = Scratch::new("gc");
    let spec = spec();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(scratch.0.clone()),
        progress: false,
    };
    run_sweep_parallel(std::slice::from_ref(&spec), &opts);

    let store = Store::new(&scratch.0);
    assert_eq!(store.stats().entries, spec.rates.len() as u64);

    // Plant one corrupt blob, one stale envelope and one orphan temp
    // file *next to* the valid entries (fresh keys, so nothing valid is
    // overwritten).
    std::fs::write(store.path_of(0xdead), "{{{").unwrap();
    std::fs::write(store.path_of(0xbeef), stale_envelope(0xbeef)).unwrap();
    std::fs::write(scratch.0.join("00000000000000aa.tmp.999"), "x").unwrap();

    let report = store.gc();
    assert_eq!(report.kept, spec.rates.len() as u64, "{report:?}");
    assert_eq!(report.dropped_corrupt, 1, "{report:?}");
    assert_eq!(report.dropped_stale, 1, "{report:?}");
    assert_eq!(report.dropped_temp, 1, "{report:?}");

    // The valid entries still serve: a re-run simulates nothing new
    // (asserted by bitwise equality against a cache-poisoning marker —
    // if the runner recomputed, it would overwrite; if it served, the
    // files are untouched).
    for &rate in &spec.rates {
        assert!(store.load(point_cache_key(&spec, rate)).is_some());
    }
    assert_eq!(store.stats().entries, spec.rates.len() as u64);
}
