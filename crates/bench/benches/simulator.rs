//! Criterion micro-benchmarks of the simulator substrate: per-cycle cost
//! of each scheme at a fixed moderate load (8×8 mesh). These quantify
//! the simulation cost of each mechanism (FastPass's TDM bookkeeping,
//! SPIN's scans, MinBD's flit sorting…), not the schemes' NoC
//! performance — that is what the `fig*` binaries measure.

use bench::{runner::make_sim, ALL_SCHEMES};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traffic::SyntheticPattern;

fn scheme_step_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_step_8x8_rate0.10");
    group.sample_size(10);
    for id in ALL_SCHEMES {
        group.bench_function(id.name(), |b| {
            // One warm simulation per scheme; measure batches of cycles.
            let mut sim = make_sim(id, SyntheticPattern::Uniform, 0.10, 8, 4, 31);
            sim.run(2_000); // warm up into steady state
            b.iter(|| {
                sim.run(100);
                black_box(sim.core.cycle())
            });
        });
    }
    group.finish();
}

fn substrate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpass_cycles_by_size");
    group.sample_size(10);
    for size in [4usize, 8, 16] {
        group.bench_function(format!("{size}x{size}"), |b| {
            let mut sim = make_sim(
                bench::SchemeId::FastPass,
                SyntheticPattern::Uniform,
                0.05,
                size,
                2,
                33,
            );
            sim.run(500);
            b.iter(|| {
                sim.run(50);
                black_box(sim.core.cycle())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, scheme_step_cost, substrate_scaling);
criterion_main!(benches);
