//! Criterion-wrapped miniature versions of the paper's figure kernels,
//! so `cargo bench` exercises every experiment path end-to-end with
//! statistically tracked runtimes. Full-scale figure regeneration lives
//! in the `fig*` binaries (`cargo run --release -p bench --bin fig7`).

use bench::{runner::sweep, SchemeId};
use criterion::{criterion_group, criterion_main, Criterion};
use noc_power::fig11_configs;
use noc_sim::Simulation;
use std::hint::black_box;
use traffic::{AppModel, SyntheticPattern};

fn fig7_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_kernel_one_point");
    group.sample_size(10);
    for id in [SchemeId::FastPass, SchemeId::EscapeVc, SchemeId::Spin] {
        group.bench_function(id.name(), |b| {
            b.iter(|| {
                let r = sweep(id, SyntheticPattern::Transpose, &[0.10], 4, 4, 300, 700, 41);
                black_box(r.points[0].avg_latency)
            });
        });
    }
    group.finish();
}

fn fig10_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_kernel_app_quota");
    group.sample_size(10);
    group.bench_function("fastpass_fft_4x4", |b| {
        b.iter(|| {
            let cfg = SchemeId::FastPass.sim_config(4, 2, 43);
            let scheme = SchemeId::FastPass.build(&cfg, 43);
            let wl = AppModel::Fft.workload(16, Some(5));
            let mut sim = Simulation::new(cfg, scheme, Box::new(wl));
            black_box(sim.run(50_000))
        });
    });
    group.finish();
}

fn fig11_kernel(c: &mut Criterion) {
    c.bench_function("fig11_power_model", |b| {
        b.iter(|| black_box(fig11_configs().len()));
    });
}

criterion_group!(benches, fig7_kernel, fig10_kernel, fig11_kernel);
criterion_main!(benches);
