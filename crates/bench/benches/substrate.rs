//! Criterion micro-benchmarks of substrate primitives: lane
//! verification, wait-graph analysis, the structural audit and the TDM
//! schedule arithmetic. These bound the bookkeeping costs a FastPass
//! implementation adds on top of plain simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use fastpass::lane::{lane_footprint, verify_slot_disjoint};
use fastpass::TdmSchedule;
use noc_core::config::SimConfig;
use noc_core::packet::{MessageClass, Packet};
use noc_core::rng::DetRng;
use noc_core::topology::{Mesh, NodeId};
use noc_sim::network::NetworkCore;
use noc_sim::regular::{advance, AdvanceCtx};
use noc_sim::routing::FullyAdaptive;
use noc_sim::waitgraph::WaitGraph;
use std::hint::black_box;

/// A congested 8×8 network for analysis benches.
fn congested_core() -> (NetworkCore, FullyAdaptive) {
    let mut core = NetworkCore::new(
        SimConfig::builder()
            .mesh(8, 8)
            .vns(0)
            .vcs_per_vn(2)
            .seed(3)
            .build(),
    );
    let mut policy = FullyAdaptive::new(5);
    let mut rng = DetRng::new(9);
    for cycle in 0..800u64 {
        for src in 0..64 {
            if rng.chance(0.25) {
                let mut dst = rng.range(0, 63);
                if dst >= src {
                    dst += 1;
                }
                core.generate(Packet::new(
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    1 + (cycle % 5) as u8,
                    cycle,
                ));
            }
        }
        advance(&mut core, &mut policy, &AdvanceCtx::default());
        core.advance_cycle();
    }
    (core, policy)
}

fn lane_verification(c: &mut Criterion) {
    let mesh = Mesh::new(8, 8);
    let sched = TdmSchedule::new(mesh, 4);
    c.bench_function("verify_slot_disjoint_8x8", |b| {
        b.iter(|| verify_slot_disjoint(mesh, sched, black_box(560)).is_ok())
    });
    c.bench_function("lane_footprint_8x8", |b| {
        b.iter(|| black_box(lane_footprint(mesh, mesh.node(3, 1), 6).len()))
    });
}

fn waitgraph_analysis(c: &mut Criterion) {
    let (core, policy) = congested_core();
    c.bench_function("waitgraph_build_congested_8x8", |b| {
        b.iter(|| {
            let g = WaitGraph::build(&core, &policy, 0);
            black_box(g.len())
        })
    });
    let g = WaitGraph::build(&core, &policy, 0);
    if !g.is_empty() {
        c.bench_function("waitgraph_cycle_search", |b| {
            b.iter(|| black_box(g.find_cycle_from(0).is_some()))
        });
    }
}

fn structural_audit(c: &mut Criterion) {
    let (core, _) = congested_core();
    c.bench_function("audit_congested_8x8", |b| {
        b.iter(|| black_box(noc_sim::audit::audit(&core).len()))
    });
}

fn schedule_math(c: &mut Criterion) {
    let sched = TdmSchedule::new(Mesh::new(16, 16), 4);
    c.bench_function("tdm_slot_info", |b| {
        let mut cycle = 0u64;
        b.iter(|| {
            cycle = cycle.wrapping_add(17);
            black_box(sched.slot_info(cycle).slot)
        })
    });
}

criterion_group!(
    benches,
    lane_verification,
    waitgraph_analysis,
    structural_audit,
    schedule_math
);
criterion_main!(benches);
