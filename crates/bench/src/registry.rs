//! Scheme registry: Table II configurations and constructors.

use baselines::{
    drain::DrainConfig, pitstop::PitstopConfig, spin::SpinConfig, swap::SwapConfig, CreditVct,
    Drain, EscapeVc, MinBd, Pitstop, Spin, Swap, Tfc,
};
use fastpass::{FastPass, FastPassConfig};
use noc_core::config::SimConfig;
use noc_sim::Scheme;

/// Every scheme of the paper's comparison, in Fig. 7 legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// EscapeVC (VN=6, VC=2).
    EscapeVc,
    /// SPIN (VN=6, VC=2, detection threshold 128).
    Spin,
    /// SWAP (VN=6, VC=2, swap duty 1K).
    Swap,
    /// DRAIN (VN=6, VC=2; the period is scaled to the run length the
    /// same way the paper's 64K relates to its full-system runs).
    Drain,
    /// Pitstop (VN=0, VC=2).
    Pitstop,
    /// MinBD (bufferless deflection).
    MinBd,
    /// TFC (VN=6, VC=2).
    Tfc,
    /// FastPass (VN=0; VC per experiment: 1, 2 or 4).
    FastPass,
    /// Plain credit-based VCT with XY routing (VN=6, VC=2). Not part of
    /// the paper's comparison (hence not in [`ALL_SCHEMES`]); used as the
    /// substrate sanity baseline in the CI smoke sweep.
    Vct,
}

/// All schemes in Fig. 7 order.
pub const ALL_SCHEMES: [SchemeId; 8] = [
    SchemeId::EscapeVc,
    SchemeId::Spin,
    SchemeId::Swap,
    SchemeId::Drain,
    SchemeId::Pitstop,
    SchemeId::MinBd,
    SchemeId::Tfc,
    SchemeId::FastPass,
];

impl SchemeId {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::EscapeVc => "EscapeVC",
            SchemeId::Spin => "SPIN",
            SchemeId::Swap => "SWAP",
            SchemeId::Drain => "DRAIN",
            SchemeId::Pitstop => "Pitstop",
            SchemeId::MinBd => "MinBD",
            SchemeId::Tfc => "TFC",
            SchemeId::FastPass => "FastPass",
            SchemeId::Vct => "VCT-XY",
        }
    }

    /// The inverse of [`SchemeId::name`], case-insensitively — the wire
    /// protocol and `nocctl` spell schemes by name. Returns `None` for
    /// unknown names.
    pub fn parse(name: &str) -> Option<SchemeId> {
        let mut all = ALL_SCHEMES.to_vec();
        all.push(SchemeId::Vct);
        all.into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(name))
    }

    /// VNs per Table II.
    pub fn vns(self) -> usize {
        match self {
            SchemeId::Pitstop | SchemeId::FastPass | SchemeId::MinBd => 0,
            _ => 6,
        }
    }

    /// Builds the simulation configuration for this scheme on a
    /// `size × size` mesh. `fp_vcs` sets FastPass's VCs per input buffer
    /// (1, 2 or 4 in the paper); VN-based schemes always use 2 VCs/VN.
    pub fn sim_config(self, size: usize, fp_vcs: usize, seed: u64) -> SimConfig {
        let vcs = match self {
            SchemeId::FastPass => fp_vcs,
            SchemeId::MinBd => 1, // buffers unused
            SchemeId::Pitstop => 2,
            _ => 2,
        };
        SimConfig::builder()
            .mesh(size, size)
            .vns(self.vns())
            .vcs_per_vn(vcs)
            .seed(seed)
            .build()
    }

    /// Instantiates the scheme for a configuration.
    pub fn build(self, cfg: &SimConfig, seed: u64) -> Box<dyn Scheme> {
        let nodes = cfg.mesh.num_nodes();
        match self {
            SchemeId::EscapeVc => Box::new(EscapeVc::new(seed)),
            SchemeId::Spin => Box::new(Spin::new(seed, SpinConfig::default())),
            SchemeId::Swap => Box::new(Swap::new(seed, SwapConfig::default())),
            SchemeId::Drain => Box::new(Drain::new(
                cfg.mesh,
                seed,
                DrainConfig {
                    // Scaled from the paper's 64K so drains actually
                    // occur within bench-length runs.
                    period: 8_000,
                    step_cycles: 5,
                },
            )),
            SchemeId::Pitstop => Box::new(Pitstop::new(nodes, seed, PitstopConfig::default())),
            SchemeId::MinBd => Box::new(MinBd::new(nodes, seed, Default::default())),
            SchemeId::Tfc => Box::new(Tfc::new(seed)),
            SchemeId::FastPass => Box::new(FastPass::new(cfg, FastPassConfig::default())),
            SchemeId::Vct => Box::new(CreditVct::xy(cfg.vns)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_constructs_on_8x8() {
        for id in ALL_SCHEMES {
            let cfg = id.sim_config(8, 4, 1);
            let scheme = id.build(&cfg, 1);
            assert_eq!(scheme.required_vns(), cfg.vns, "{}", id.name());
            assert_eq!(scheme.name(), id.name());
        }
    }

    #[test]
    fn fastpass_vc_knob_applies_only_to_fastpass() {
        let fp = SchemeId::FastPass.sim_config(8, 4, 1);
        assert_eq!(fp.vcs_per_port(), 4);
        let esc = SchemeId::EscapeVc.sim_config(8, 4, 1);
        assert_eq!(esc.vcs_per_port(), 12);
    }

    #[test]
    fn vct_smoke_baseline_constructs_but_stays_out_of_fig7() {
        assert!(!ALL_SCHEMES.contains(&SchemeId::Vct));
        let cfg = SchemeId::Vct.sim_config(4, 2, 1);
        let scheme = SchemeId::Vct.build(&cfg, 1);
        assert_eq!(scheme.name(), SchemeId::Vct.name());
        assert_eq!(scheme.required_vns(), cfg.vns);
    }

    #[test]
    fn table2_vn_assignments() {
        for id in [SchemeId::Pitstop, SchemeId::FastPass] {
            assert_eq!(id.vns(), 0, "{}", id.name());
        }
        for id in [
            SchemeId::EscapeVc,
            SchemeId::Spin,
            SchemeId::Swap,
            SchemeId::Drain,
            SchemeId::Tfc,
        ] {
            assert_eq!(id.vns(), 6, "{}", id.name());
        }
    }
}
