//! The shared hot-path measurement harness.
//!
//! `hotpath` (interactive microbenchmark) and `perfwatch` (perf-history
//! regression gate) must measure *the same thing* for their numbers to
//! be comparable across commits, so the workload definition and timing
//! methodology live here and both binaries are thin wrappers.
//!
//! The workload is the low-load smoke sweep — FastPass + plain VCT on a
//! 4×4 mesh at three rates — run uncached, so the measured wall-clock
//! is pure simulator time. Each repetition of the whole sweep is timed
//! separately and the *fastest* repetition is the headline number: on
//! shared machines the minimum is the best estimator of true cost
//! (interference only ever adds time).
//!
//! Two execution schedules of the same sweep are measured: *serial*
//! (points back to back, the historical `cycles_per_sec` headline) and
//! *batched* (all points interleaved through
//! [`noc_sim::batch::run_windows_batched`], reported as
//! `batched_cycles_per_sec`). Per-point results are bitwise identical
//! either way; only the wall-clock differs.

use crate::runner::make_sim;
use crate::SchemeId;
use noc_sim::Simulation;
use noc_trace::{TraceConfig, TraceLevel};
use std::time::Instant;
use traffic::SyntheticPattern;

/// Mesh side length of the benchmark sweep.
pub const MESH_SIZE: usize = 4;
/// FastPass VCs per VN.
pub const FP_VCS: usize = 2;
/// Simulation seed.
pub const SEED: u64 = 5;
/// Warmup cycles per point.
pub const WARMUP: u64 = 1_000;
/// Measured cycles per point.
pub const MEASURE: u64 = 3_000;
/// Injection rates swept.
pub const RATES: [f64; 3] = [0.02, 0.05, 0.08];
/// Schemes swept.
pub const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];
/// Default repetitions of the whole sweep, to push the measurement well
/// past timer noise on fast machines.
pub const DEFAULT_REPS: u64 = 20;

/// One timed measurement (over `reps` sweep repetitions).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Cycles simulated across all repetitions.
    pub total_cycles: u64,
    /// Packets delivered across all repetitions.
    pub total_delivered: u64,
    /// Wall-clock seconds across all repetitions.
    pub total_secs: f64,
    /// Fastest single repetition, seconds.
    pub best: f64,
    /// Cycles/second derived from the fastest repetition (headline).
    pub cps_best: f64,
    /// Mean cycles/second over all repetitions.
    pub cps_mean: f64,
}

/// A one-line description of the benchmark workload for report headers.
pub fn workload_description(reps: u64) -> String {
    format!(
        "smoke sweep x{reps}: {{FastPass, VCT}} x rates {RATES:?}, \
         {MESH_SIZE}x{MESH_SIZE} mesh, warmup {WARMUP} + measure {MEASURE}, \
         seed {SEED}, serial and uncached"
    )
}

/// Runs the benchmark sweep once, invoking `on_sim` on each freshly
/// built simulation (probe installation, tracing) before it runs.
/// Returns `(cycles, delivered)`.
///
/// # Panics
///
/// Panics if any point delivers nothing — a wedged scheme would
/// otherwise benchmark infinitely fast.
pub fn run_sweep_with(
    trace: Option<TraceLevel>,
    mut on_sim: impl FnMut(&mut Simulation),
) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    for id in SCHEMES {
        for rate in RATES {
            let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
            if let Some(level) = trace {
                sim.set_trace(&TraceConfig {
                    level,
                    ..TraceConfig::default()
                });
            }
            on_sim(&mut sim);
            let stats = sim.run_windows(WARMUP, MEASURE);
            cycles += WARMUP + stats.cycles;
            delivered += stats.delivered();
            assert!(stats.delivered() > 0, "{} delivered nothing", id.name());
        }
    }
    (cycles, delivered)
}

/// Runs the benchmark sweep once with no per-simulation setup.
pub fn run_sweep(trace: Option<TraceLevel>) -> (u64, u64) {
    run_sweep_with(trace, |_| {})
}

/// Builds the six sweep simulations in sweep order (scheme-major, rate
/// within), invoking `on_sim` on each before it runs — the batched
/// counterpart of [`run_sweep_with`]'s construction.
pub fn build_sweep_sims(
    trace: Option<TraceLevel>,
    mut on_sim: impl FnMut(&mut Simulation),
) -> Vec<Simulation> {
    let mut sims = Vec::with_capacity(SCHEMES.len() * RATES.len());
    for id in SCHEMES {
        for rate in RATES {
            let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
            if let Some(level) = trace {
                sim.set_trace(&TraceConfig {
                    level,
                    ..TraceConfig::default()
                });
            }
            on_sim(&mut sim);
            sims.push(sim);
        }
    }
    sims
}

/// Runs the benchmark sweep once through the batched executor
/// ([`noc_sim::batch`]): all six points interleave through one hot loop
/// instead of running back to back. Per-point results are bitwise
/// identical to [`run_sweep`] (enforced by the `batched_equivalence`
/// test); only the execution schedule differs. Returns
/// `(cycles, delivered)` aggregated exactly as [`run_sweep`] does.
///
/// # Panics
///
/// Panics if any point delivers nothing — a wedged scheme would
/// otherwise benchmark infinitely fast.
pub fn run_sweep_batched(trace: Option<TraceLevel>) -> (u64, u64) {
    let mut sims = build_sweep_sims(trace, |_| {});
    let all = noc_sim::batch::run_windows_batched(&mut sims, WARMUP, MEASURE);
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    for (stats, sim) in all.iter().zip(&sims) {
        cycles += WARMUP + stats.cycles;
        delivered += stats.delivered();
        assert!(
            stats.delivered() > 0,
            "{} delivered nothing (batched)",
            sim.scheme_name()
        );
    }
    (cycles, delivered)
}

/// Times `reps` repetitions of the sweep (after the caller has warmed
/// caches with a throwaway [`run_sweep`]).
pub fn measure(trace: Option<TraceLevel>, reps: u64) -> Measurement {
    measure_with(reps, || run_sweep(trace))
}

/// Times `reps` repetitions of the *batched* sweep — identical
/// workload, identical per-point results, batched execution schedule
/// ([`run_sweep_batched`]). Reported separately by `hotpath` and gated
/// separately by `perfwatch` (`batched_cycles_per_sec`).
pub fn measure_batched(trace: Option<TraceLevel>, reps: u64) -> Measurement {
    measure_with(reps, || run_sweep_batched(trace))
}

fn measure_with(reps: u64, mut sweep: impl FnMut() -> (u64, u64)) -> Measurement {
    let mut total_cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut total_secs = 0f64;
    let mut best = f64::INFINITY;
    let mut sweep_cycles = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let (cycles, delivered) = sweep();
        let secs = start.elapsed().as_secs_f64();
        total_cycles += cycles;
        total_delivered += delivered;
        total_secs += secs;
        best = best.min(secs);
        sweep_cycles = cycles;
    }
    Measurement {
        total_cycles,
        total_delivered,
        total_secs,
        best,
        cps_best: sweep_cycles as f64 / best,
        cps_mean: total_cycles as f64 / total_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_rep_measures_something() {
        let m = measure(None, 1);
        assert_eq!(m.total_cycles, (WARMUP + MEASURE) * 6);
        assert!(m.total_delivered > 0);
        assert!(m.cps_best > 0.0 && m.cps_best.is_finite());
        assert!(m.best <= m.total_secs);
    }

    #[test]
    fn batched_sweep_matches_serial_totals() {
        let serial = run_sweep(None);
        let batched = run_sweep_batched(None);
        assert_eq!(batched, serial, "(cycles, delivered) diverged");
    }

    #[test]
    fn workload_description_names_the_sweep() {
        let d = workload_description(20);
        assert!(d.contains("x20") && d.contains("4x4"), "{d}");
    }
}
