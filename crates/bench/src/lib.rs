//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/figN.rs` / `tableN.rs` binary reproduces one artifact of
//! the evaluation section; this library holds what they share — the
//! scheme registry with Table II's per-scheme configurations, sweep
//! runners, and plain-text/JSON emitters. Binaries honour these
//! environment variables so quick runs and full runs use the same code:
//!
//! * `FP_WARMUP` / `FP_MEASURE` — cycles per window (defaults per binary);
//! * `FP_OUT` — directory for JSON results (default `results/`);
//! * `NOC_JOBS` — worker threads for parallel sweeps (default: available
//!   cores);
//! * `FP_CACHE` — completed-point cache directory (default
//!   `results/cache/`; set to `off` to disable);
//! * `FP_TRACE_OUT` — directory for traced-run artifacts (default
//!   `trace/`; used by `smoke --trace`);
//! * `NOC_SERVE` — socket of a running `nocserve` daemon; routes sweeps
//!   through it instead of the in-process executor (same as passing
//!   `--serve` to a sweep binary — see [`serve_client`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_out;
pub mod hotbench;
pub mod perfwatch;
pub mod phases;
pub mod proto;
pub mod registry;
pub mod runner;
pub mod serve_client;
pub mod store;
pub mod telemetry;
pub mod trace_out;

pub use bench_out::{git_sha, BenchReport, BENCH_SCHEMA_VERSION};
pub use hotbench::Measurement;
pub use phases::{PhaseTimes, WallProbe};
pub use proto::{
    FlightRecord, FlightStats, HistogramSummary, MetricValue, MetricsReport, StatusReport,
    WireSpec, WorkerReport, PROTO_VERSION,
};
pub use registry::{SchemeId, ALL_SCHEMES};
pub use runner::{
    emit_json, env_u64, num_jobs, parallel_map, parallel_map_with, point_cache_key,
    run_sweep_parallel, simulate_point, LatencyPoint, SweepOptions, SweepResult, SweepSpec,
    CACHE_SCHEMA_VERSION,
};
pub use serve_client::{run_sweeps, Client, ExecMode};
pub use store::{format_key, GcReport, Provenance, Store, StoreStats};
pub use telemetry::{merge_counter_tracks, series_summary, sparkline, windows_json};
pub use trace_out::{
    check_chrome_trace, check_chrome_trace_full, run_traced_point, trace_out_dir, TraceCheckSummary,
};
