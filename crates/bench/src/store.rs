//! The content-addressed sweep-result store.
//!
//! One simulation point — a `(scheme, pattern, config, rate, seed,
//! windows)` tuple — is addressed by its FNV-64 cache key
//! ([`crate::runner::point_cache_key`]) and stored as one JSON blob at
//! `<dir>/<key:016x>.json`. The store is the single durable artifact
//! shared by every consumer: the batch executor
//! ([`crate::runner::run_sweep_parallel`]) reads and writes it directly,
//! and the `nocserve` daemon owns it as its L2 result cache. Because the
//! key is content-derived and the stored value is a pure function of the
//! key's inputs, concurrent writers can only ever race to write the
//! *same bytes* — last-rename-wins is correct by construction.
//!
//! ## Blob format
//!
//! Entries are written as a schema-versioned envelope, optionally
//! stamped with compute provenance (who computed the point, when, how
//! long it took):
//!
//! ```json
//! { "schema_version": 3, "key": "00d57c9a6a2e4f11", "point": { … },
//!   "provenance": { "unix_ms": …, "wall_ms": 118, "worker": 2,
//!                   "git_sha": "…", "cycles": 5000 } }
//! ```
//!
//! Provenance is *metadata*: it never participates in cache keys or
//! point comparison, so two writers racing on one key still only ever
//! disagree about bookkeeping, never about results. The field is
//! optional on read — envelopes written without it decode to
//! `provenance: None`.
//!
//! Loading accepts two shapes:
//!
//! * the envelope, when `schema_version` matches
//!   [`CACHE_SCHEMA_VERSION`] and `key` matches the filename — the
//!   current format;
//! * a bare [`LatencyPoint`] object — the pre-envelope `FP_CACHE`
//!   layout (PR 1). A key match already implies the current schema
//!   (the version is folded into every key), so legacy entries stay
//!   servable and [`Store::gc`] migrates them in place.
//!
//! Anything else — truncated JSON, a stale `schema_version`, a key
//! field that disagrees with the filename — is a cache *miss*, never a
//! wrong answer: the point is recomputed and the entry overwritten.
//! [`Store::gc`] deletes such entries eagerly.
//!
//! Writes are atomic (unique temp file + rename) so a crashed or
//! interrupted writer can leave at worst an orphaned `*.tmp.*` file,
//! which `gc` sweeps up.

use crate::runner::LatencyPoint;
use serde::{field, Content, DeError, Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bump when the cache entry format or simulation semantics change in a
/// way that invalidates previously cached points. The version is folded
/// into every [`crate::runner::point_cache_key`], so a bump forces
/// recomputation of all previously cached points rather than silently
/// serving stale results; it is also stamped into every stored
/// envelope, so [`Store::gc`] can identify and drop entries written by
/// a different schema generation.
///
/// v2: the regular-pass rewrite (active-set worklist, occupancy
/// bitmasks) plus the warmup-carryover accounting fix changed
/// `NetStats` contents; v1 entries predate
/// `delivered_carryover`/`window_start`.
///
/// v3: envelopes gained the optional `provenance` stamp. The stored
/// points themselves are unchanged, but the bump keeps every generation
/// of on-disk bytes attributable to exactly one schema version.
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// Who computed a stored point, when, and at what cost. Pure metadata:
/// never folded into cache keys, never compared for cache hits — it
/// exists so `nocctl fetch` (and any forensic reader of the store) can
/// answer "when and how was this point computed".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Wall-clock milliseconds since the Unix epoch at store time.
    pub unix_ms: u64,
    /// Wall-clock milliseconds the computation took. Daemon workers
    /// simulate same-window batches in lockstep, so batched points share
    /// their batch's wall time.
    pub wall_ms: u64,
    /// Daemon worker id that simulated the point; `None` means the
    /// batch executor computed it in-process.
    pub worker: Option<u64>,
    /// Git revision of the producing build ([`crate::git_sha`]).
    pub git_sha: String,
    /// Simulated cycles per point (warmup + measurement window).
    pub cycles: u64,
}

impl Provenance {
    /// A stamp dated now. `git_sha` is passed in (rather than resolved
    /// here) so callers can resolve it once per run, not once per point.
    pub fn now(wall_ms: u64, worker: Option<u64>, git_sha: String, cycles: u64) -> Provenance {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        Provenance {
            unix_ms,
            wall_ms,
            worker,
            git_sha,
            cycles,
        }
    }
}

/// The on-disk envelope around one stored point.
///
/// Serialization is hand-written (not derived) for two reasons: `None`
/// provenance is *omitted* rather than written as `null`, and — because
/// the derive's deserializer treats every field as required — a
/// hand-rolled decode is what lets pre-v3 envelopes (no `provenance`
/// key) still parse as envelopes, so [`Store::gc`] classifies them as
/// stale-schema rather than corrupt.
#[derive(Debug, Clone)]
struct Envelope {
    /// Schema generation that produced this entry.
    schema_version: u32,
    /// The point's cache key, hex-encoded — must match the filename.
    key: String,
    /// The stored result.
    point: LatencyPoint,
    /// Compute provenance, when the writer stamped it.
    provenance: Option<Provenance>,
}

impl Serialize for Envelope {
    fn to_content(&self) -> Content {
        let mut map = vec![
            (
                "schema_version".to_string(),
                self.schema_version.to_content(),
            ),
            ("key".to_string(), self.key.to_content()),
            ("point".to_string(), self.point.to_content()),
        ];
        if let Some(p) = &self.provenance {
            map.push(("provenance".to_string(), p.to_content()));
        }
        Content::Map(map)
    }
}

impl Deserialize for Envelope {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("envelope must be a JSON object".to_string()))?;
        Ok(Envelope {
            schema_version: u32::from_content(field(map, "schema_version")?)?,
            key: String::from_content(field(map, "key")?)?,
            point: LatencyPoint::from_content(field(map, "point")?)?,
            provenance: match field(map, "provenance") {
                Ok(content) => Option::<Provenance>::from_content(content)?,
                Err(_) => None,
            },
        })
    }
}

/// What one [`Store::gc`] pass found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// Entries examined (every `*.json` with a 16-hex-digit name).
    pub scanned: u64,
    /// Valid current-schema envelopes left in place.
    pub kept: u64,
    /// Legacy bare-`LatencyPoint` blobs rewrapped into envelopes.
    pub migrated: u64,
    /// Envelopes deleted because their `schema_version` is not
    /// [`CACHE_SCHEMA_VERSION`] or their `key` contradicts the filename.
    pub dropped_stale: u64,
    /// Blobs deleted because they parse as neither envelope nor legacy
    /// point (truncated writes, corruption).
    pub dropped_corrupt: u64,
    /// Orphaned `*.tmp.*` files from interrupted atomic writes deleted.
    pub dropped_temp: u64,
}

impl GcReport {
    /// Total entries removed by the pass.
    pub fn dropped(&self) -> u64 {
        self.dropped_stale + self.dropped_corrupt + self.dropped_temp
    }
}

/// A snapshot of the store's size, for status reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of `*.json` entries present (valid or not).
    pub entries: u64,
    /// Total bytes across those entries.
    pub bytes: u64,
}

/// The content-addressed point store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// A store rooted at `dir`. The directory is created lazily on
    /// first write, so constructing a store never touches the disk.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The blob path of `key`.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Parses a hex key as printed by [`format_key`] (16 hex digits,
    /// leading zeros required). Returns `None` on anything else.
    pub fn parse_key(s: &str) -> Option<u64> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }

    /// Loads the point stored under `key`, or `None` if the entry is
    /// absent, truncated, corrupt, written under a different schema
    /// version, or self-inconsistent. A miss is always safe: the caller
    /// recomputes and overwrites.
    pub fn load(&self, key: u64) -> Option<LatencyPoint> {
        self.load_entry(key).map(|(point, _)| point)
    }

    /// Like [`Store::load`], but also surfaces the envelope's compute
    /// provenance (absent on legacy entries and provenance-less writes).
    pub fn load_entry(&self, key: u64) -> Option<(LatencyPoint, Option<Provenance>)> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        decode_entry(&text, key).map(|(point, provenance, _)| (point, provenance))
    }

    /// Stores `point` under `key` atomically (unique temp file +
    /// rename). Best-effort: a full disk or unwritable directory
    /// degrades to recomputation on the next load, never to a wrong
    /// result. Returns whether the entry landed.
    pub fn store(&self, key: u64, point: &LatencyPoint) -> bool {
        self.store_with_provenance(key, point, None)
    }

    /// [`Store::store`] with a compute-provenance stamp in the envelope.
    pub fn store_with_provenance(
        &self,
        key: u64,
        point: &LatencyPoint,
        provenance: Option<&Provenance>,
    ) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let envelope = Envelope {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format_key(key),
            point: point.clone(),
            provenance: provenance.cloned(),
        };
        let Ok(json) = serde_json::to_string_pretty(&envelope) else {
            return false;
        };
        let tmp = self
            .dir
            .join(format!("{key:016x}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        std::fs::rename(&tmp, self.path_of(key)).is_ok()
    }

    /// Removes the entry stored under `key`. Returns whether an entry
    /// was actually deleted.
    pub fn evict(&self, key: u64) -> bool {
        std::fs::remove_file(self.path_of(key)).is_ok()
    }

    /// Walks the store once: keeps valid current-schema envelopes,
    /// rewraps legacy bare-point blobs into envelopes, deletes
    /// stale-schema entries, corrupt blobs and orphaned temp files.
    ///
    /// A missing or empty directory is a clean no-op report.
    pub fn gc(&self) -> GcReport {
        let mut report = GcReport::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return report;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp.") {
                if std::fs::remove_file(&path).is_ok() {
                    report.dropped_temp += 1;
                }
                continue;
            }
            let Some(stem) = name.strip_suffix(".json") else {
                continue;
            };
            let Some(key) = Self::parse_key(stem) else {
                continue;
            };
            report.scanned += 1;
            let verdict = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| decode_entry(&text, key));
            match verdict {
                Some((_, _, true)) => report.kept += 1,
                Some((point, _, false)) => {
                    // Legacy bare blob: rewrap in place. If the rewrite
                    // fails the old blob stays readable — migration is
                    // retried on the next gc pass.
                    if self.store(key, &point) {
                        report.migrated += 1;
                    } else {
                        report.kept += 1;
                    }
                }
                None => {
                    // Distinguish stale-schema from corruption for the
                    // report; both are deleted either way.
                    let stale = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| serde_json::from_str::<Envelope>(&text).ok())
                        .is_some();
                    if std::fs::remove_file(&path).is_ok() {
                        if stale {
                            report.dropped_stale += 1;
                        } else {
                            report.dropped_corrupt += 1;
                        }
                    }
                }
            }
        }
        report
    }

    /// Counts entries and bytes currently on disk.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".json")
                && name
                    .strip_suffix(".json")
                    .is_some_and(|s| Store::parse_key(s).is_some())
            {
                stats.entries += 1;
                stats.bytes += entry.metadata().map_or(0, |m| m.len());
            }
        }
        stats
    }
}

/// Renders a key in the store's canonical 16-hex-digit form.
pub fn format_key(key: u64) -> String {
    format!("{key:016x}")
}

/// Decodes one blob's text for `key`. Returns the point, its provenance
/// stamp (if any) and whether the blob was already a current-schema
/// envelope (`false` = legacy bare point), or `None` for
/// stale/corrupt/mismatched entries.
fn decode_entry(text: &str, key: u64) -> Option<(LatencyPoint, Option<Provenance>, bool)> {
    if let Ok(env) = serde_json::from_str::<Envelope>(text) {
        if env.schema_version == CACHE_SCHEMA_VERSION && env.key == format_key(key) {
            return Some((env.point, env.provenance, true));
        }
        return None;
    }
    serde_json::from_str::<LatencyPoint>(text)
        .ok()
        .map(|p| (p, None, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64, lat: f64) -> LatencyPoint {
        LatencyPoint {
            rate,
            avg_latency: lat,
            throughput: rate,
            delivered: 10,
            fastpass_fraction: 0.0,
            dropped_fraction: 0.0,
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("nocstore_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::new(dir)
    }

    #[test]
    fn round_trips_an_envelope() {
        let store = temp_store("roundtrip");
        assert!(store.load(7).is_none());
        assert!(store.store(7, &point(0.1, 12.0)));
        let got = store.load(7).expect("stored entry loads");
        assert_eq!(got.avg_latency, 12.0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn legacy_bare_point_loads_and_gc_migrates_it() {
        let store = temp_store("legacy");
        std::fs::create_dir_all(store.dir()).unwrap();
        let legacy = serde_json::to_string_pretty(&point(0.05, 9.0)).unwrap();
        std::fs::write(store.path_of(3), legacy).unwrap();
        assert_eq!(store.load(3).expect("legacy entry loads").avg_latency, 9.0);

        let report = store.gc();
        assert_eq!(report.migrated, 1, "{report:?}");
        assert_eq!(report.dropped(), 0, "{report:?}");
        // Now an envelope: loads, and a second gc keeps it.
        assert_eq!(
            store.load(3).expect("migrated entry loads").avg_latency,
            9.0
        );
        let report = store.gc();
        assert_eq!((report.kept, report.migrated), (1, 0), "{report:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_schema_and_corrupt_blobs_are_misses_and_gc_drops_them() {
        let store = temp_store("stale");
        std::fs::create_dir_all(store.dir()).unwrap();
        // Stale: a well-formed envelope from a previous schema version.
        let stale = Envelope {
            schema_version: CACHE_SCHEMA_VERSION - 1,
            key: format_key(1),
            point: point(0.1, 99_999.0),
            provenance: None,
        };
        std::fs::write(store.path_of(1), serde_json::to_string(&stale).unwrap()).unwrap();
        // Corrupt: a truncated write.
        std::fs::write(store.path_of(2), "{\"schema_version\": 2, \"ke").unwrap();
        // Orphaned temp file from an interrupted writer.
        std::fs::write(store.dir().join("0000000000000003.tmp.1234"), "x").unwrap();

        assert!(store.load(1).is_none(), "stale entry must not be served");
        assert!(store.load(2).is_none(), "corrupt entry must not be served");

        let report = store.gc();
        assert_eq!(report.dropped_stale, 1, "{report:?}");
        assert_eq!(report.dropped_corrupt, 1, "{report:?}");
        assert_eq!(report.dropped_temp, 1, "{report:?}");
        assert_eq!(store.stats().entries, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_mismatch_inside_envelope_is_a_miss() {
        let store = temp_store("mismatch");
        std::fs::create_dir_all(store.dir()).unwrap();
        let wrong = Envelope {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format_key(99),
            point: point(0.1, 1.0),
            provenance: None,
        };
        std::fs::write(store.path_of(5), serde_json::to_string(&wrong).unwrap()).unwrap();
        assert!(store.load(5).is_none());
        let report = store.gc();
        assert_eq!(report.dropped_stale, 1, "{report:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn provenance_round_trips_and_never_perturbs_the_point() {
        let store = temp_store("provenance");
        let prov = Provenance {
            unix_ms: 1_700_000_000_000,
            wall_ms: 118,
            worker: Some(2),
            git_sha: "deadbeef".to_string(),
            cycles: 5_000,
        };
        assert!(store.store_with_provenance(11, &point(0.1, 12.0), Some(&prov)));
        let (got, stamped) = store.load_entry(11).expect("stamped entry loads");
        assert_eq!(stamped.as_ref(), Some(&prov));
        // The plain load path sees exactly the bytes-equal point.
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&store.load(11).unwrap()).unwrap()
        );
        // A provenance-less write under the same schema loads with None
        // — and without a "provenance": null key on disk.
        assert!(store.store(12, &point(0.2, 9.0)));
        let (_, none) = store.load_entry(12).expect("plain entry loads");
        assert!(none.is_none());
        let text = std::fs::read_to_string(store.path_of(12)).unwrap();
        assert!(!text.contains("provenance"), "omitted, not null: {text}");
        // gc keeps both shapes.
        let report = store.gc();
        assert_eq!((report.kept, report.dropped()), (2, 0), "{report:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn pre_provenance_envelope_is_stale_schema_not_corrupt() {
        // A v2-era envelope has no `provenance` key at all. It must
        // still *parse* as an envelope so gc classifies it stale (and a
        // load treats it as a miss) rather than lumping it in with
        // truncated-write corruption.
        let store = temp_store("prev3");
        std::fs::create_dir_all(store.dir()).unwrap();
        let v2 = format!(
            "{{\"schema_version\": {}, \"key\": \"{}\", \"point\": {}}}",
            CACHE_SCHEMA_VERSION - 1,
            format_key(4),
            serde_json::to_string(&point(0.05, 7.0)).unwrap()
        );
        std::fs::write(store.path_of(4), v2).unwrap();
        assert!(store.load(4).is_none(), "stale generation is a miss");
        let report = store.gc();
        assert_eq!(report.dropped_stale, 1, "{report:?}");
        assert_eq!(report.dropped_corrupt, 0, "{report:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn evict_removes_exactly_one_entry() {
        let store = temp_store("evict");
        assert!(store.store(1, &point(0.1, 1.0)));
        assert!(store.store(2, &point(0.2, 2.0)));
        assert!(store.evict(1));
        assert!(!store.evict(1), "double evict reports nothing removed");
        assert!(store.load(1).is_none());
        assert!(store.load(2).is_some());
        assert_eq!(store.stats().entries, 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn parse_key_requires_canonical_form() {
        assert_eq!(Store::parse_key("00000000000000ff"), Some(255));
        assert_eq!(Store::parse_key(&format_key(u64::MAX)), Some(u64::MAX));
        assert!(Store::parse_key("ff").is_none(), "short form rejected");
        assert!(Store::parse_key("00000000000000zz").is_none());
        assert!(Store::parse_key("00000000000000ff0").is_none());
    }

    #[test]
    fn gc_on_missing_directory_is_a_clean_noop() {
        let store = temp_store("missing");
        assert_eq!(store.gc(), GcReport::default());
        assert_eq!(store.stats(), StoreStats::default());
    }
}
