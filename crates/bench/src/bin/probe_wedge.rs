//! Diagnostic: why does the 6-VN XY control wedge on the aggressive
//! protocol workload? Dumps queue/buffer occupancy at the stall.

use baselines::CreditVct;
use noc_core::config::SimConfig;
use noc_core::packet::CLASSES;
use noc_core::topology::NUM_PORTS;
use noc_sim::Simulation;
use traffic::protocol::{ProtocolConfig, ProtocolWorkload};

fn main() {
    let cfg = SimConfig::builder()
        .mesh(4, 4)
        .vns(6)
        .vcs_per_vn(1)
        .ej_queue_packets(2)
        .inj_queue_packets(2)
        .seed(5)
        .build();
    let wl = ProtocolWorkload::new(
        16,
        ProtocolConfig {
            mshrs: 12,
            issue_prob: 0.8,
            forward_fraction: 0.2,
            writeback_fraction: 0.2,
            locality: 0.0,
            quota: Some(40),
            home_backlog_limit: 2,
            seed: 99,
        },
    );
    let mut sim = Simulation::new(cfg, Box::new(CreditVct::xy(6)), Box::new(wl));
    sim.run(20_000);
    println!(
        "cycle {} consumed {} starved {} in_flight {}",
        sim.core.cycle(),
        sim.total_consumed(),
        sim.starvation_cycles(),
        sim.in_flight()
    );
    let core = &sim.core;
    for n in core.mesh().nodes() {
        let ni = core.ni(n);
        let mut row = format!("{n}: src {:>3} |", ni.source_depth());
        for c in CLASSES {
            row += &format!(" {}:inj{} ej{}", c, ni.inj_len(c), ni.ej_len(c));
        }
        let vcs = core.vcs_per_port();
        let mut buf = 0;
        let mut blocked = 0;
        for p in 0..NUM_PORTS {
            for vc in 0..vcs {
                if let Some(occ) = core.input(n, p).occupant(vc) {
                    buf += 1;
                    if occ.blocked_for(core.cycle()) > 1000 {
                        blocked += 1;
                    }
                }
            }
        }
        row += &format!(" | vcs {buf} blocked {blocked}");
        println!("{row}");
    }
    // Per-class totals in VC buffers.
    let mut per_class = [0usize; 6];
    for n in core.mesh().nodes() {
        let vcs = core.vcs_per_port();
        for p in 0..NUM_PORTS {
            for vc in 0..vcs {
                if let Some(occ) = core.input(n, p).occupant(vc) {
                    per_class[core.store.get(occ.pkt).class.index()] += 1;
                }
            }
        }
    }
    println!("buffered per class: {per_class:?}");
}
