//! Table II: key simulation parameters, as configured in this
//! reproduction (printed from the live defaults so drift is impossible).

use bench::{SchemeId, ALL_SCHEMES};
use fastpass::TdmSchedule;
use noc_core::config::SimConfig;

fn main() {
    bench::serve_client::warn_if_serve_requested("table2");
    let cfg = SimConfig::default();
    println!("Table II: Key simulation parameters");
    println!("{:<28} 4x4, 8x8, and 16x16 mesh", "Topology");
    println!(
        "{:<28} {}x{} (default)",
        "Mesh",
        cfg.mesh.width(),
        cfg.mesh.height()
    );
    println!("{:<28} 1-cycle", "Router latency");
    println!("{:<28} {} flits", "Buffer size per VC", cfg.buffer_flits);
    println!("{:<28} 128 bits/cycle", "Link bandwidth");
    let flow = "VCT, single packet per VC, 1- and 5-flit packets";
    println!("{:<28} {flow}", "Flow control");
    println!(
        "{:<28} Uniform, Transpose, Shuffle, Bit-rotation",
        "Synthetic traffic"
    );
    println!();
    println!(
        "{:<10} {:>4} {:>10} {:>22}",
        "Scheme", "VNs", "VCs", "Routing"
    );
    for id in ALL_SCHEMES {
        let (vcs, routing) = match id {
            SchemeId::FastPass => ("1/2/4", "fully adaptive"),
            SchemeId::EscapeVc => ("2", "escape: XY, rest adaptive"),
            SchemeId::Tfc => ("2", "west-first + tokens"),
            SchemeId::MinBd => ("-", "deflection"),
            _ => ("2", "fully adaptive"),
        };
        println!(
            "{:<10} {:>4} {:>10} {:>22}",
            id.name(),
            id.vns(),
            vcs,
            routing
        );
    }
    println!();
    println!("FastPass TDM slot lengths (Qn5: 2 x hops x inputs x VCs):");
    for (size, vcs) in [(4usize, 2usize), (8, 4), (16, 4)] {
        let mesh = noc_core::topology::Mesh::new(size, size);
        let k = TdmSchedule::paper_slot_cycles(mesh, vcs);
        let sched = TdmSchedule::new(mesh, vcs);
        println!(
            "  {size:>2}x{size:<2} {vcs} VCs: K = {k} cycles, phase = {} cycles, full rotation = {} cycles",
            sched.phase_cycles(),
            sched.rotation_cycles()
        );
    }
    println!();
    println!("SPIN detection threshold: 128 cycles; SWAP duty: 1K cycles;");
    println!("DRAIN period: 64K cycles (scaled to 8K in bench runs);");
    println!("MOESI-Hammer-style protocol model: 6 message classes.");
}
