//! Diagnostic: decompose hot-path cost into fixed (idle) per-cycle
//! overhead vs load-proportional work, per scheme.
//!
//! Runs single simulation points at increasing injection rates (0 =
//! pure per-cycle fixed cost) and prints ns/cycle for each, so the
//! hot-loop optimisation effort can be aimed at the dominant term.

use bench::runner::make_sim;
use bench::SchemeId;
use std::time::Instant;
use traffic::SyntheticPattern;

fn time_point(id: SchemeId, rate: f64, cycles: u64) -> f64 {
    let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, 4, 2, 5);
    sim.run(1_000); // warm
    let t = Instant::now();
    sim.run(cycles);
    t.elapsed().as_secs_f64() * 1e9 / cycles as f64
}

fn main() {
    const CYCLES: u64 = 200_000;
    println!("{:>10} {:>6} {:>12}", "scheme", "rate", "ns/cycle");
    for id in [SchemeId::Vct, SchemeId::FastPass] {
        for rate in [0.0, 0.02, 0.05, 0.08] {
            // Best of 3: interference only adds time.
            let best = (0..3)
                .map(|_| time_point(id, rate, CYCLES))
                .fold(f64::INFINITY, f64::min);
            println!("{:>10} {:>6.2} {:>12.1}", id.name(), rate, best);
        }
    }
}
