//! Fig. 13: breakdown of packet types under FastPass with 1 VC —
//! (a) Uniform traffic across injection rates, (b) application traffic.
//!
//! Expected shape (paper): regular packets dominate at low load (§Qn1 —
//! FastFlow only kicks in as load rises); the FastPass-Packet share
//! grows with load; dropped packets stay negligible (≤5.9% even past
//! saturation for synthetic traffic, ~0.3% for applications — vs.
//! SCARAB's up-to-9%).

use bench::{emit_json, env_u64, num_jobs, parallel_map, runner::make_sim, SchemeId};
use noc_sim::Simulation;
use serde::Serialize;
use traffic::{AppModel, SyntheticPattern};

#[derive(Serialize)]
struct Fig13Row {
    label: String,
    regular_fraction: f64,
    fastpass_fraction: f64,
    dropped_fraction: f64,
}

fn breakdown(label: String, stats: &noc_core::stats::NetStats) -> Fig13Row {
    // Every dropped packet is regenerated and eventually delivered, so
    // the paper's three-way split partitions *delivered* packets:
    // dropped-at-least-once, FastPass-delivered (never dropped), and
    // plain regular.
    let total = stats.delivered().max(1) as f64;
    let dropped = stats.dropped_packets as f64;
    Fig13Row {
        label,
        regular_fraction: (stats.delivered_regular as f64 - dropped).max(0.0) / total,
        fastpass_fraction: stats.delivered_fastpass as f64 / total,
        dropped_fraction: dropped / total,
    }
}

fn main() {
    bench::serve_client::warn_if_serve_requested("fig13");
    let size = env_u64("FP_SIZE", 8) as usize;
    let warmup = env_u64("FP_WARMUP", 5_000);
    let measure = env_u64("FP_MEASURE", 15_000);
    let mut rows = Vec::new();

    println!("== Fig. 13a — packet-type breakdown, uniform, 1 VC ==");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "rate", "regular", "fastpass", "dropped"
    );
    let rates = [0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16];
    let jobs: Vec<_> = rates
        .iter()
        .map(|&rate| {
            move || {
                let mut sim = make_sim(
                    SchemeId::FastPass,
                    SyntheticPattern::Uniform,
                    rate,
                    size,
                    1,
                    23,
                );
                let stats = sim.run_windows(warmup, measure);
                breakdown(format!("uniform@{rate}"), &stats)
            }
        })
        .collect();
    for (row, &rate) in parallel_map(jobs, num_jobs()).into_iter().zip(&rates) {
        println!(
            "{rate:>6.2} {:>9.1}% {:>9.1}% {:>9.2}%",
            100.0 * row.regular_fraction,
            100.0 * row.fastpass_fraction,
            100.0 * row.dropped_fraction
        );
        rows.push(row);
    }

    println!("\n== Fig. 13b — packet-type breakdown, applications, 1 VC ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "app", "regular", "fastpass", "dropped"
    );
    let mut app_drops = Vec::new();
    let app_jobs: Vec<_> = AppModel::FIG13
        .iter()
        .map(|&app| {
            move || {
                let cfg = SchemeId::FastPass.sim_config(size, 1, 29);
                let nodes = cfg.mesh.num_nodes();
                let scheme = SchemeId::FastPass.build(&cfg, 29);
                // The paper's 13b runs the 1-VC configuration under real
                // loads; stress the models at 2x nominal so the single-VC
                // network is in the regime where FastFlow engages.
                let workload = app.workload_scaled(nodes, None, 2.0);
                let mut sim = Simulation::new(cfg, scheme, Box::new(workload));
                let stats = sim.run_windows(warmup, measure);
                breakdown(app.name().to_string(), &stats)
            }
        })
        .collect();
    for row in parallel_map(app_jobs, num_jobs()) {
        println!(
            "{:<14} {:>9.1}% {:>9.1}% {:>9.2}%",
            row.label,
            100.0 * row.regular_fraction,
            100.0 * row.fastpass_fraction,
            100.0 * row.dropped_fraction
        );
        app_drops.push(row.dropped_fraction);
        rows.push(row);
    }
    let avg_drop = app_drops.iter().sum::<f64>() / app_drops.len() as f64;
    println!(
        "\napplication average dropped fraction: {:.2}% (paper: ~0.3%; SCARAB drops up to 9%)",
        100.0 * avg_drop
    );
    let path = emit_json("fig13", &rows).expect("write results");
    println!("JSON written to {}", path.display());
}
