//! Ablation study of FastPass design choices (beyond the paper's own
//! figures):
//!
//! * **lane pipelining** — depth 1 is the paper's literal "one
//!   FastPass-Packet per lane"; deeper pipelines are this
//!   implementation's provably-collision-free generalization;
//! * **slot length K** — the paper fixes `K = 2·hops·inputs·VCs` (Qn5);
//!   shorter slots rotate lanes faster (fresher coverage) but waste more
//!   budget tail, longer slots amortize better;
//! * **VCs per input buffer** — the paper's own 1/2/4 knob (Fig. 10's
//!   FastPass rows).

use bench::{emit_json, env_u64, num_jobs, parallel_map, SchemeId};
use fastpass::{FastPass, FastPassConfig, TdmSchedule};
use noc_sim::Simulation;
use serde::Serialize;
use traffic::{SyntheticPattern, SyntheticWorkload};

#[derive(Serialize)]
struct AblationRow {
    knob: String,
    value: String,
    avg_latency: f64,
    throughput: f64,
    fastpass_fraction: f64,
    dropped_fraction: f64,
}

fn run(
    vcs: usize,
    fp_cfg: FastPassConfig,
    rate: f64,
    warmup: u64,
    measure: u64,
) -> (f64, f64, f64, f64) {
    let cfg = SchemeId::FastPass.sim_config(8, vcs, 51);
    let scheme = FastPass::new(&cfg, fp_cfg);
    let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, rate, 13);
    let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(wl));
    let stats = sim.run_windows(warmup, measure);
    (
        stats.avg_latency(),
        stats.throughput_packets(),
        stats.fastpass_fraction(),
        stats.dropped_fraction(),
    )
}

fn main() {
    bench::serve_client::warn_if_serve_requested("ablation");
    let warmup = env_u64("FP_WARMUP", 4_000);
    let measure = env_u64("FP_MEASURE", 12_000);
    let rate = 0.12; // near the knee: mechanisms differentiate here
    let mut rows = Vec::new();
    println!("== FastPass ablations (8x8, transpose @ {rate}) ==");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "knob", "value", "latency", "thpt", "fp frac", "dropped"
    );

    // The full knob grid, simulated in parallel and printed in order.
    let mut grid: Vec<(&'static str, String, String, usize, FastPassConfig)> = Vec::new();
    for depth in [1usize, 2, 4, 8] {
        grid.push((
            "pipeline",
            "pipeline_depth".into(),
            depth.to_string(),
            4,
            FastPassConfig {
                pipeline_depth: depth,
                ..FastPassConfig::default()
            },
        ));
    }
    let mesh = noc_core::topology::Mesh::new(8, 8);
    let paper_k = TdmSchedule::paper_slot_cycles(mesh, 4);
    for k in [
        TdmSchedule::min_slot_cycles(mesh) * 2,
        paper_k / 2,
        paper_k,
        paper_k * 2,
    ] {
        let label = if k == paper_k {
            format!("{k} (paper)")
        } else {
            k.to_string()
        };
        grid.push((
            "slot_cycles",
            "slot_cycles".into(),
            label,
            4,
            FastPassConfig {
                slot_cycles: Some(k),
                ..FastPassConfig::default()
            },
        ));
    }
    for vcs in [1usize, 2, 4] {
        grid.push((
            "vcs_per_port",
            "vcs_per_port".into(),
            vcs.to_string(),
            vcs,
            FastPassConfig::default(),
        ));
    }

    let jobs: Vec<_> = grid
        .iter()
        .map(|&(_, _, _, vcs, fp_cfg)| move || run(vcs, fp_cfg, rate, warmup, measure))
        .collect();
    let measured = parallel_map(jobs, num_jobs());
    for ((display, knob, value, _, _), (lat, thpt, fpf, drp)) in grid.into_iter().zip(measured) {
        println!("{display:<16} {value:>8} {lat:>10.1} {thpt:>10.4} {fpf:>8.3} {drp:>8.4}");
        rows.push(AblationRow {
            knob,
            value,
            avg_latency: lat,
            throughput: thpt,
            fastpass_fraction: fpf,
            dropped_fraction: drp,
        });
    }

    let path = emit_json("ablation", &rows).expect("write results");
    println!("JSON written to {}", path.display());
}
