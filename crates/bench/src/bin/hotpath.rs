//! Cycles-per-second microbenchmark of the regular-pass hot path.
//!
//! Runs the low-load smoke sweep points (FastPass + plain VCT on a 4×4
//! mesh, three rates) *serially and uncached*, so the measured wall-clock
//! is pure simulator time — exactly the per-cycle loop the active-set
//! optimisation targets. Low load is the interesting regime: most sweep
//! probes (zero-load latency, saturation bisection floors) run there, and
//! it is where a topology-proportional loop wastes the most work.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin hotpath [-- label]
//! ```
//!
//! Each sweep repetition is timed separately and the *fastest* repetition
//! is the headline number: on shared machines the minimum is the best
//! estimator of true cost (interference only ever adds time). The mean
//! over all repetitions is reported alongside for context.
//! `BENCH_hotpath.json` at the repo root records the before/after pair
//! for the rewrite.
//!
//! `--trace-overhead` instead measures the cost of the tracing hooks:
//! the same sweep is timed with tracing disabled, at counters level and
//! at full event level, and a JSON comparison (the source of
//! `BENCH_trace_overhead.json`) is printed. The disabled number is the
//! zero-overhead claim: hooks compile to a branch on a disabled tracer,
//! so it must sit within noise of the plain hot-path figure.

use bench::runner::make_sim;
use bench::SchemeId;
use noc_trace::{TraceConfig, TraceLevel};
use std::time::Instant;
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 4;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 3_000;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];
/// Repetitions of the whole sweep, to push the measurement well past
/// timer noise on fast machines.
const REPS: u64 = 20;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    if arg == "--trace-overhead" {
        trace_overhead();
        return;
    }
    let label = arg;
    // Warm the allocator/caches with one throwaway sweep.
    run_sweep(None);
    let m = measure(None);
    println!(
        "{{\n  \"label\": \"{label}\",\n  \"command\": \"cargo run --release -p bench --bin hotpath\",\n  \
         \"workload\": \"smoke sweep x{REPS}: {{FastPass, VCT}} x rates {RATES:?}, {MESH_SIZE}x{MESH_SIZE} mesh, warmup {WARMUP} + measure {MEASURE}, seed {SEED}\",\n  \
         \"total_cycles\": {},\n  \"total_delivered\": {},\n  \
         \"elapsed_ms\": {:.1},\n  \"best_rep_ms\": {:.1},\n  \
         \"cycles_per_sec\": {:.0},\n  \"cycles_per_sec_mean\": {:.0}\n}}",
        m.total_cycles,
        m.total_delivered,
        m.total_secs * 1e3,
        m.best * 1e3,
        m.cps_best,
        m.cps_mean,
    );
}

struct Measurement {
    total_cycles: u64,
    total_delivered: u64,
    total_secs: f64,
    best: f64,
    cps_best: f64,
    cps_mean: f64,
}

fn measure(trace: Option<TraceLevel>) -> Measurement {
    let mut total_cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut total_secs = 0f64;
    let mut best = f64::INFINITY;
    let mut sweep_cycles = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (cycles, delivered) = run_sweep(trace);
        let secs = start.elapsed().as_secs_f64();
        total_cycles += cycles;
        total_delivered += delivered;
        total_secs += secs;
        best = best.min(secs);
        sweep_cycles = cycles;
    }
    Measurement {
        total_cycles,
        total_delivered,
        total_secs,
        best,
        cps_best: sweep_cycles as f64 / best,
        cps_mean: total_cycles as f64 / total_secs,
    }
}

/// `--trace-overhead`: the same sweep at three tracing configurations —
/// hooks compiled in but tracer disabled (the default for every normal
/// run), counters level, and full event level.
fn trace_overhead() {
    run_sweep(None); // warm up
    let off = measure(None);
    let counters = measure(Some(TraceLevel::Counters));
    let full = measure(Some(TraceLevel::Full));
    let pct = |m: &Measurement| 100.0 * (off.cps_best / m.cps_best - 1.0);
    println!(
        "{{\n  \"benchmark\": \"tracing overhead on the regular-pass hot loop\",\n  \
         \"command\": \"cargo run --release -p bench --bin hotpath -- --trace-overhead\",\n  \
         \"workload\": \"smoke sweep x{REPS}: {{FastPass, VCT}} x rates {RATES:?}, {MESH_SIZE}x{MESH_SIZE} mesh, warmup {WARMUP} + measure {MEASURE}, seed {SEED}, serial and uncached\",\n  \
         \"methodology\": \"fastest of {REPS} timed repetitions per level; off = hooks compiled in, tracer disabled (every untraced run pays exactly this)\",\n  \
         \"off\": {{ \"cycles_per_sec\": {:.0}, \"best_rep_ms\": {:.1} }},\n  \
         \"counters\": {{ \"cycles_per_sec\": {:.0}, \"best_rep_ms\": {:.1}, \"slowdown_pct\": {:.1} }},\n  \
         \"full\": {{ \"cycles_per_sec\": {:.0}, \"best_rep_ms\": {:.1}, \"slowdown_pct\": {:.1} }}\n}}",
        off.cps_best,
        off.best * 1e3,
        counters.cps_best,
        counters.best * 1e3,
        pct(&counters),
        full.cps_best,
        full.best * 1e3,
        pct(&full),
    );
}

fn run_sweep(trace: Option<TraceLevel>) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    for id in SCHEMES {
        for rate in RATES {
            let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
            if let Some(level) = trace {
                sim.set_trace(&TraceConfig {
                    level,
                    ..TraceConfig::default()
                });
            }
            let stats = sim.run_windows(WARMUP, MEASURE);
            cycles += WARMUP + stats.cycles;
            delivered += stats.delivered();
            assert!(stats.delivered() > 0, "{} delivered nothing", id.name());
        }
    }
    (cycles, delivered)
}
