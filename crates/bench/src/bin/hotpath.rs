//! Cycles-per-second microbenchmark of the regular-pass hot path.
//!
//! Runs the low-load smoke sweep points (FastPass + plain VCT on a 4×4
//! mesh, three rates) *serially and uncached*, so the measured wall-clock
//! is pure simulator time — exactly the per-cycle loop the active-set
//! optimisation targets. Low load is the interesting regime: most sweep
//! probes (zero-load latency, saturation bisection floors) run there, and
//! it is where a topology-proportional loop wastes the most work.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin hotpath [-- label]
//! ```
//!
//! Each sweep repetition is timed separately and the *fastest* repetition
//! is the headline number: on shared machines the minimum is the best
//! estimator of true cost (interference only ever adds time). The mean
//! over all repetitions is reported alongside for context.
//! `BENCH_hotpath.json` at the repo root records the before/after pair
//! for the rewrite.

use bench::runner::make_sim;
use bench::SchemeId;
use std::time::Instant;
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 4;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 3_000;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];
/// Repetitions of the whole sweep, to push the measurement well past
/// timer noise on fast machines.
const REPS: u64 = 20;

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    // Warm the allocator/caches with one throwaway sweep.
    run_sweep();
    let mut total_cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut total_secs = 0f64;
    let mut best = f64::INFINITY;
    let mut sweep_cycles = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (cycles, delivered) = run_sweep();
        let secs = start.elapsed().as_secs_f64();
        total_cycles += cycles;
        total_delivered += delivered;
        total_secs += secs;
        best = best.min(secs);
        sweep_cycles = cycles;
    }
    let cps_best = sweep_cycles as f64 / best;
    let cps_mean = total_cycles as f64 / total_secs;
    println!(
        "{{\n  \"label\": \"{label}\",\n  \"command\": \"cargo run --release -p bench --bin hotpath\",\n  \
         \"workload\": \"smoke sweep x{REPS}: {{FastPass, VCT}} x rates {RATES:?}, {MESH_SIZE}x{MESH_SIZE} mesh, warmup {WARMUP} + measure {MEASURE}, seed {SEED}\",\n  \
         \"total_cycles\": {total_cycles},\n  \"total_delivered\": {total_delivered},\n  \
         \"elapsed_ms\": {:.1},\n  \"best_rep_ms\": {:.1},\n  \
         \"cycles_per_sec\": {cps_best:.0},\n  \"cycles_per_sec_mean\": {cps_mean:.0}\n}}",
        total_secs * 1e3,
        best * 1e3,
    );
}

fn run_sweep() -> (u64, u64) {
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    for id in SCHEMES {
        for rate in RATES {
            let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
            let stats = sim.run_windows(WARMUP, MEASURE);
            cycles += WARMUP + stats.cycles;
            delivered += stats.delivered();
            assert!(stats.delivered() > 0, "{} delivered nothing", id.name());
        }
    }
    (cycles, delivered)
}
